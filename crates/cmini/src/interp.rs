//! Tree-walking interpreter for mini-C.
//!
//! The interpreter is the *CPU reference execution* of the paper's HLS
//! flows: it runs original and repaired programs, produces golden outputs
//! for C↔RTL co-simulation, and records the execution *spectra* (coverage,
//! value ranges, overflow events) that HLSTester's test generation consumes.
//!
//! Width semantics: every store wraps the value to the declared bit width of
//! its target. A [`WidthMode::Custom`] map can narrow specific variables —
//! this is how FPGA-side custom bit widths (and the behavioral
//! discrepancies they cause) are modeled.
//!
//! Memory model: sizes are measured in *elements*, not bytes; `sizeof(T)`
//! is 1, so `malloc(n * sizeof(int))` allocates `n` slots. Freed objects
//! poison further access (use-after-free errors).

use crate::ast::*;
use crate::error::{CminiError, RuntimeErrorKind};
use std::collections::{HashMap, HashSet};

/// Runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CValue {
    Int(i64),
    /// Pointer to heap object `obj` at element offset `off`.
    Ptr { obj: usize, off: usize },
}

impl CValue {
    /// Integer content or a type error.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            CValue::Int(v) => Some(*v),
            CValue::Ptr { .. } => None,
        }
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct InterpLimits {
    pub max_steps: u64,
    pub max_call_depth: u32,
    pub max_heap_words: usize,
}

impl Default for InterpLimits {
    fn default() -> Self {
        InterpLimits { max_steps: 5_000_000, max_call_depth: 64, max_heap_words: 1 << 22 }
    }
}

/// Width-wrapping behaviour for stores.
#[derive(Debug, Clone, Default)]
pub enum WidthMode {
    /// Use declared C widths.
    #[default]
    Natural,
    /// Override widths for named variables (`var` or `func.var`), as an
    /// HLS bitwidth pragma would.
    Custom(HashMap<String, u32>),
}

/// Per-variable value summary recorded for watched variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarSpectrum {
    pub writes: u64,
    pub min: i64,
    pub max: i64,
    /// Stores where wrapping changed the value (overflow events).
    pub overflows: u64,
    /// Up to 64 most recent values (for signature hashing).
    pub recent: Vec<i64>,
}

impl Default for VarSpectrum {
    fn default() -> Self {
        VarSpectrum { writes: 0, min: i64::MAX, max: i64::MIN, overflows: 0, recent: Vec::new() }
    }
}

/// Operation counters (activity proxy for PPA models).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounters {
    pub adds: u64,
    pub muls: u64,
    pub divs: u64,
    pub logic: u64,
    pub loads: u64,
    pub stores: u64,
    pub branches: u64,
    pub calls: u64,
}

/// Everything observed during one execution.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    /// Statement ids executed at least once.
    pub coverage: HashSet<StmtId>,
    /// Spectra for watched variables.
    pub spectra: HashMap<String, VarSpectrum>,
    pub ops: OpCounters,
    pub steps: u64,
    /// `printf` output.
    pub output: String,
}

impl ExecTrace {
    /// Deterministic signature of the observed spectra (used by HLSTester's
    /// redundancy filter to skip equivalent simulations).
    pub fn spectra_signature(&self) -> u64 {
        let mut keys: Vec<&String> = self.spectra.keys().collect();
        keys.sort();
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        for k in keys {
            for b in k.bytes() {
                mix(b as u64);
            }
            let s = &self.spectra[k];
            mix(s.writes);
            mix(s.min as u64);
            mix(s.max as u64);
            mix(s.overflows);
            for v in &s.recent {
                mix(*v as u64);
            }
        }
        let mut cov: Vec<u32> = self.coverage.iter().copied().collect();
        cov.sort_unstable();
        for c in cov {
            mix(c as u64);
        }
        h
    }
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(CValue),
}

struct HeapObj {
    data: Vec<i64>,
    freed: bool,
    elem_bits: u32,
    unsigned: bool,
}

/// A binding in a stack frame.
#[derive(Clone)]
enum Binding {
    Scalar { value: i64, bits: u32, unsigned: bool },
    Ptr { value: Option<(usize, usize)>, dims: Vec<u64> },
}

/// The interpreter.
pub struct Interp<'p> {
    prog: &'p Program,
    heap: Vec<HeapObj>,
    frames: Vec<HashMap<String, Binding>>,
    limits: InterpLimits,
    widths: WidthMode,
    watch: HashSet<String>,
    trace: ExecTrace,
    heap_words: usize,
    current_fn: String,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter over a parsed program.
    pub fn new(prog: &'p Program) -> Self {
        Interp {
            prog,
            heap: Vec::new(),
            frames: Vec::new(),
            limits: InterpLimits::default(),
            widths: WidthMode::Natural,
            watch: HashSet::new(),
            trace: ExecTrace::default(),
            heap_words: 0,
            current_fn: String::new(),
        }
    }

    /// Sets execution limits.
    pub fn with_limits(mut self, limits: InterpLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets width-wrapping mode.
    pub fn with_widths(mut self, widths: WidthMode) -> Self {
        self.widths = widths;
        self
    }

    /// Watches variables (by name or `func.name`) for spectra recording.
    pub fn watch<I: IntoIterator<Item = String>>(mut self, vars: I) -> Self {
        self.watch.extend(vars);
        self
    }

    /// Allocates a heap array initialized from `data`; pass the returned
    /// pointer as a function argument.
    pub fn alloc_array(&mut self, data: &[i64], elem_bits: u32, unsigned: bool) -> CValue {
        self.heap.push(HeapObj { data: data.to_vec(), freed: false, elem_bits, unsigned });
        self.heap_words += data.len();
        CValue::Ptr { obj: self.heap.len() - 1, off: 0 }
    }

    /// Reads back a heap array (e.g. an output buffer after a call).
    ///
    /// # Errors
    ///
    /// Fails on non-pointer values or freed objects.
    pub fn read_array(&self, ptr: CValue, len: usize) -> Result<Vec<i64>, CminiError> {
        let CValue::Ptr { obj, off } = ptr else {
            return Err(CminiError::runtime(RuntimeErrorKind::NullDeref, 0, "not a pointer"));
        };
        let o = &self.heap[obj];
        if o.freed {
            return Err(CminiError::runtime(RuntimeErrorKind::UseAfterFree, 0, "read of freed object"));
        }
        Ok(o.data[off..(off + len).min(o.data.len())].to_vec())
    }

    /// Execution trace accumulated so far.
    pub fn trace(&self) -> &ExecTrace {
        &self.trace
    }

    /// Consumes the interpreter, returning the trace.
    pub fn into_trace(self) -> ExecTrace {
        self.trace
    }

    /// Calls `name` with the given arguments and returns its result
    /// (`Int(0)` for void functions).
    ///
    /// # Errors
    ///
    /// Returns [`CminiError::Runtime`] for any runtime fault and
    /// [`CminiError::Type`] for unknown functions/arity mismatches.
    pub fn call(&mut self, name: &str, args: &[CValue]) -> Result<CValue, CminiError> {
        let f = self
            .prog
            .function(name)
            .ok_or_else(|| CminiError::type_err(0, format!("unknown function `{name}`")))?;
        if f.params.len() != args.len() {
            return Err(CminiError::type_err(
                f.line,
                format!("`{name}` expects {} arguments, got {}", f.params.len(), args.len()),
            ));
        }
        if self.frames.len() as u32 >= self.limits.max_call_depth {
            return Err(CminiError::runtime(
                RuntimeErrorKind::CallDepth,
                f.line,
                "call depth limit exceeded (runaway recursion?)",
            ));
        }
        let mut frame = HashMap::new();
        for (p, a) in f.params.iter().zip(args) {
            let binding = match a {
                CValue::Int(v) => {
                    let bits = self.width_for(&p.name, p.ty.bits().max(1));
                    Binding::Scalar { value: wrap(*v, bits, p.ty.unsigned), bits, unsigned: p.ty.unsigned }
                }
                CValue::Ptr { obj, off } => Binding::Ptr {
                    value: Some((*obj, *off)),
                    dims: if p.ty.dims.len() > 1 { p.ty.dims[1..].to_vec() } else { Vec::new() },
                },
            };
            frame.insert(p.name.clone(), binding);
        }
        self.frames.push(frame);
        let saved_fn = std::mem::replace(&mut self.current_fn, name.to_string());
        let result = self.exec_block(&f.body);
        self.current_fn = saved_fn;
        self.frames.pop();
        match result? {
            Flow::Return(v) => Ok(v),
            _ => Ok(CValue::Int(0)),
        }
    }

    /// Convenience for scalar-only calls.
    ///
    /// # Errors
    ///
    /// Same as [`Interp::call`]; additionally fails when the result is a
    /// pointer.
    pub fn call_ints(&mut self, name: &str, args: &[i64]) -> Result<i64, CminiError> {
        let vals: Vec<CValue> = args.iter().map(|v| CValue::Int(*v)).collect();
        let r = self.call(name, &vals)?;
        r.as_int()
            .ok_or_else(|| CminiError::type_err(0, "function returned a pointer"))
    }

    fn width_for(&self, var: &str, declared: u32) -> u32 {
        match &self.widths {
            WidthMode::Natural => declared,
            WidthMode::Custom(map) => {
                let qualified = format!("{}.{}", self.current_fn, var);
                map.get(&qualified).or_else(|| map.get(var)).copied().unwrap_or(declared)
            }
        }
    }

    fn step(&mut self, line: u32) -> Result<(), CminiError> {
        self.trace.steps += 1;
        if self.trace.steps > self.limits.max_steps {
            return Err(CminiError::runtime(
                RuntimeErrorKind::StepLimit,
                line,
                "step limit exceeded (non-terminating loop?)",
            ));
        }
        Ok(())
    }

    fn exec_block(&mut self, b: &Block) -> Result<Flow, CminiError> {
        for s in &b.stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &Stmt) -> Result<Flow, CminiError> {
        self.step(s.line)?;
        self.trace.coverage.insert(s.id);
        match &s.kind {
            StmtKind::Pragma(_) => Ok(Flow::Normal),
            StmtKind::Decl { ty, name, init } => {
                if ty.is_array() {
                    let count = ty.element_count() as usize;
                    if self.heap_words + count > self.limits.max_heap_words {
                        return Err(CminiError::runtime(
                            RuntimeErrorKind::OutOfMemory,
                            s.line,
                            "heap limit exceeded",
                        ));
                    }
                    self.heap.push(HeapObj {
                        data: vec![0; count],
                        freed: false,
                        elem_bits: self.width_for(name, ty.bits()),
                        unsigned: ty.unsigned,
                    });
                    self.heap_words += count;
                    let obj = self.heap.len() - 1;
                    let dims = if ty.dims.len() > 1 { ty.dims[1..].to_vec() } else { Vec::new() };
                    self.frames
                        .last_mut()
                        .unwrap()
                        .insert(name.clone(), Binding::Ptr { value: Some((obj, 0)), dims });
                } else if ty.is_pointer() {
                    let v = match init {
                        Some(e) => {
                            let val = self.eval(e)?;
                            match val {
                                CValue::Ptr { obj, off } => Some((obj, off)),
                                CValue::Int(0) => None,
                                CValue::Int(_) => None,
                            }
                        }
                        None => None,
                    };
                    self.frames
                        .last_mut()
                        .unwrap()
                        .insert(name.clone(), Binding::Ptr { value: v, dims: Vec::new() });
                } else {
                    let bits = self.width_for(name, ty.bits().max(1));
                    let raw = match init {
                        Some(e) => self.eval_int(e, s.line)?,
                        None => 0,
                    };
                    let value = wrap(raw, bits, ty.unsigned);
                    self.record_write(name, value, raw != value);
                    self.frames.last_mut().unwrap().insert(
                        name.clone(),
                        Binding::Scalar { value, bits, unsigned: ty.unsigned },
                    );
                }
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                self.trace.ops.branches += 1;
                if self.eval_int(cond, s.line)? != 0 {
                    self.exec_block(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body, .. } => {
                loop {
                    self.step(s.line)?;
                    self.trace.ops.branches += 1;
                    if self.eval_int(cond, s.line)? == 0 {
                        break;
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    self.step(s.line)?;
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    self.trace.ops.branches += 1;
                    if self.eval_int(cond, s.line)? == 0 {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For { init, cond, step, body, .. } => {
                if let Some(i) = init {
                    self.exec_stmt(i)?;
                }
                loop {
                    self.step(s.line)?;
                    if let Some(c) = cond {
                        self.trace.ops.branches += 1;
                        if self.eval_int(c, s.line)? == 0 {
                            break;
                        }
                    }
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.eval(st)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => CValue::Int(0),
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Block(b) => self.exec_block(b),
        }
    }

    fn record_write(&mut self, name: &str, value: i64, overflowed: bool) {
        let qualified = format!("{}.{}", self.current_fn, name);
        let key = if self.watch.contains(&qualified) {
            Some(qualified)
        } else if self.watch.contains(name) {
            Some(name.to_string())
        } else {
            None
        };
        if let Some(key) = key {
            let s = self.trace.spectra.entry(key).or_default();
            s.writes += 1;
            s.min = s.min.min(value);
            s.max = s.max.max(value);
            if overflowed {
                s.overflows += 1;
            }
            if s.recent.len() < 64 {
                s.recent.push(value);
            }
        }
    }

    // --- expressions ---

    fn eval_int(&mut self, e: &Expr, line: u32) -> Result<i64, CminiError> {
        match self.eval(e)? {
            CValue::Int(v) => Ok(v),
            CValue::Ptr { .. } => {
                // Pointers in boolean/int context: non-null.
                let _ = line;
                Ok(1)
            }
        }
    }

    fn eval(&mut self, e: &Expr) -> Result<CValue, CminiError> {
        match e {
            Expr::IntLit(v) | Expr::CharLit(v) => Ok(CValue::Int(*v)),
            Expr::StrLit(_) => Ok(CValue::Int(0)),
            Expr::SizeOf(_) => Ok(CValue::Int(1)),
            Expr::Ident(name) => self.read_var(name),
            Expr::Cast(ty, inner) => {
                let v = self.eval(inner)?;
                match v {
                    CValue::Int(i) if ty.is_scalar() => {
                        Ok(CValue::Int(wrap(i, ty.bits().max(1), ty.unsigned)))
                    }
                    other => Ok(other),
                }
            }
            Expr::Unary(op, a) => {
                let v = self.eval_int(a, 0)?;
                self.trace.ops.logic += 1;
                Ok(CValue::Int(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => (v == 0) as i64,
                    UnOp::BitNot => !v,
                }))
            }
            Expr::Binary(op, a, b) => {
                // Short-circuit logical operators.
                match op {
                    BinOp::LogAnd => {
                        let av = self.eval_int(a, 0)?;
                        if av == 0 {
                            return Ok(CValue::Int(0));
                        }
                        let bv = self.eval_int(b, 0)?;
                        return Ok(CValue::Int((bv != 0) as i64));
                    }
                    BinOp::LogOr => {
                        let av = self.eval_int(a, 0)?;
                        if av != 0 {
                            return Ok(CValue::Int(1));
                        }
                        let bv = self.eval_int(b, 0)?;
                        return Ok(CValue::Int((bv != 0) as i64));
                    }
                    _ => {}
                }
                let av = self.eval(a)?;
                let bv = self.eval(b)?;
                // Pointer arithmetic: ptr ± int.
                if let (CValue::Ptr { obj, off }, CValue::Int(d)) = (av, bv) {
                    return match op {
                        BinOp::Add => Ok(CValue::Ptr { obj, off: (off as i64 + d) as usize }),
                        BinOp::Sub => Ok(CValue::Ptr { obj, off: (off as i64 - d) as usize }),
                        _ => Err(CminiError::type_err(0, "invalid pointer arithmetic")),
                    };
                }
                let (x, y) = match (av, bv) {
                    (CValue::Int(x), CValue::Int(y)) => (x, y),
                    _ => return Err(CminiError::type_err(0, "pointer in arithmetic context")),
                };
                self.count_op(*op);
                let r = match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::Div => {
                        if y == 0 {
                            return Err(CminiError::runtime(
                                RuntimeErrorKind::DivideByZero,
                                0,
                                "division by zero",
                            ));
                        }
                        x.wrapping_div(y)
                    }
                    BinOp::Rem => {
                        if y == 0 {
                            return Err(CminiError::runtime(
                                RuntimeErrorKind::DivideByZero,
                                0,
                                "remainder by zero",
                            ));
                        }
                        x.wrapping_rem(y)
                    }
                    BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                    BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                    BinOp::Lt => (x < y) as i64,
                    BinOp::Le => (x <= y) as i64,
                    BinOp::Gt => (x > y) as i64,
                    BinOp::Ge => (x >= y) as i64,
                    BinOp::Eq => (x == y) as i64,
                    BinOp::Ne => (x != y) as i64,
                    BinOp::BitAnd => x & y,
                    BinOp::BitXor => x ^ y,
                    BinOp::BitOr => x | y,
                    BinOp::LogAnd | BinOp::LogOr => unreachable!(),
                };
                Ok(CValue::Int(r))
            }
            Expr::Ternary(c, t, f) => {
                if self.eval_int(c, 0)? != 0 {
                    self.eval(t)
                } else {
                    self.eval(f)
                }
            }
            Expr::Index(..) | Expr::Deref(_) => {
                let (obj, off) = self.resolve_heap_place(e)?;
                self.trace.ops.loads += 1;
                self.heap_read(obj, off)
            }
            Expr::AddrOf(inner) => match &**inner {
                Expr::Ident(name) => match self.lookup(name)? {
                    Binding::Ptr { value: Some((obj, off)), .. } => Ok(CValue::Ptr { obj, off }),
                    _ => Err(CminiError::type_err(0, "address-of scalar is not supported")),
                },
                Expr::Index(..) => {
                    let (obj, off) = self.resolve_heap_place(inner)?;
                    Ok(CValue::Ptr { obj, off })
                }
                _ => Err(CminiError::type_err(0, "unsupported address-of")),
            },
            Expr::IncDec { target, inc, prefix } => {
                let old = self.eval(target)?;
                let old_i = old.as_int().ok_or_else(|| {
                    CminiError::type_err(0, "increment of pointer is not supported")
                })?;
                let newv = if *inc { old_i.wrapping_add(1) } else { old_i.wrapping_sub(1) };
                self.store(target, CValue::Int(newv))?;
                Ok(CValue::Int(if *prefix { newv } else { old_i }))
            }
            Expr::Assign { op, target, value } => {
                let rhs = self.eval(value)?;
                let final_v = match op {
                    None => rhs,
                    Some(binop) => {
                        let cur = self.eval(target)?;
                        let combined = Expr::Binary(
                            *binop,
                            Box::new(Expr::IntLit(cur.as_int().unwrap_or(0))),
                            Box::new(Expr::IntLit(rhs.as_int().unwrap_or(0))),
                        );
                        self.eval(&combined)?
                    }
                };
                self.store(target, final_v)?;
                Ok(final_v)
            }
            Expr::Call(name, args) => self.eval_call(name, args),
        }
    }

    fn count_op(&mut self, op: BinOp) {
        match op {
            BinOp::Add | BinOp::Sub => self.trace.ops.adds += 1,
            BinOp::Mul => self.trace.ops.muls += 1,
            BinOp::Div | BinOp::Rem => self.trace.ops.divs += 1,
            _ => self.trace.ops.logic += 1,
        }
    }

    fn eval_call(&mut self, name: &str, args: &[Expr]) -> Result<CValue, CminiError> {
        self.trace.ops.calls += 1;
        match name {
            "malloc" | "calloc" => {
                let n = if name == "calloc" {
                    let a = self.eval_int(&args[0], 0)?;
                    let b = self.eval_int(&args[1], 0)?;
                    a.wrapping_mul(b)
                } else {
                    self.eval_int(&args[0], 0)?
                };
                let n = n.clamp(0, self.limits.max_heap_words as i64) as usize;
                if self.heap_words + n > self.limits.max_heap_words {
                    return Err(CminiError::runtime(
                        RuntimeErrorKind::OutOfMemory,
                        0,
                        "heap limit exceeded",
                    ));
                }
                self.heap.push(HeapObj { data: vec![0; n], freed: false, elem_bits: 64, unsigned: false });
                self.heap_words += n;
                Ok(CValue::Ptr { obj: self.heap.len() - 1, off: 0 })
            }
            "free" => {
                match self.eval(&args[0])? {
                    CValue::Ptr { obj, .. } => {
                        if self.heap[obj].freed {
                            return Err(CminiError::runtime(
                                RuntimeErrorKind::UseAfterFree,
                                0,
                                "double free",
                            ));
                        }
                        self.heap[obj].freed = true;
                    }
                    CValue::Int(0) => {}
                    _ => {
                        return Err(CminiError::runtime(
                            RuntimeErrorKind::NullDeref,
                            0,
                            "free of non-pointer",
                        ))
                    }
                }
                Ok(CValue::Int(0))
            }
            "printf" => {
                let fmt = match args.first() {
                    Some(Expr::StrLit(s)) => s.clone(),
                    _ => String::new(),
                };
                let mut vals = Vec::new();
                for a in &args[1..] {
                    vals.push(self.eval_int(a, 0)?);
                }
                let text = format_printf(&fmt, &vals);
                self.trace.output.push_str(&text);
                Ok(CValue::Int(text.len() as i64))
            }
            "putchar" => {
                let c = self.eval_int(&args[0], 0)?;
                self.trace.output.push((c as u8) as char);
                Ok(CValue::Int(c))
            }
            "assert" => {
                let v = self.eval_int(&args[0], 0)?;
                if v == 0 {
                    return Err(CminiError::runtime(
                        RuntimeErrorKind::AssertFailed,
                        0,
                        "assertion failed",
                    ));
                }
                Ok(CValue::Int(0))
            }
            "abs" => {
                let v = self.eval_int(&args[0], 0)?;
                Ok(CValue::Int(v.wrapping_abs()))
            }
            "memset" => {
                let p = self.eval(&args[0])?;
                let v = self.eval_int(&args[1], 0)?;
                let n = self.eval_int(&args[2], 0)?.max(0) as usize;
                if let CValue::Ptr { obj, off } = p {
                    for i in 0..n {
                        self.heap_write(obj, off + i, v)?;
                    }
                }
                Ok(CValue::Int(0))
            }
            "memcpy" => {
                let d = self.eval(&args[0])?;
                let s = self.eval(&args[1])?;
                let n = self.eval_int(&args[2], 0)?.max(0) as usize;
                if let (CValue::Ptr { obj: dobj, off: doff }, CValue::Ptr { obj: sobj, off: soff }) =
                    (d, s)
                {
                    for i in 0..n {
                        let v = self.heap_read(sobj, soff + i)?.as_int().unwrap_or(0);
                        self.heap_write(dobj, doff + i, v)?;
                    }
                }
                Ok(CValue::Int(0))
            }
            _ => {
                let mut vals = Vec::new();
                for a in args {
                    vals.push(self.eval(a)?);
                }
                self.call(name, &vals)
            }
        }
    }

    fn lookup(&self, name: &str) -> Result<Binding, CminiError> {
        self.frames
            .last()
            .and_then(|f| f.get(name))
            .cloned()
            .ok_or_else(|| {
                CminiError::runtime(
                    RuntimeErrorKind::UndefinedName,
                    0,
                    format!("undefined variable `{name}`"),
                )
            })
    }

    fn read_var(&mut self, name: &str) -> Result<CValue, CminiError> {
        match self.lookup(name)? {
            Binding::Scalar { value, .. } => Ok(CValue::Int(value)),
            Binding::Ptr { value: Some((obj, off)), .. } => Ok(CValue::Ptr { obj, off }),
            Binding::Ptr { value: None, .. } => Ok(CValue::Int(0)),
        }
    }

    /// Resolves `a[i]`, `a[i][j]`, `*p` to a concrete heap slot.
    fn resolve_heap_place(&mut self, e: &Expr) -> Result<(usize, usize), CminiError> {
        match e {
            Expr::Deref(inner) => match self.eval(inner)? {
                CValue::Ptr { obj, off } => Ok((obj, off)),
                CValue::Int(_) => Err(CminiError::runtime(
                    RuntimeErrorKind::NullDeref,
                    0,
                    "dereference of non-pointer",
                )),
            },
            Expr::Index(base, idx) => {
                let i = self.eval_int(idx, 0)?;
                if i < 0 {
                    return Err(CminiError::runtime(
                        RuntimeErrorKind::OutOfBounds,
                        0,
                        format!("negative index {i}"),
                    ));
                }
                let (obj, off, dims) = self.resolve_array(base)?;
                let stride: u64 = dims.iter().product::<u64>().max(1);
                Ok((obj, off + i as usize * stride as usize))
            }
            _ => Err(CminiError::type_err(0, "expression is not a memory place")),
        }
    }

    /// Resolves an array-valued expression to (obj, off, remaining dims).
    fn resolve_array(&mut self, e: &Expr) -> Result<(usize, usize, Vec<u64>), CminiError> {
        match e {
            Expr::Ident(name) => match self.lookup(name)? {
                Binding::Ptr { value: Some((obj, off)), dims } => Ok((obj, off, dims)),
                Binding::Ptr { value: None, .. } => Err(CminiError::runtime(
                    RuntimeErrorKind::NullDeref,
                    0,
                    format!("`{name}` is null"),
                )),
                Binding::Scalar { .. } => Err(CminiError::type_err(
                    0,
                    format!("`{name}` indexed but is a scalar"),
                )),
            },
            Expr::Index(base, idx) => {
                let i = self.eval_int(idx, 0)?;
                let (obj, off, dims) = self.resolve_array(base)?;
                if dims.is_empty() {
                    return Err(CminiError::type_err(0, "too many subscripts"));
                }
                let stride: u64 = dims[1..].iter().product::<u64>().max(1);
                Ok((obj, off + i.max(0) as usize * stride as usize, dims[1..].to_vec()))
            }
            Expr::Cast(_, inner) => self.resolve_array(inner),
            _ => match self.eval(e)? {
                CValue::Ptr { obj, off } => Ok((obj, off, Vec::new())),
                _ => Err(CminiError::type_err(0, "expression is not an array")),
            },
        }
    }

    fn heap_read(&mut self, obj: usize, off: usize) -> Result<CValue, CminiError> {
        let o = self
            .heap
            .get(obj)
            .ok_or_else(|| CminiError::runtime(RuntimeErrorKind::NullDeref, 0, "bad object"))?;
        if o.freed {
            return Err(CminiError::runtime(
                RuntimeErrorKind::UseAfterFree,
                0,
                "read of freed object",
            ));
        }
        o.data.get(off).map(|v| CValue::Int(*v)).ok_or_else(|| {
            CminiError::runtime(
                RuntimeErrorKind::OutOfBounds,
                0,
                format!("index {off} out of bounds (len {})", o.data.len()),
            )
        })
    }

    fn heap_write(&mut self, obj: usize, off: usize, v: i64) -> Result<(), CminiError> {
        let o = self
            .heap
            .get_mut(obj)
            .ok_or_else(|| CminiError::runtime(RuntimeErrorKind::NullDeref, 0, "bad object"))?;
        if o.freed {
            return Err(CminiError::runtime(
                RuntimeErrorKind::UseAfterFree,
                0,
                "write to freed object",
            ));
        }
        let len = o.data.len();
        let slot = o.data.get_mut(off).ok_or_else(|| {
            CminiError::runtime(
                RuntimeErrorKind::OutOfBounds,
                0,
                format!("index {off} out of bounds (len {len})"),
            )
        })?;
        *slot = wrap(v, o.elem_bits, o.unsigned);
        self.trace.ops.stores += 1;
        Ok(())
    }

    fn store(&mut self, target: &Expr, v: CValue) -> Result<(), CminiError> {
        match target {
            Expr::Ident(name) => {
                let binding = self.lookup(name)?;
                match binding {
                    Binding::Scalar { bits, unsigned, .. } => {
                        let raw = v.as_int().ok_or_else(|| {
                            CminiError::type_err(0, "pointer assigned to scalar")
                        })?;
                        let wrapped = wrap(raw, bits, unsigned);
                        self.record_write(name, wrapped, wrapped != raw);
                        self.trace.ops.stores += 1;
                        if let Some(Binding::Scalar { value, .. }) =
                            self.frames.last_mut().unwrap().get_mut(name)
                        {
                            *value = wrapped;
                        }
                    }
                    Binding::Ptr { dims, .. } => {
                        let newv = match v {
                            CValue::Ptr { obj, off } => Some((obj, off)),
                            CValue::Int(_) => None,
                        };
                        self.frames
                            .last_mut()
                            .unwrap()
                            .insert(name.clone(), Binding::Ptr { value: newv, dims });
                    }
                }
                Ok(())
            }
            Expr::Index(..) | Expr::Deref(_) => {
                let (obj, off) = self.resolve_heap_place(target)?;
                let raw = v
                    .as_int()
                    .ok_or_else(|| CminiError::type_err(0, "pointer stored into array"))?;
                self.heap_write(obj, off, raw)?;
                // Record under the base array name when watched.
                if let Some(base) = base_name(target) {
                    let stored = self.heap[obj].data[off];
                    self.record_write(&base, stored, stored != raw);
                }
                Ok(())
            }
            Expr::Cast(_, inner) => self.store(inner, v),
            _ => Err(CminiError::type_err(0, "invalid assignment target")),
        }
    }
}

fn base_name(e: &Expr) -> Option<String> {
    match e {
        Expr::Ident(n) => Some(n.clone()),
        Expr::Index(b, _) | Expr::Deref(b) | Expr::Cast(_, b) => base_name(b),
        _ => None,
    }
}

/// Wraps `v` to `bits` with sign- or zero-extension back to i64.
pub fn wrap(v: i64, bits: u32, unsigned: bool) -> i64 {
    if bits == 0 || bits >= 64 {
        return v;
    }
    let mask = (1u64 << bits) - 1;
    let t = (v as u64) & mask;
    if unsigned {
        t as i64
    } else {
        // Sign extend.
        let sign = 1u64 << (bits - 1);
        if t & sign != 0 {
            (t | !mask) as i64
        } else {
            t as i64
        }
    }
}

fn format_printf(fmt: &str, args: &[i64]) -> String {
    let mut out = String::new();
    let mut it = fmt.chars().peekable();
    let mut ai = 0;
    while let Some(c) = it.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Skip flags/width/length.
        while matches!(it.peek(), Some('0'..='9' | 'l' | 'h' | '-' | '+' | ' ')) {
            it.next();
        }
        match it.next() {
            Some('%') => out.push('%'),
            Some('d') | Some('i') | Some('u') => {
                out.push_str(&args.get(ai).copied().unwrap_or(0).to_string());
                ai += 1;
            }
            Some('x') | Some('X') => {
                out.push_str(&format!("{:x}", args.get(ai).copied().unwrap_or(0)));
                ai += 1;
            }
            Some('c') => {
                out.push((args.get(ai).copied().unwrap_or(0) as u8) as char);
                ai += 1;
            }
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str, f: &str, args: &[i64]) -> Result<i64, CminiError> {
        let p = parse(src).unwrap();
        // Test threads have small stacks; keep interpreter recursion shallow.
        let limits = InterpLimits { max_call_depth: 24, ..InterpLimits::default() };
        Interp::new(&p).with_limits(limits).call_ints(f, args)
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let src = "int f(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }";
        assert_eq!(run(src, "f", &[10]).unwrap(), 55);
    }

    #[test]
    fn recursion_works_within_depth() {
        let src = "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }";
        assert_eq!(run(src, "fib", &[10]).unwrap(), 55);
    }

    #[test]
    fn runaway_recursion_hits_depth_limit() {
        let src = "int f(int n) { return f(n + 1); }";
        let e = run(src, "f", &[0]).unwrap_err();
        assert!(matches!(
            e,
            CminiError::Runtime(r) if r.kind == RuntimeErrorKind::CallDepth
        ));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let src = "int f() { int x = 0; while (1) { x++; } return x; }";
        let e = run(src, "f", &[]).unwrap_err();
        assert!(matches!(
            e,
            CminiError::Runtime(r) if r.kind == RuntimeErrorKind::StepLimit
        ));
    }

    #[test]
    fn division_by_zero() {
        let e = run("int f(int a) { return 10 / a; }", "f", &[0]).unwrap_err();
        assert!(matches!(
            e,
            CminiError::Runtime(r) if r.kind == RuntimeErrorKind::DivideByZero
        ));
    }

    #[test]
    fn local_arrays_and_2d() {
        let src = "
          int f() {
            int m[3][4];
            for (int i = 0; i < 3; i++)
              for (int j = 0; j < 4; j++)
                m[i][j] = i * 10 + j;
            return m[2][3];
          }";
        assert_eq!(run(src, "f", &[]).unwrap(), 23);
    }

    #[test]
    fn array_out_of_bounds() {
        let src = "int f() { int a[4]; return a[9]; }";
        let e = run(src, "f", &[]).unwrap_err();
        assert!(matches!(
            e,
            CminiError::Runtime(r) if r.kind == RuntimeErrorKind::OutOfBounds
        ));
    }

    #[test]
    fn malloc_free_and_use_after_free() {
        let ok = "
          int f(int n) {
            int *b = (int*)malloc(n * sizeof(int));
            for (int i = 0; i < n; i++) b[i] = i * i;
            int s = b[n-1];
            free(b);
            return s;
          }";
        assert_eq!(run(ok, "f", &[5]).unwrap(), 16);
        let bad = "
          int f() {
            int *b = (int*)malloc(4 * sizeof(int));
            free(b);
            return b[0];
          }";
        let e = run(bad, "f", &[]).unwrap_err();
        assert!(matches!(
            e,
            CminiError::Runtime(r) if r.kind == RuntimeErrorKind::UseAfterFree
        ));
    }

    #[test]
    fn char_wraps_at_8_bits() {
        let src = "int f() { char c = 200; return c; }";
        // 200 wraps to -56 as signed char.
        assert_eq!(run(src, "f", &[]).unwrap(), -56);
        let src_u = "int f() { unsigned char c = 200; return c; }";
        assert_eq!(run(src_u, "f", &[]).unwrap(), 200);
    }

    #[test]
    fn custom_width_mode_models_fpga_narrowing() {
        let src = "int f(int x) { int acc = 0; for (int i = 0; i < x; i++) acc += 100; return acc; }";
        let p = parse(src).unwrap();
        // Natural: 50 * 100 = 5000.
        assert_eq!(Interp::new(&p).call_ints("f", &[50]).unwrap(), 5000);
        // Narrow `acc` to 12 signed bits: wraps at 2048.
        let mut widths = HashMap::new();
        widths.insert("acc".to_string(), 12u32);
        let got = Interp::new(&p)
            .with_widths(WidthMode::Custom(widths))
            .call_ints("f", &[50])
            .unwrap();
        assert_ne!(got, 5000, "narrowed accumulator must overflow");
    }

    #[test]
    fn spectra_recorded_for_watched_vars() {
        let src = "int f(int n) { int acc = 0; for (int i = 0; i < n; i++) acc += i; return acc; }";
        let p = parse(src).unwrap();
        let mut it = Interp::new(&p).watch(["acc".to_string()]);
        it.call_ints("f", &[5]).unwrap();
        let s = &it.trace().spectra["acc"];
        assert_eq!(s.max, 10);
        assert_eq!(s.min, 0);
        assert!(s.writes >= 5);
    }

    #[test]
    fn spectra_signature_distinguishes_paths() {
        let src = "int f(int n) { int y = 0; if (n > 10) y = n * 2; else y = n - 1; return y; }";
        let p = parse(src).unwrap();
        let sig = |arg: i64| {
            let mut it = Interp::new(&p).watch(["y".to_string()]);
            it.call_ints("f", &[arg]).unwrap();
            it.trace().spectra_signature()
        };
        assert_ne!(sig(20), sig(1));
    }

    #[test]
    fn printf_and_output_capture() {
        let src = r#"int f() { printf("x=%d hex=%x\n", 42, 255); return 0; }"#;
        let p = parse(src).unwrap();
        let mut it = Interp::new(&p);
        it.call_ints("f", &[]).unwrap();
        assert_eq!(it.trace().output, "x=42 hex=ff\n");
    }

    #[test]
    fn assert_failure_is_runtime_error() {
        let e = run("int f(int a) { assert(a > 0); return a; }", "f", &[-1]).unwrap_err();
        assert!(matches!(
            e,
            CminiError::Runtime(r) if r.kind == RuntimeErrorKind::AssertFailed
        ));
    }

    #[test]
    fn array_params_shared_with_caller() {
        let src = "
          void scale(int a[4], int k) { for (int i = 0; i < 4; i++) a[i] *= k; }
        ";
        let p = parse(src).unwrap();
        let mut it = Interp::new(&p);
        let arr = it.alloc_array(&[1, 2, 3, 4], 32, false);
        it.call("scale", &[arr, CValue::Int(3)]).unwrap();
        assert_eq!(it.read_array(arr, 4).unwrap(), vec![3, 6, 9, 12]);
    }

    #[test]
    fn op_counters_track_activity() {
        let src = "int f() { int s = 0; for (int i = 0; i < 8; i++) s += i * i; return s; }";
        let p = parse(src).unwrap();
        let mut it = Interp::new(&p);
        it.call_ints("f", &[]).unwrap();
        assert!(it.trace().ops.muls >= 8);
        assert!(it.trace().ops.adds >= 8);
        assert!(it.trace().ops.branches >= 8);
    }

    #[test]
    fn do_while_and_break_continue() {
        let src = "
          int f() {
            int s = 0;
            int i = 0;
            do {
              i++;
              if (i == 3) continue;
              if (i > 6) break;
              s += i;
            } while (i < 100);
            return s;
          }";
        // 1+2+4+5+6 = 18
        assert_eq!(run(src, "f", &[]).unwrap(), 18);
    }

    #[test]
    fn wrap_function_edges() {
        assert_eq!(wrap(255, 8, false), -1);
        assert_eq!(wrap(255, 8, true), 255);
        assert_eq!(wrap(256, 8, true), 0);
        assert_eq!(wrap(i64::MIN, 64, false), i64::MIN);
        assert_eq!(wrap(-1, 4, true), 15);
    }
}
