//! Abstract syntax tree for mini-C.

use std::fmt;

/// A unique statement id assigned by the parser; used by coverage, slicing,
//  and instrumentation.
pub type StmtId = u32;

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub functions: Vec<Function>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }
}

/// Base scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseType {
    Void,
    /// `char` (8-bit).
    Char,
    /// `short` (16-bit).
    Short,
    /// `int` (32-bit).
    Int,
    /// `long` / `long long` (64-bit).
    Long,
}

impl BaseType {
    /// Width in bits (0 for void).
    pub fn bits(self) -> u32 {
        match self {
            BaseType::Void => 0,
            BaseType::Char => 8,
            BaseType::Short => 16,
            BaseType::Int => 32,
            BaseType::Long => 64,
        }
    }
}

/// A (possibly pointer / array) type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    pub base: BaseType,
    pub unsigned: bool,
    /// Pointer indirection level (`int*` = 1).
    pub pointers: u32,
    /// Fixed array dimensions (outermost first). Empty for scalars.
    pub dims: Vec<u64>,
}

impl Type {
    /// Scalar signed int.
    pub fn int() -> Type {
        Type { base: BaseType::Int, unsigned: false, pointers: 0, dims: Vec::new() }
    }

    /// Scalar of a given base.
    pub fn scalar(base: BaseType) -> Type {
        Type { base, unsigned: false, pointers: 0, dims: Vec::new() }
    }

    /// True for plain integer scalars.
    pub fn is_scalar(&self) -> bool {
        self.pointers == 0 && self.dims.is_empty() && self.base != BaseType::Void
    }

    /// True for pointer types.
    pub fn is_pointer(&self) -> bool {
        self.pointers > 0
    }

    /// True for array types.
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Total number of scalar elements for arrays (1 for scalars).
    pub fn element_count(&self) -> u64 {
        self.dims.iter().product::<u64>().max(1)
    }

    /// Storage width in bits for value wrapping.
    pub fn bits(&self) -> u32 {
        if self.pointers > 0 {
            64
        } else {
            self.base.bits()
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.unsigned {
            write!(f, "unsigned ")?;
        }
        let b = match self.base {
            BaseType::Void => "void",
            BaseType::Char => "char",
            BaseType::Short => "short",
            BaseType::Int => "int",
            BaseType::Long => "long",
        };
        write!(f, "{b}")?;
        for _ in 0..self.pointers {
            write!(f, "*")?;
        }
        for d in &self.dims {
            write!(f, "[{d}]")?;
        }
        Ok(())
    }
}

/// An HLS-style pragma attached to a function or loop, e.g.
/// `#pragma HLS pipeline II=2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// Raw text after `#pragma` (e.g. `HLS unroll factor=4`).
    pub text: String,
    pub line: u32,
}

impl Pragma {
    /// Parses `key=value` fields after the directive name; returns the
    /// directive (lowercased second word, e.g. `pipeline`) and fields.
    pub fn directive(&self) -> Option<(String, Vec<(String, String)>)> {
        let mut words = self.text.split_whitespace();
        let first = words.next()?;
        if !first.eq_ignore_ascii_case("hls") {
            return None;
        }
        let name = words.next()?.to_ascii_lowercase();
        let mut fields = Vec::new();
        for w in words {
            if let Some((k, v)) = w.split_once('=') {
                fields.push((k.to_ascii_lowercase(), v.to_string()));
            } else {
                fields.push((w.to_ascii_lowercase(), String::new()));
            }
        }
        Some((name, fields))
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub ret: Type,
    pub name: String,
    pub params: Vec<Param>,
    pub body: Block,
    /// Pragmas appearing at the top of the function body.
    pub pragmas: Vec<Pragma>,
    pub line: u32,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub ty: Type,
    pub name: String,
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// Statement with id and source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub id: StmtId,
    pub line: u32,
    pub kind: StmtKind,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Declaration with optional initializer.
    Decl { ty: Type, name: String, init: Option<Expr> },
    /// Expression statement (includes assignments and calls).
    Expr(Expr),
    If { cond: Expr, then_branch: Block, else_branch: Option<Block> },
    While { cond: Expr, body: Block, pragmas: Vec<Pragma> },
    DoWhile { body: Block, cond: Expr },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Block,
        pragmas: Vec<Pragma>,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Block),
    /// Free-standing pragma not attached to a loop.
    Pragma(Pragma),
}

/// Expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64),
    /// Character literal (value).
    CharLit(i64),
    /// String literal (only valid as a `printf` format / argument).
    StrLit(String),
    Ident(String),
    /// `a[i]` / `a[i][j]` chains are nested Index nodes.
    Index(Box<Expr>, Box<Expr>),
    Call(String, Vec<Expr>),
    Unary(UnOp, Box<Expr>),
    /// Postfix/prefix increment and decrement.
    IncDec { target: Box<Expr>, inc: bool, prefix: bool },
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Simple or compound assignment (`op` is `None` for plain `=`).
    Assign { op: Option<BinOp>, target: Box<Expr>, value: Box<Expr> },
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    Cast(Type, Box<Expr>),
    /// `sizeof(type)` resolved in bytes.
    SizeOf(Type),
    /// `&x` (address-of; limited to array/scalar names).
    AddrOf(Box<Expr>),
    /// `*p` (dereference).
    Deref(Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Not,
    BitNot,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add, Sub, Mul, Div, Rem,
    Shl, Shr,
    Lt, Le, Gt, Ge, Eq, Ne,
    BitAnd, BitXor, BitOr,
    LogAnd, LogOr,
}

impl BinOp {
    /// True for comparison operators (result is 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
}

/// Walks every statement in a block, depth-first.
pub fn walk_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &block.stmts {
        f(s);
        match &s.kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                walk_stmts(then_branch, f);
                if let Some(e) = else_branch {
                    walk_stmts(e, f);
                }
            }
            StmtKind::While { body, .. } | StmtKind::DoWhile { body, .. } => walk_stmts(body, f),
            StmtKind::For { init, body, .. } => {
                if let Some(i) = init {
                    f(i);
                }
                walk_stmts(body, f);
            }
            StmtKind::Block(b) => walk_stmts(b, f),
            _ => {}
        }
    }
}

/// Walks every expression in a statement.
pub fn walk_stmt_exprs<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &s.kind {
        StmtKind::Decl { init: Some(e), .. } => walk_expr(e, f),
        StmtKind::Expr(e) | StmtKind::Return(Some(e)) => walk_expr(e, f),
        StmtKind::If { cond, .. } => walk_expr(cond, f),
        StmtKind::While { cond, .. } | StmtKind::DoWhile { cond, .. } => walk_expr(cond, f),
        StmtKind::For { cond, step, .. } => {
            if let Some(c) = cond {
                walk_expr(c, f);
            }
            if let Some(st) = step {
                walk_expr(st, f);
            }
        }
        _ => {}
    }
}

/// Depth-first expression walk.
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Index(a, b) | Expr::Binary(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Call(_, args) => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Unary(_, a) | Expr::Cast(_, a) | Expr::AddrOf(a) | Expr::Deref(a) => walk_expr(a, f),
        Expr::IncDec { target, .. } => walk_expr(target, f),
        Expr::Assign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        Expr::Ternary(a, b, c) => {
            walk_expr(a, f);
            walk_expr(b, f);
            walk_expr(c, f);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display_and_bits() {
        let t = Type { base: BaseType::Int, unsigned: true, pointers: 1, dims: vec![] };
        assert_eq!(t.to_string(), "unsigned int*");
        assert_eq!(t.bits(), 64);
        assert_eq!(Type::scalar(BaseType::Char).bits(), 8);
    }

    #[test]
    fn pragma_parsing() {
        let p = Pragma { text: "HLS pipeline II=2".into(), line: 1 };
        let (name, fields) = p.directive().unwrap();
        assert_eq!(name, "pipeline");
        assert_eq!(fields, vec![("ii".to_string(), "2".to_string())]);
        let q = Pragma { text: "once".into(), line: 1 };
        assert!(q.directive().is_none());
    }

    #[test]
    fn element_count() {
        let t = Type { base: BaseType::Int, unsigned: false, pointers: 0, dims: vec![4, 8] };
        assert_eq!(t.element_count(), 32);
        assert!(t.is_array());
    }
}
