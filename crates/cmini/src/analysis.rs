//! Static analyses over mini-C programs.
//!
//! * HLS-compatibility scan: finds the constructs an HLS compiler rejects
//!   (dynamic allocation, recursion, unbounded loops, pointer juggling,
//!   stdio) — the error feed for the repair framework (paper Fig. 2 stage 1).
//! * Call-graph and recursion detection.
//! * Backward slicing: which variables influence a target variable —
//!   HLSTester's "key variable" identification (paper Fig. 3 step 2).

use crate::ast::*;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Kinds of HLS incompatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IncompatKind {
    DynamicAllocation,
    Recursion,
    UnboundedLoop,
    PointerArithmetic,
    StdIo,
    /// `while(1)`-style loop with `break` (bounded in practice but needs a
    /// rewrite for HLS).
    IrregularExit,
}

impl fmt::Display for IncompatKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IncompatKind::DynamicAllocation => "dynamic-allocation",
            IncompatKind::Recursion => "recursion",
            IncompatKind::UnboundedLoop => "unbounded-loop",
            IncompatKind::PointerArithmetic => "pointer-arithmetic",
            IncompatKind::StdIo => "stdio",
            IncompatKind::IrregularExit => "irregular-exit",
        };
        f.write_str(s)
    }
}

/// One HLS incompatibility finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incompat {
    pub kind: IncompatKind,
    pub function: String,
    pub line: u32,
    pub detail: String,
}

impl fmt::Display for Incompat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HLS error [{}] in `{}` line {}: {}",
            self.kind, self.function, self.line, self.detail
        )
    }
}

/// Scans a program for HLS-incompatible constructs.
pub fn hls_compat_scan(prog: &Program) -> Vec<Incompat> {
    let mut out = Vec::new();
    let recursive = recursive_functions(prog);
    for f in &prog.functions {
        if recursive.contains(&f.name) {
            out.push(Incompat {
                kind: IncompatKind::Recursion,
                function: f.name.clone(),
                line: f.line,
                detail: format!("function `{}` is (mutually) recursive", f.name),
            });
        }
        walk_stmts(&f.body, &mut |s| {
            match &s.kind {
                StmtKind::While { cond, body, .. } => {
                    if is_const_true(cond) {
                        let kind = if contains_break(body) {
                            IncompatKind::IrregularExit
                        } else {
                            IncompatKind::UnboundedLoop
                        };
                        out.push(Incompat {
                            kind,
                            function: f.name.clone(),
                            line: s.line,
                            detail: "while(1) loop".to_string(),
                        });
                    } else if !while_has_affine_bound(cond, body) {
                        out.push(Incompat {
                            kind: IncompatKind::UnboundedLoop,
                            function: f.name.clone(),
                            line: s.line,
                            detail: "loop bound is not statically analyzable".to_string(),
                        });
                    }
                }
                StmtKind::For { cond, step, .. }
                    if (cond.is_none() || step.is_none()) => {
                        out.push(Incompat {
                            kind: IncompatKind::UnboundedLoop,
                            function: f.name.clone(),
                            line: s.line,
                            detail: "for loop without bound or step".to_string(),
                        });
                    }
                _ => {}
            }
            walk_stmt_exprs(s, &mut |e| match e {
                Expr::Call(name, _) if name == "malloc" || name == "calloc" || name == "free" => {
                    out.push(Incompat {
                        kind: IncompatKind::DynamicAllocation,
                        function: f.name.clone(),
                        line: s.line,
                        detail: format!("call to `{name}`"),
                    });
                }
                Expr::Call(name, _) if name == "printf" || name == "putchar" => {
                    out.push(Incompat {
                        kind: IncompatKind::StdIo,
                        function: f.name.clone(),
                        line: s.line,
                        detail: format!("call to `{name}`"),
                    });
                }
                Expr::Binary(BinOp::Add | BinOp::Sub, a, _) => {
                    // Pointer arithmetic heuristic: `p + i` where p is a
                    // declared pointer variable.
                    if let Expr::Ident(n) = &**a {
                        if pointer_vars(f).contains(n) {
                            out.push(Incompat {
                                kind: IncompatKind::PointerArithmetic,
                                function: f.name.clone(),
                                line: s.line,
                                detail: format!("arithmetic on pointer `{n}`"),
                            });
                        }
                    }
                }
                _ => {}
            });
        });
    }
    out
}

fn is_const_true(e: &Expr) -> bool {
    matches!(e, Expr::IntLit(v) if *v != 0)
}

fn contains_break(b: &Block) -> bool {
    let mut found = false;
    walk_stmts(b, &mut |s| {
        if matches!(s.kind, StmtKind::Break) {
            found = true;
        }
    });
    found
}

/// Heuristic: a `while (x < bound)`-style loop whose body advances `x` by a
/// compile-time constant step counts as bounded. Non-affine updates
/// (`x = x / 2`, `x = 3 * x + 1`, `b = a % b`) do not qualify — an HLS tool
/// cannot derive a trip count for them.
fn while_has_affine_bound(cond: &Expr, body: &Block) -> bool {
    let var = match cond {
        Expr::Binary(op, a, _) if op.is_comparison() => match &**a {
            Expr::Ident(n) => n.clone(),
            _ => return false,
        },
        _ => return false,
    };
    let is_var = |e: &Expr| matches!(e, Expr::Ident(n) if *n == var);
    let mut updated = false;
    walk_stmts(body, &mut |s| {
        if let StmtKind::Expr(e) = &s.kind {
            match e {
                // x++ / x-- / ++x / --x
                Expr::IncDec { target, .. } if is_var(target) => updated = true,
                // x += C / x -= C
                Expr::Assign { op: Some(BinOp::Add | BinOp::Sub), target, value }
                    if is_var(target) && matches!(&**value, Expr::IntLit(_)) =>
                {
                    updated = true
                }
                // x = x + C / x = x - C (either operand order for +)
                Expr::Assign { op: None, target, value } if is_var(target) => {
                    if let Expr::Binary(BinOp::Add | BinOp::Sub, a, b) = &**value {
                        let affine = (is_var(a) && matches!(&**b, Expr::IntLit(_)))
                            || (is_var(b) && matches!(&**a, Expr::IntLit(_)));
                        if affine {
                            updated = true;
                        }
                    }
                }
                _ => {}
            }
        }
    });
    updated
}

fn pointer_vars(f: &Function) -> HashSet<String> {
    let mut out = HashSet::new();
    for p in &f.params {
        if p.ty.is_pointer() {
            out.insert(p.name.clone());
        }
    }
    walk_stmts(&f.body, &mut |s| {
        if let StmtKind::Decl { ty, name, .. } = &s.kind {
            if ty.is_pointer() {
                out.insert(name.clone());
            }
        }
    });
    out
}

/// Builds the (direct) call graph: caller -> callees.
pub fn call_graph(prog: &Program) -> HashMap<String, HashSet<String>> {
    let builtin: HashSet<&str> = ["malloc", "calloc", "free", "printf", "putchar", "assert",
        "abs", "memset", "memcpy"]
        .into_iter()
        .collect();
    let mut g = HashMap::new();
    for f in &prog.functions {
        let mut callees = HashSet::new();
        walk_stmts(&f.body, &mut |s| {
            walk_stmt_exprs(s, &mut |e| {
                if let Expr::Call(name, _) = e {
                    if !builtin.contains(name.as_str()) {
                        callees.insert(name.clone());
                    }
                }
            });
        });
        g.insert(f.name.clone(), callees);
    }
    g
}

/// Returns functions that can reach themselves through the call graph.
pub fn recursive_functions(prog: &Program) -> HashSet<String> {
    let g = call_graph(prog);
    let mut out = HashSet::new();
    for start in g.keys() {
        // DFS from each function; small graphs make this cheap.
        let mut stack: Vec<&String> = g[start].iter().collect();
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == start {
                out.insert(start.clone());
                break;
            }
            if seen.insert(n.clone()) {
                if let Some(next) = g.get(n) {
                    stack.extend(next.iter());
                }
            }
        }
    }
    out
}

/// Result of a backward slice.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Slice {
    /// Variables that (transitively) influence the target.
    pub vars: HashSet<String>,
    /// Statements in the slice.
    pub stmts: HashSet<StmtId>,
}

/// Computes a flow-insensitive backward slice of `target` within function
/// `func`: the set of variables whose values can influence `target`,
/// including control dependences through branch/loop conditions.
///
/// This implements HLSTester's "key variable" identification: the returned
/// variables are the ones worth instrumenting for spectra.
pub fn backward_slice(prog: &Program, func: &str, target: &str) -> Slice {
    let Some(f) = prog.function(func) else { return Slice::default() };
    // Collect per-statement (defs, uses, control-uses).
    struct DefUse {
        id: StmtId,
        defs: HashSet<String>,
        uses: HashSet<String>,
    }
    let mut entries: Vec<DefUse> = Vec::new();
    collect_def_use(&f.body, &HashSet::new(), &mut entries);

    let mut slice = Slice::default();
    slice.vars.insert(target.to_string());
    // Fixed point: any statement defining a sliced var adds its uses.
    loop {
        let before = (slice.vars.len(), slice.stmts.len());
        for e in &entries {
            if e.defs.iter().any(|d| slice.vars.contains(d)) {
                slice.stmts.insert(e.id);
                for u in &e.uses {
                    slice.vars.insert(u.clone());
                }
            }
        }
        if (slice.vars.len(), slice.stmts.len()) == before {
            break;
        }
    }
    return slice;

    fn assign_target_name(e: &Expr) -> Option<String> {
        match e {
            Expr::Ident(n) => Some(n.clone()),
            Expr::Index(b, _) | Expr::Deref(b) | Expr::Cast(_, b) => assign_target_name(b),
            _ => None,
        }
    }

    fn collect_def_use(
        block: &Block,
        control: &HashSet<String>,
        out: &mut Vec<DefUse>,
    ) {
        for s in &block.stmts {
            let mut defs = HashSet::new();
            let mut uses = control.clone();
            match &s.kind {
                StmtKind::Decl { name, init, .. } => {
                    defs.insert(name.clone());
                    if let Some(e) = init {
                        expr_uses(e, &mut uses);
                    }
                }
                StmtKind::Expr(e) => {
                    collect_expr_defs(e, &mut defs, &mut uses);
                }
                StmtKind::Return(Some(e)) => expr_uses(e, &mut uses),
                StmtKind::If { cond, then_branch, else_branch } => {
                    expr_uses(cond, &mut uses);
                    let mut inner = control.clone();
                    expr_uses(cond, &mut inner);
                    collect_def_use(then_branch, &inner, out);
                    if let Some(eb) = else_branch {
                        collect_def_use(eb, &inner, out);
                    }
                }
                StmtKind::While { cond, body, .. } | StmtKind::DoWhile { cond, body } => {
                    expr_uses(cond, &mut uses);
                    let mut inner = control.clone();
                    expr_uses(cond, &mut inner);
                    collect_def_use(body, &inner, out);
                }
                StmtKind::For { init, cond, step, body, .. } => {
                    let mut inner = control.clone();
                    if let Some(c) = cond {
                        expr_uses(c, &mut uses);
                        expr_uses(c, &mut inner);
                    }
                    if let Some(i) = init {
                        collect_def_use(
                            &Block { stmts: vec![(**i).clone()] },
                            control,
                            out,
                        );
                    }
                    if let Some(st) = step {
                        let mut sd = HashSet::new();
                        let mut su = inner.clone();
                        collect_expr_defs(st, &mut sd, &mut su);
                        out.push(DefUse { id: s.id, defs: sd, uses: su });
                    }
                    collect_def_use(body, &inner, out);
                }
                StmtKind::Block(b) => collect_def_use(b, control, out),
                _ => {}
            }
            out.push(DefUse { id: s.id, defs, uses });
        }
    }

    fn collect_expr_defs(e: &Expr, defs: &mut HashSet<String>, uses: &mut HashSet<String>) {
        match e {
            Expr::Assign { op, target, value } => {
                if let Some(n) = assign_target_name(target) {
                    defs.insert(n.clone());
                    if op.is_some() {
                        uses.insert(n);
                    }
                }
                // Index expressions inside the target are uses.
                if let Expr::Index(_, idx) = &**target {
                    expr_uses(idx, uses);
                }
                expr_uses(value, uses);
            }
            Expr::IncDec { target, .. } => {
                if let Some(n) = assign_target_name(target) {
                    defs.insert(n.clone());
                    uses.insert(n);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    expr_uses(a, uses);
                    // An array passed to a call may be written by the callee.
                    if let Expr::Ident(n) = a {
                        defs.insert(n.clone());
                    }
                }
            }
            other => expr_uses(other, uses),
        }
    }

    fn expr_uses(e: &Expr, out: &mut HashSet<String>) {
        walk_expr(e, &mut |x| {
            if let Expr::Ident(n) = x {
                out.insert(n.clone());
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn detects_malloc_and_stdio() {
        let src = r#"
          int f(int n) {
            int *b = (int*)malloc(n * sizeof(int));
            printf("%d", b[0]);
            free(b);
            return 0;
          }"#;
        let issues = hls_compat_scan(&parse(src).unwrap());
        let kinds: Vec<IncompatKind> = issues.iter().map(|i| i.kind).collect();
        assert!(kinds.contains(&IncompatKind::DynamicAllocation));
        assert!(kinds.contains(&IncompatKind::StdIo));
    }

    #[test]
    fn detects_recursion() {
        let src = "
          int even(int n);
          int odd(int n) { if (n == 0) return 0; return even(n - 1); }
          int even(int n) { if (n == 0) return 1; return odd(n - 1); }
        ";
        // The forward declaration parses as a function with empty body? No:
        // our grammar requires bodies, so drop it.
        let src = &src.replace("int even(int n);\n", "");
        let issues = hls_compat_scan(&parse(src).unwrap());
        assert!(issues.iter().any(|i| i.kind == IncompatKind::Recursion));
        let rec = recursive_functions(&parse(src).unwrap());
        assert!(rec.contains("even") && rec.contains("odd"));
    }

    #[test]
    fn detects_unbounded_and_irregular_loops() {
        let src = "
          int f(int n) {
            while (1) { n++; if (n > 10) break; }
            int x = n;
            while (x < 100) { }
            return x;
          }";
        let issues = hls_compat_scan(&parse(src).unwrap());
        assert!(issues.iter().any(|i| i.kind == IncompatKind::IrregularExit));
        assert!(issues.iter().any(|i| i.kind == IncompatKind::UnboundedLoop));
    }

    #[test]
    fn bounded_loops_pass() {
        let src = "
          int f(int n) {
            int s = 0;
            for (int i = 0; i < 16; i++) s += i;
            int j = 0;
            while (j < 8) { s += j; j++; }
            return s;
          }";
        let issues = hls_compat_scan(&parse(src).unwrap());
        assert!(issues.is_empty(), "{issues:?}");
    }

    #[test]
    fn backward_slice_finds_influencers() {
        let src = "
          int f(int a, int b, int c) {
            int x = a + 1;
            int y = b * 2;
            int z = c;       // not an influencer of out
            int out = 0;
            if (x > 3) out = y;
            return out;
          }";
        let p = parse(src).unwrap();
        let s = backward_slice(&p, "f", "out");
        assert!(s.vars.contains("x"), "control dependence via if");
        assert!(s.vars.contains("y"));
        assert!(s.vars.contains("a"));
        assert!(s.vars.contains("b"));
        assert!(!s.vars.contains("z"), "{:?}", s.vars);
    }

    #[test]
    fn slice_through_loops() {
        let src = "
          int f(int n) {
            int acc = 0;
            for (int i = 0; i < n; i++) acc += i;
            return acc;
          }";
        let p = parse(src).unwrap();
        let s = backward_slice(&p, "f", "acc");
        assert!(s.vars.contains("i"));
        assert!(s.vars.contains("n"));
    }

    #[test]
    fn call_graph_shape() {
        let src = "
          int helper(int a) { return a * 2; }
          int top(int a) { return helper(a) + 1; }
        ";
        let g = call_graph(&parse(src).unwrap());
        assert!(g["top"].contains("helper"));
        assert!(g["helper"].is_empty());
    }
}
