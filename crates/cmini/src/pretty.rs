//! C source emission for mini-C ASTs.
//!
//! Used to render repaired programs, to feed program text into prompts, and
//! for round-trip tests (`parse(emit(p))` is structurally equal modulo
//! statement ids).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program.
pub fn emit_program(p: &Program) -> String {
    let mut out = String::new();
    for f in &p.functions {
        out.push_str(&emit_function(f));
        out.push('\n');
    }
    out
}

/// Renders one function.
pub fn emit_function(f: &Function) -> String {
    let mut s = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| {
            let mut t = format!("{} {}", type_prefix(&p.ty), p.name);
            for d in &p.ty.dims {
                write!(t, "[{d}]").unwrap();
            }
            t
        })
        .collect();
    writeln!(s, "{} {}({}) {{", type_prefix(&f.ret), f.name, params.join(", ")).unwrap();
    for pr in &f.pragmas {
        writeln!(s, "  #pragma {}", pr.text).unwrap();
    }
    for st in &f.body.stmts {
        emit_stmt(&mut s, st, 1);
    }
    s.push_str("}\n");
    s
}

fn type_prefix(t: &Type) -> String {
    let mut s = String::new();
    if t.unsigned {
        s.push_str("unsigned ");
    }
    s.push_str(match t.base {
        BaseType::Void => "void",
        BaseType::Char => "char",
        BaseType::Short => "short",
        BaseType::Int => "int",
        BaseType::Long => "long",
    });
    for _ in 0..t.pointers {
        s.push('*');
    }
    s
}

fn indent(s: &mut String, level: usize) {
    for _ in 0..level {
        s.push_str("  ");
    }
}

fn emit_block(s: &mut String, b: &Block, level: usize) {
    s.push_str("{\n");
    for st in &b.stmts {
        emit_stmt(s, st, level + 1);
    }
    indent(s, level);
    s.push_str("}\n");
}

fn emit_stmt(s: &mut String, st: &Stmt, level: usize) {
    indent(s, level);
    match &st.kind {
        StmtKind::Decl { ty, name, init } => {
            write!(s, "{} {}", type_prefix(ty), name).unwrap();
            for d in &ty.dims {
                write!(s, "[{d}]").unwrap();
            }
            if let Some(e) = init {
                write!(s, " = {}", emit_expr(e)).unwrap();
            }
            s.push_str(";\n");
        }
        StmtKind::Expr(e) => writeln!(s, "{};", emit_expr(e)).unwrap(),
        StmtKind::If { cond, then_branch, else_branch } => {
            write!(s, "if ({}) ", emit_expr(cond)).unwrap();
            emit_block(s, then_branch, level);
            if let Some(eb) = else_branch {
                indent(s, level);
                s.push_str("else ");
                emit_block(s, eb, level);
            }
        }
        StmtKind::While { cond, body, pragmas } => {
            for p in pragmas {
                writeln!(s, "#pragma {}", p.text).unwrap();
                indent(s, level);
            }
            write!(s, "while ({}) ", emit_expr(cond)).unwrap();
            emit_block(s, body, level);
        }
        StmtKind::DoWhile { body, cond } => {
            s.push_str("do ");
            emit_block(s, body, level);
            indent(s, level);
            writeln!(s, "while ({});", emit_expr(cond)).unwrap();
        }
        StmtKind::For { init, cond, step, body, pragmas } => {
            for p in pragmas {
                writeln!(s, "#pragma {}", p.text).unwrap();
                indent(s, level);
            }
            let i = init
                .as_ref()
                .map(|st| emit_stmt_inline(st))
                .unwrap_or_default();
            let c = cond.as_ref().map(emit_expr).unwrap_or_default();
            let p = step.as_ref().map(emit_expr).unwrap_or_default();
            write!(s, "for ({i}; {c}; {p}) ").unwrap();
            emit_block(s, body, level);
        }
        StmtKind::Return(e) => match e {
            Some(e) => writeln!(s, "return {};", emit_expr(e)).unwrap(),
            None => s.push_str("return;\n"),
        },
        StmtKind::Break => s.push_str("break;\n"),
        StmtKind::Continue => s.push_str("continue;\n"),
        StmtKind::Block(b) => emit_block(s, b, level),
        StmtKind::Pragma(p) => writeln!(s, "#pragma {}", p.text).unwrap(),
    }
}

fn emit_stmt_inline(st: &Stmt) -> String {
    match &st.kind {
        StmtKind::Decl { ty, name, init } => {
            let mut s = format!("{} {}", type_prefix(ty), name);
            if let Some(e) = init {
                s.push_str(&format!(" = {}", emit_expr(e)));
            }
            s
        }
        StmtKind::Expr(e) => emit_expr(e),
        _ => String::new(),
    }
}

fn binop_str(op: BinOp) -> &'static str {
    use BinOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Rem => "%",
        Shl => "<<",
        Shr => ">>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Eq => "==",
        Ne => "!=",
        BitAnd => "&",
        BitXor => "^",
        BitOr => "|",
        LogAnd => "&&",
        LogOr => "||",
    }
}

/// Renders an expression (fully parenthesized).
pub fn emit_expr(e: &Expr) -> String {
    match e {
        Expr::IntLit(v) => v.to_string(),
        Expr::CharLit(v) => format!("{v}"),
        Expr::StrLit(s) => format!("{s:?}"),
        Expr::Ident(n) => n.clone(),
        Expr::Index(b, i) => format!("{}[{}]", emit_expr(b), emit_expr(i)),
        Expr::Call(n, args) => {
            let a: Vec<String> = args.iter().map(emit_expr).collect();
            format!("{n}({})", a.join(", "))
        }
        Expr::Unary(op, a) => {
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("{o}({})", emit_expr(a))
        }
        Expr::IncDec { target, inc, prefix } => {
            let op = if *inc { "++" } else { "--" };
            if *prefix {
                format!("{op}{}", emit_expr(target))
            } else {
                format!("{}{op}", emit_expr(target))
            }
        }
        Expr::Binary(op, a, b) => {
            format!("({} {} {})", emit_expr(a), binop_str(*op), emit_expr(b))
        }
        Expr::Assign { op, target, value } => {
            let o = match op {
                None => "=".to_string(),
                Some(b) => format!("{}=", binop_str(*b)),
            };
            format!("{} {o} {}", emit_expr(target), emit_expr(value))
        }
        Expr::Ternary(c, t, f) => {
            format!("({} ? {} : {})", emit_expr(c), emit_expr(t), emit_expr(f))
        }
        Expr::Cast(ty, a) => format!("({}){}", type_prefix(ty), emit_expr(a)),
        Expr::SizeOf(ty) => format!("sizeof({})", type_prefix(ty)),
        Expr::AddrOf(a) => format!("&{}", emit_expr(a)),
        Expr::Deref(a) => format!("*({})", emit_expr(a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::parser::parse;

    #[test]
    fn roundtrip_behaviour_preserved() {
        let src = "
          int f(int n) {
            int s = 0;
            #pragma HLS pipeline II=1
            for (int i = 0; i < n; i++) {
              if (i % 2 == 0) s += i; else s -= 1;
            }
            return s;
          }";
        let p1 = parse(src).unwrap();
        let emitted = emit_program(&p1);
        let p2 = parse(&emitted).unwrap_or_else(|e| panic!("{e}\n{emitted}"));
        let r1 = Interp::new(&p1).call_ints("f", &[10]).unwrap();
        let r2 = Interp::new(&p2).call_ints("f", &[10]).unwrap();
        assert_eq!(r1, r2);
        assert!(emitted.contains("#pragma HLS pipeline II=1"));
    }

    #[test]
    fn emits_arrays_and_calls() {
        let src = "
          void fir(int x[8], int y[8]) {
            for (int i = 0; i < 8; i++) y[i] = x[i] * 3;
          }";
        let p = parse(src).unwrap();
        let out = emit_program(&p);
        assert!(out.contains("int x[8]"));
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn emits_malloc_pattern() {
        let src = "int f(int n) { int *b = (int*)malloc(n * sizeof(int)); free(b); return 0; }";
        let p = parse(src).unwrap();
        let out = emit_program(&p);
        assert!(out.contains("malloc"));
        assert!(parse(&out).is_ok());
    }
}
