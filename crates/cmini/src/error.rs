//! Error types for the mini-C frontend and interpreter.

use std::fmt;

/// Compile-time or runtime error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CminiError {
    Lex { line: u32, msg: String },
    Parse { line: u32, msg: String },
    Type { line: u32, msg: String },
    Runtime(RuntimeError),
}

/// Runtime failure; the SLT loop scores a snippet as zero when evaluation
/// raises any of these (the paper: "score is set to zero if the code does
/// not compile or causes an unwanted exception").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    pub kind: RuntimeErrorKind,
    pub msg: String,
    pub line: u32,
}

/// Classification of runtime failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuntimeErrorKind {
    DivideByZero,
    OutOfBounds,
    UseAfterFree,
    NullDeref,
    StepLimit,
    CallDepth,
    AssertFailed,
    UndefinedName,
    BadCall,
    OutOfMemory,
}

impl CminiError {
    pub(crate) fn lex(line: u32, msg: impl Into<String>) -> Self {
        CminiError::Lex { line, msg: msg.into() }
    }

    pub(crate) fn parse(line: u32, msg: impl Into<String>) -> Self {
        CminiError::Parse { line, msg: msg.into() }
    }

    /// Creates a type error.
    pub fn type_err(line: u32, msg: impl Into<String>) -> Self {
        CminiError::Type { line, msg: msg.into() }
    }

    /// Creates a runtime error.
    pub fn runtime(kind: RuntimeErrorKind, line: u32, msg: impl Into<String>) -> Self {
        CminiError::Runtime(RuntimeError { kind, msg: msg.into(), line })
    }

    /// Short category tag for tool-feedback formatting.
    pub fn category(&self) -> &'static str {
        match self {
            CminiError::Lex { .. } => "lex",
            CminiError::Parse { .. } => "parse",
            CminiError::Type { .. } => "type",
            CminiError::Runtime(_) => "runtime",
        }
    }
}

impl fmt::Display for CminiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CminiError::Lex { line, msg } => write!(f, "lex error at line {line}: {msg}"),
            CminiError::Parse { line, msg } => write!(f, "syntax error at line {line}: {msg}"),
            CminiError::Type { line, msg } => write!(f, "type error at line {line}: {msg}"),
            CminiError::Runtime(r) => {
                write!(f, "runtime error at line {}: {} ({:?})", r.line, r.msg, r.kind)
            }
        }
    }
}

impl std::error::Error for CminiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_category() {
        let e = CminiError::runtime(RuntimeErrorKind::DivideByZero, 3, "1/0");
        assert!(e.to_string().contains("DivideByZero"));
        assert_eq!(e.category(), "runtime");
    }
}
