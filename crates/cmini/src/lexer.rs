//! Tokenizer for mini-C.

use crate::error::CminiError;

/// A token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: Tok,
    pub line: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    Ident(String),
    IntLit(i64),
    CharLit(i64),
    StrLit(String),
    /// `#pragma <text>` (text until end of line).
    Pragma(String),
    // keywords
    KwVoid, KwChar, KwShort, KwInt, KwLong, KwUnsigned, KwSigned, KwConst,
    KwIf, KwElse, KwWhile, KwDo, KwFor, KwReturn, KwBreak, KwContinue,
    KwSizeof, KwStruct, KwStatic,
    // punctuation
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semi, Comma, Question, Colon,
    // operators
    Plus, Minus, Star, Slash, Percent,
    PlusPlus, MinusMinus,
    Amp, Pipe, Caret, Tilde, Bang,
    AmpAmp, PipePipe,
    Shl, Shr,
    Lt, Le, Gt, Ge, EqEq, Ne,
    Assign,
    PlusEq, MinusEq, StarEq, SlashEq, PercentEq,
    ShlEq, ShrEq, AmpEq, PipeEq, CaretEq,
    Arrow, Dot,
}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "void" => Tok::KwVoid,
        "char" => Tok::KwChar,
        "short" => Tok::KwShort,
        "int" => Tok::KwInt,
        "long" => Tok::KwLong,
        "unsigned" => Tok::KwUnsigned,
        "signed" => Tok::KwSigned,
        "const" => Tok::KwConst,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "do" => Tok::KwDo,
        "for" => Tok::KwFor,
        "return" => Tok::KwReturn,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        "sizeof" => Tok::KwSizeof,
        "struct" => Tok::KwStruct,
        "static" => Tok::KwStatic,
        _ => return None,
    })
}

/// Tokenizes mini-C source.
///
/// `#include` lines are skipped; `#pragma` lines become [`Tok::Pragma`]
/// tokens so HLS directives survive into the AST.
///
/// # Errors
///
/// Returns [`CminiError::Lex`] on malformed literals or unknown characters.
pub fn lex(src: &str) -> Result<Vec<Token>, CminiError> {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    macro_rules! push {
        ($k:expr) => {
            out.push(Token { kind: $k, line })
        };
    }
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= b.len() {
                        return Err(CminiError::lex(line, "unterminated block comment"));
                    }
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            b'#' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                let trimmed = text.trim_start_matches('#').trim_start();
                if let Some(rest) = trimmed.strip_prefix("pragma") {
                    push!(Tok::Pragma(rest.trim().to_string()));
                }
                // #include / #define etc. are skipped.
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let s = String::from_utf8_lossy(&b[start..i]).into_owned();
                push!(keyword(&s).unwrap_or(Tok::Ident(s)));
            }
            b'0'..=b'9' => {
                let start = i;
                let mut radix = 10;
                if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                    radix = 16;
                    i += 2;
                }
                let dstart = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric())
                {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[if radix == 16 { dstart } else { start }..i]);
                // Strip integer suffixes (u, l, ul, ll...).
                let digits: String = text
                    .chars()
                    .take_while(|ch| ch.is_digit(radix))
                    .collect();
                if digits.is_empty() {
                    return Err(CminiError::lex(line, format!("bad number `{text}`")));
                }
                let v = i64::from_str_radix(&digits, radix)
                    .or_else(|_| u64::from_str_radix(&digits, radix).map(|u| u as i64))
                    .map_err(|_| CminiError::lex(line, format!("bad number `{text}`")))?;
                push!(Tok::IntLit(v));
            }
            b'\'' => {
                i += 1;
                let v = match b.get(i) {
                    Some(b'\\') => {
                        i += 1;
                        let e = *b.get(i).ok_or_else(|| CminiError::lex(line, "bad char"))?;
                        i += 1;
                        match e {
                            b'n' => 10,
                            b't' => 9,
                            b'0' => 0,
                            b'\\' => 92,
                            b'\'' => 39,
                            other => other as i64,
                        }
                    }
                    Some(&ch) => {
                        i += 1;
                        ch as i64
                    }
                    None => return Err(CminiError::lex(line, "unterminated char literal")),
                };
                if b.get(i) != Some(&b'\'') {
                    return Err(CminiError::lex(line, "unterminated char literal"));
                }
                i += 1;
                push!(Tok::CharLit(v));
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            i += 1;
                            match b.get(i) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(&ch) => s.push(ch as char),
                                None => return Err(CminiError::lex(line, "unterminated string")),
                            }
                            i += 1;
                        }
                        Some(&ch) => {
                            if ch == b'\n' {
                                line += 1;
                            }
                            s.push(ch as char);
                            i += 1;
                        }
                        None => return Err(CminiError::lex(line, "unterminated string")),
                    }
                }
                push!(Tok::StrLit(s));
            }
            _ => {
                // Multi-char operators, longest first.
                let rest = &b[i..];
                let two = |a: u8, bb: u8| rest.len() >= 2 && rest[0] == a && rest[1] == bb;
                let three =
                    |a: u8, bb: u8, c2: u8| rest.len() >= 3 && rest[0] == a && rest[1] == bb && rest[2] == c2;
                let (tok, len) = if three(b'<', b'<', b'=') {
                    (Tok::ShlEq, 3)
                } else if three(b'>', b'>', b'=') {
                    (Tok::ShrEq, 3)
                } else if two(b'+', b'+') {
                    (Tok::PlusPlus, 2)
                } else if two(b'-', b'-') {
                    (Tok::MinusMinus, 2)
                } else if two(b'+', b'=') {
                    (Tok::PlusEq, 2)
                } else if two(b'-', b'=') {
                    (Tok::MinusEq, 2)
                } else if two(b'*', b'=') {
                    (Tok::StarEq, 2)
                } else if two(b'/', b'=') {
                    (Tok::SlashEq, 2)
                } else if two(b'%', b'=') {
                    (Tok::PercentEq, 2)
                } else if two(b'&', b'=') {
                    (Tok::AmpEq, 2)
                } else if two(b'|', b'=') {
                    (Tok::PipeEq, 2)
                } else if two(b'^', b'=') {
                    (Tok::CaretEq, 2)
                } else if two(b'&', b'&') {
                    (Tok::AmpAmp, 2)
                } else if two(b'|', b'|') {
                    (Tok::PipePipe, 2)
                } else if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::Ne, 2)
                } else if two(b'-', b'>') {
                    (Tok::Arrow, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b';' => Tok::Semi,
                        b',' => Tok::Comma,
                        b'?' => Tok::Question,
                        b':' => Tok::Colon,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'~' => Tok::Tilde,
                        b'!' => Tok::Bang,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        b'=' => Tok::Assign,
                        b'.' => Tok::Dot,
                        other => {
                            return Err(CminiError::lex(
                                line,
                                format!("unexpected character {:?}", other as char),
                            ))
                        }
                    };
                    (t, 1)
                };
                push!(tok);
                i += len;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("int main() { return 0; }");
        assert_eq!(k[0], Tok::KwInt);
        assert!(matches!(&k[1], Tok::Ident(s) if s == "main"));
        assert_eq!(*k.last().unwrap(), Tok::RBrace);
    }

    #[test]
    fn pragma_and_include() {
        let k = kinds("#include <stdio.h>\n#pragma HLS unroll factor=4\nint x;");
        assert_eq!(k[0], Tok::Pragma("HLS unroll factor=4".into()));
        assert_eq!(k[1], Tok::KwInt);
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(kinds("42 0x1F 7u 100L"), vec![
            Tok::IntLit(42),
            Tok::IntLit(31),
            Tok::IntLit(7),
            Tok::IntLit(100)
        ]);
    }

    #[test]
    fn char_and_string() {
        assert_eq!(kinds(r"'a' '\n'"), vec![Tok::CharLit(97), Tok::CharLit(10)]);
        assert_eq!(kinds(r#""hi\n""#), vec![Tok::StrLit("hi\n".into())]);
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            kinds("a += 1; b <<= 2; c && d"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusEq,
                Tok::IntLit(1),
                Tok::Semi,
                Tok::Ident("b".into()),
                Tok::ShlEq,
                Tok::IntLit(2),
                Tok::Semi,
                Tok::Ident("c".into()),
                Tok::AmpAmp,
                Tok::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(kinds("// x\n/* y\nz */ int"), vec![Tok::KwInt]);
    }
}
