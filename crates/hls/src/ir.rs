//! HLS intermediate representation and lowering from mini-C.
//!
//! A [`LoweredFn`] is a CFG of basic blocks over flat *slots* (scalar
//! registers) and *arrays* (memories). Lowering inlines all calls (the
//! HLS-compatible subset has no recursion), eagerly evaluates `&&`/`||`
//! and ternaries (documented divergence from C short-circuiting), and
//! applies `unroll` pragmas by body replication when the trip count is a
//! compile-time constant divisible by the factor.

use crate::error::HlsError;
use eda_cmini::{BinOp, Block as CBlock, Expr, Function, Pragma, Program, Stmt, StmtKind, Type,
                UnOp};
use std::collections::HashMap;

/// Index of a scalar register slot.
pub type Slot = u32;
/// Index of an array (memory).
pub type ArrId = u32;
/// Index of a basic block.
pub type BlockId = u32;

/// Functional-unit class an operation executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Adds, subtracts, compares, logic, shifts, selects, copies.
    Alu,
    Mul,
    Div,
    /// Memory port of the op's array.
    Mem,
}

/// One three-address operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    Const { dst: Slot, value: i64 },
    Bin { op: BinOp, dst: Slot, a: Slot, b: Slot },
    Un { op: UnOp, dst: Slot, a: Slot },
    /// `dst = c ? t : f` (eager select).
    Select { dst: Slot, c: Slot, t: Slot, f: Slot },
    Load { dst: Slot, arr: ArrId, idx: Slot },
    Store { arr: ArrId, idx: Slot, val: Slot },
    Copy { dst: Slot, src: Slot },
}

impl Op {
    /// The functional unit this op occupies.
    pub fn fu(&self) -> FuClass {
        match self {
            Op::Bin { op: BinOp::Mul, .. } => FuClass::Mul,
            Op::Bin { op: BinOp::Div | BinOp::Rem, .. } => FuClass::Div,
            Op::Load { .. } | Op::Store { .. } => FuClass::Mem,
            _ => FuClass::Alu,
        }
    }

    /// Destination slot written by this op, if any.
    pub fn dst(&self) -> Option<Slot> {
        match self {
            Op::Const { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Un { dst, .. }
            | Op::Select { dst, .. }
            | Op::Load { dst, .. }
            | Op::Copy { dst, .. } => Some(*dst),
            Op::Store { .. } => None,
        }
    }

    /// Slots read by this op.
    pub fn srcs(&self) -> Vec<Slot> {
        match self {
            Op::Const { .. } => vec![],
            Op::Bin { a, b, .. } => vec![*a, *b],
            Op::Un { a, .. } => vec![*a],
            Op::Select { c, t, f, .. } => vec![*c, *t, *f],
            Op::Load { idx, .. } => vec![*idx],
            Op::Store { idx, val, .. } => vec![*idx, *val],
            Op::Copy { src, .. } => vec![*src],
        }
    }

    /// The array touched by a memory op.
    pub fn array(&self) -> Option<ArrId> {
        match self {
            Op::Load { arr, .. } | Op::Store { arr, .. } => Some(*arr),
            _ => None,
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    Jump(BlockId),
    Branch { cond: Slot, then_bb: BlockId, else_bb: BlockId },
    Return(Option<Slot>),
}

/// A basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    pub ops: Vec<Op>,
    pub term: Terminator,
    /// Loop this block belongs to (innermost), if any.
    pub loop_id: Option<u32>,
}

/// Scalar register metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotInfo {
    pub name: String,
    pub bits: u32,
    pub unsigned: bool,
    /// True for compiler temporaries.
    pub temp: bool,
}

/// Array metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayInfo {
    pub name: String,
    pub len: u64,
    pub elem_bits: u32,
    pub unsigned: bool,
    /// True when the array is a top-level function parameter (external
    /// memory interface).
    pub is_param: bool,
}

/// Loop metadata recorded during lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    pub id: u32,
    /// Header block (condition check).
    pub header: BlockId,
    /// Body entry block.
    pub body: BlockId,
    /// Static trip count when known.
    pub trip_count: Option<u64>,
    /// Pipeline II requested via pragma.
    pub pipeline_ii: Option<u32>,
    /// Unroll factor applied during lowering.
    pub unrolled: u32,
}

/// A lowered function ready for scheduling.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredFn {
    pub name: String,
    pub slots: Vec<SlotInfo>,
    pub arrays: Vec<ArrayInfo>,
    pub blocks: Vec<BasicBlock>,
    pub loops: Vec<LoopInfo>,
    /// Scalar parameter slots in declaration order.
    pub scalar_params: Vec<Slot>,
    /// Array parameter ids in declaration order.
    pub array_params: Vec<ArrId>,
    pub entry: BlockId,
    /// Return value width (bits, unsigned); `None` for void.
    pub ret: Option<(u32, bool)>,
    /// Non-fatal notes produced during lowering (ignored pragmas etc.).
    pub warnings: Vec<String>,
}

/// Lowers `func` (and transitively inlined callees) from `prog`.
///
/// # Errors
///
/// Returns [`HlsError`] when the function uses constructs outside the
/// HLS-compatible subset (dynamic allocation, recursion, unbounded loops,
/// stdio) — run the repair flow first.
pub fn lower(prog: &Program, func: &str) -> Result<LoweredFn, HlsError> {
    let issues = eda_cmini::hls_compat_scan(prog);
    if let Some(first) = issues.first() {
        return Err(HlsError::Unsupported { msg: first.to_string(), line: first.line });
    }
    let f = prog
        .function(func)
        .ok_or_else(|| HlsError::Unsupported { msg: format!("no function `{func}`"), line: 0 })?;

    let mut lw = Lowerer {
        prog,
        out: LoweredFn {
            name: func.to_string(),
            slots: Vec::new(),
            arrays: Vec::new(),
            blocks: Vec::new(),
            loops: Vec::new(),
            scalar_params: Vec::new(),
            array_params: Vec::new(),
            entry: 0,
            ret: if f.ret.base == eda_cmini::BaseType::Void {
                None
            } else {
                Some((f.ret.bits().max(1), f.ret.unsigned))
            },
            warnings: Vec::new(),
        },
        scopes: vec![HashMap::new()],
        current: 0,
        loop_stack: Vec::new(),
        widths: collect_width_pragmas(f),
        inline_depth: 0,
        inline_ret: None,
    };
    lw.out.blocks.push(BasicBlock { ops: Vec::new(), term: Terminator::Return(None), loop_id: None });

    // Bind parameters.
    for p in &f.params {
        if p.ty.is_array() || p.ty.is_pointer() {
            let len = p.ty.element_count().max(1);
            let arr = lw.new_array(&p.name, len, p.ty.bits().max(1), p.ty.unsigned, true);
            lw.bind_array(&p.name, arr, p.ty.dims.clone());
            lw.out.array_params.push(arr);
        } else {
            let slot = lw.new_var(&p.name, &p.ty);
            lw.out.scalar_params.push(slot);
        }
    }
    lw.lower_block(&f.body)?;
    // Ensure final block terminates.
    let cur = lw.current as usize;
    if matches!(lw.out.blocks[cur].term, Terminator::Return(None)) {
        // Keep the implicit return.
    }
    Ok(lw.out)
}

fn collect_width_pragmas(f: &Function) -> HashMap<String, u32> {
    let mut out = HashMap::new();
    for p in &f.pragmas {
        if let Some((name, fields)) = p.directive() {
            if name == "bitwidth" {
                let var = fields.iter().find(|(k, _)| k == "var").map(|(_, v)| v.clone());
                let width = fields
                    .iter()
                    .find(|(k, _)| k == "width")
                    .and_then(|(_, v)| v.parse::<u32>().ok());
                if let (Some(var), Some(width)) = (var, width) {
                    out.insert(var, width.clamp(1, 64));
                }
            }
        }
    }
    out
}

#[derive(Clone)]
enum NameBinding {
    Scalar(Slot),
    Array { id: ArrId, dims: Vec<u64> },
}

struct Lowerer<'p> {
    prog: &'p Program,
    out: LoweredFn,
    scopes: Vec<HashMap<String, NameBinding>>,
    current: BlockId,
    /// (continue target, break target, loop id)
    loop_stack: Vec<(BlockId, BlockId, u32)>,
    widths: HashMap<String, u32>,
    inline_depth: u32,
    /// When lowering an inlined callee: (return-value slot, join block).
    inline_ret: Option<(Slot, BlockId)>,
}

impl<'p> Lowerer<'p> {
    fn new_block(&mut self) -> BlockId {
        let id = self.out.blocks.len() as BlockId;
        let loop_id = self.loop_stack.last().map(|(_, _, l)| *l);
        self.out
            .blocks
            .push(BasicBlock { ops: Vec::new(), term: Terminator::Return(None), loop_id });
        id
    }

    fn new_temp(&mut self, bits: u32, unsigned: bool) -> Slot {
        let id = self.out.slots.len() as Slot;
        self.out.slots.push(SlotInfo {
            name: format!("t{id}"),
            bits,
            unsigned,
            temp: true,
        });
        id
    }

    fn new_var(&mut self, name: &str, ty: &Type) -> Slot {
        let id = self.out.slots.len() as Slot;
        let bits = self.widths.get(name).copied().unwrap_or(ty.bits().max(1));
        self.out.slots.push(SlotInfo {
            name: format!("{name}_{id}"),
            bits,
            unsigned: ty.unsigned,
            temp: false,
        });
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), NameBinding::Scalar(id));
        id
    }

    fn new_array(&mut self, name: &str, len: u64, elem_bits: u32, unsigned: bool, is_param: bool) -> ArrId {
        let id = self.out.arrays.len() as ArrId;
        let elem_bits = self.widths.get(name).copied().unwrap_or(elem_bits);
        self.out.arrays.push(ArrayInfo {
            name: format!("{name}_{id}"),
            len,
            elem_bits,
            unsigned,
            is_param,
        });
        id
    }

    fn bind_array(&mut self, name: &str, id: ArrId, dims: Vec<u64>) {
        let dims = if dims.len() > 1 { dims[1..].to_vec() } else { Vec::new() };
        self.scopes
            .last_mut()
            .unwrap()
            .insert(name.to_string(), NameBinding::Array { id, dims });
    }

    fn lookup(&self, name: &str) -> Option<NameBinding> {
        for scope in self.scopes.iter().rev() {
            if let Some(b) = scope.get(name) {
                return Some(b.clone());
            }
        }
        None
    }

    fn push(&mut self, op: Op) {
        self.out.blocks[self.current as usize].ops.push(op);
    }

    fn terminate(&mut self, term: Terminator) {
        self.out.blocks[self.current as usize].term = term;
    }

    fn err<T>(&self, line: u32, msg: impl Into<String>) -> Result<T, HlsError> {
        Err(HlsError::Unsupported { msg: msg.into(), line })
    }

    fn lower_block(&mut self, b: &CBlock) -> Result<(), HlsError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.lower_stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, s: &Stmt) -> Result<(), HlsError> {
        match &s.kind {
            StmtKind::Pragma(_) => Ok(()),
            StmtKind::Decl { ty, name, init } => {
                if ty.is_array() {
                    let arr =
                        self.new_array(name, ty.element_count(), ty.bits().max(1), ty.unsigned, false);
                    self.bind_array(name, arr, ty.dims.clone());
                    Ok(())
                } else if ty.is_pointer() {
                    self.err(s.line, "pointer declarations are not HLS-synthesizable")
                } else {
                    let slot = self.new_var(name, ty);
                    let src = match init {
                        Some(e) => self.lower_expr(e, s.line)?,
                        None => {
                            let z = self.new_temp(ty.bits().max(1), ty.unsigned);
                            self.push(Op::Const { dst: z, value: 0 });
                            z
                        }
                    };
                    self.push(Op::Copy { dst: slot, src });
                    Ok(())
                }
            }
            StmtKind::Expr(e) => {
                self.lower_expr(e, s.line)?;
                Ok(())
            }
            StmtKind::Return(e) => {
                let slot = match e {
                    Some(e) => Some(self.lower_expr(e, s.line)?),
                    None => None,
                };
                match self.inline_ret {
                    Some((ret_slot, join)) => {
                        if let Some(v) = slot {
                            self.push(Op::Copy { dst: ret_slot, src: v });
                        }
                        self.terminate(Terminator::Jump(join));
                    }
                    None => self.terminate(Terminator::Return(slot)),
                }
                // Dead block for any trailing code.
                let dead = self.new_block();
                self.current = dead;
                Ok(())
            }
            StmtKind::If { cond, then_branch, else_branch } => {
                let c = self.lower_expr(cond, s.line)?;
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join = self.new_block();
                self.terminate(Terminator::Branch { cond: c, then_bb, else_bb });
                self.current = then_bb;
                self.lower_block(then_branch)?;
                self.terminate(Terminator::Jump(join));
                self.current = else_bb;
                if let Some(eb) = else_branch {
                    self.lower_block(eb)?;
                }
                self.terminate(Terminator::Jump(join));
                self.current = join;
                Ok(())
            }
            StmtKind::While { cond, body, pragmas } => {
                self.lower_loop(None, Some(cond), None, body, pragmas, None, s.line)
            }
            StmtKind::DoWhile { body, cond } => {
                // do { B } while (c)  =>  B; while (c) { B }
                self.lower_block(body)?;
                self.lower_loop(None, Some(cond), None, body, &[], None, s.line)
            }
            StmtKind::For { init, cond, step, body, pragmas } => {
                let trip = static_trip_count(init.as_deref(), cond.as_ref(), step.as_ref());
                if let Some(i) = init {
                    self.lower_stmt(i)?;
                }
                self.lower_loop(
                    None,
                    cond.as_ref(),
                    step.as_ref(),
                    body,
                    pragmas,
                    trip,
                    s.line,
                )
            }
            StmtKind::Break => {
                let Some((_, brk, _)) = self.loop_stack.last().copied() else {
                    return self.err(s.line, "break outside loop");
                };
                self.terminate(Terminator::Jump(brk));
                let dead = self.new_block();
                self.current = dead;
                Ok(())
            }
            StmtKind::Continue => {
                let Some((cont, _, _)) = self.loop_stack.last().copied() else {
                    return self.err(s.line, "continue outside loop");
                };
                self.terminate(Terminator::Jump(cont));
                let dead = self.new_block();
                self.current = dead;
                Ok(())
            }
            StmtKind::Block(b) => self.lower_block(b),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn lower_loop(
        &mut self,
        _init: Option<&Stmt>,
        cond: Option<&Expr>,
        step: Option<&Expr>,
        body: &CBlock,
        pragmas: &[Pragma],
        trip: Option<u64>,
        line: u32,
    ) -> Result<(), HlsError> {
        let loop_id = self.out.loops.len() as u32;
        let mut pipeline_ii = None;
        let mut unroll = 1u32;
        for p in pragmas {
            if let Some((name, fields)) = p.directive() {
                match name.as_str() {
                    "pipeline" => {
                        let ii = fields
                            .iter()
                            .find(|(k, _)| k == "ii")
                            .and_then(|(_, v)| v.parse::<u32>().ok())
                            .unwrap_or(1);
                        pipeline_ii = Some(ii.max(1));
                    }
                    "unroll" => {
                        unroll = fields
                            .iter()
                            .find(|(k, _)| k == "factor")
                            .and_then(|(_, v)| v.parse::<u32>().ok())
                            .unwrap_or(2)
                            .max(1);
                    }
                    _ => {}
                }
            }
        }
        // Unrolling requires a known trip count divisible by the factor and
        // a branch-free body.
        let mut replicate = 1u32;
        if unroll > 1 {
            let branch_free = body_is_branch_free(body);
            match trip {
                Some(t) if t % unroll as u64 == 0 && branch_free => replicate = unroll,
                _ => self.out.warnings.push(format!(
                    "line {line}: unroll factor {unroll} ignored (trip count unknown, \
                     not divisible, or body has control flow)"
                )),
            }
        }

        let header = self.new_block();
        self.terminate(Terminator::Jump(header));
        let body_bb = self.new_block();
        let exit_bb = self.new_block();

        self.out.loops.push(LoopInfo {
            id: loop_id,
            header,
            body: body_bb,
            trip_count: trip,
            pipeline_ii,
            unrolled: replicate,
        });

        // Header: evaluate condition.
        self.current = header;
        self.out.blocks[header as usize].loop_id = Some(loop_id);
        match cond {
            Some(c) => {
                let cs = self.lower_expr(c, line)?;
                self.terminate(Terminator::Branch { cond: cs, then_bb: body_bb, else_bb: exit_bb });
            }
            None => self.terminate(Terminator::Jump(body_bb)),
        }

        // Body (+ step), replicated `replicate` times.
        self.current = body_bb;
        self.out.blocks[body_bb as usize].loop_id = Some(loop_id);
        self.loop_stack.push((header, exit_bb, loop_id));
        for _ in 0..replicate {
            self.lower_block(body)?;
            if let Some(st) = step {
                self.lower_expr(st, line)?;
            }
        }
        self.loop_stack.pop();
        self.terminate(Terminator::Jump(header));
        self.current = exit_bb;
        Ok(())
    }

    fn slot_bits(&self, s: Slot) -> (u32, bool) {
        let i = &self.out.slots[s as usize];
        (i.bits, i.unsigned)
    }

    fn lower_expr(&mut self, e: &Expr, line: u32) -> Result<Slot, HlsError> {
        match e {
            Expr::IntLit(v) | Expr::CharLit(v) => {
                let t = self.new_temp(64, false);
                self.push(Op::Const { dst: t, value: *v });
                Ok(t)
            }
            Expr::StrLit(_) => self.err(line, "string literals are not synthesizable"),
            Expr::SizeOf(_) => {
                let t = self.new_temp(64, false);
                self.push(Op::Const { dst: t, value: 1 });
                Ok(t)
            }
            Expr::Ident(name) => match self.lookup(name) {
                Some(NameBinding::Scalar(s)) => Ok(s),
                Some(NameBinding::Array { .. }) => {
                    self.err(line, format!("array `{name}` used as a scalar"))
                }
                None => self.err(line, format!("unknown variable `{name}`")),
            },
            Expr::Cast(ty, inner) => {
                let v = self.lower_expr(inner, line)?;
                let t = self.new_temp(ty.bits().max(1), ty.unsigned);
                self.push(Op::Copy { dst: t, src: v });
                Ok(t)
            }
            Expr::Unary(op, a) => {
                let av = self.lower_expr(a, line)?;
                let (bits, unsigned) = self.slot_bits(av);
                let t = self.new_temp(if matches!(op, UnOp::Not) { 1 } else { bits }, unsigned);
                self.push(Op::Un { op: *op, dst: t, a: av });
                Ok(t)
            }
            Expr::Binary(op, a, b) => {
                let av = self.lower_expr(a, line)?;
                let bv = self.lower_expr(b, line)?;
                let (ab, au) = self.slot_bits(av);
                let (bb, _) = self.slot_bits(bv);
                let bits = if op.is_comparison() || matches!(op, BinOp::LogAnd | BinOp::LogOr) {
                    1
                } else {
                    ab.max(bb)
                };
                let t = self.new_temp(bits, au);
                self.push(Op::Bin { op: *op, dst: t, a: av, b: bv });
                Ok(t)
            }
            Expr::Ternary(c, tt, ff) => {
                let cv = self.lower_expr(c, line)?;
                let tv = self.lower_expr(tt, line)?;
                let fv = self.lower_expr(ff, line)?;
                let (tb, tu) = self.slot_bits(tv);
                let t = self.new_temp(tb, tu);
                self.push(Op::Select { dst: t, c: cv, t: tv, f: fv });
                Ok(t)
            }
            Expr::Index(..) => {
                let (arr, idx) = self.lower_array_access(e, line)?;
                let (bits, unsigned) = {
                    let a = &self.out.arrays[arr as usize];
                    (a.elem_bits, a.unsigned)
                };
                let t = self.new_temp(bits, unsigned);
                self.push(Op::Load { dst: t, arr, idx });
                Ok(t)
            }
            Expr::IncDec { target, inc, prefix } => {
                let cur = self.lower_expr(target, line)?;
                let one = self.new_temp(64, false);
                self.push(Op::Const { dst: one, value: 1 });
                let (bits, unsigned) = self.slot_bits(cur);
                let newv = self.new_temp(bits, unsigned);
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                self.push(Op::Bin { op, dst: newv, a: cur, b: one });
                self.store_target(target, newv, line)?;
                Ok(if *prefix { newv } else { cur })
            }
            Expr::Assign { op, target, value } => {
                let rhs = self.lower_expr(value, line)?;
                let v = match op {
                    None => rhs,
                    Some(binop) => {
                        let cur = self.lower_expr(target, line)?;
                        let (bits, unsigned) = self.slot_bits(cur);
                        let t = self.new_temp(bits, unsigned);
                        self.push(Op::Bin { op: *binop, dst: t, a: cur, b: rhs });
                        t
                    }
                };
                self.store_target(target, v, line)?;
                Ok(v)
            }
            Expr::Call(name, args) => self.lower_call(name, args, line),
            Expr::AddrOf(_) | Expr::Deref(_) => {
                self.err(line, "pointer operations are not HLS-synthesizable")
            }
        }
    }

    fn store_target(&mut self, target: &Expr, val: Slot, line: u32) -> Result<(), HlsError> {
        match target {
            Expr::Ident(name) => match self.lookup(name) {
                Some(NameBinding::Scalar(s)) => {
                    self.push(Op::Copy { dst: s, src: val });
                    Ok(())
                }
                _ => self.err(line, format!("cannot assign to `{name}`")),
            },
            Expr::Index(..) => {
                let (arr, idx) = self.lower_array_access(target, line)?;
                self.push(Op::Store { arr, idx, val });
                Ok(())
            }
            Expr::Cast(_, inner) => self.store_target(inner, val, line),
            _ => self.err(line, "unsupported assignment target"),
        }
    }

    /// Flattens an `a[i]` / `a[i][j]` chain to (array, linear index slot).
    fn lower_array_access(&mut self, e: &Expr, line: u32) -> Result<(ArrId, Slot), HlsError> {
        // Collect the index chain.
        let mut idxs = Vec::new();
        let mut cur = e;
        while let Expr::Index(base, idx) = cur {
            idxs.push(idx.as_ref());
            cur = base;
        }
        idxs.reverse();
        let Expr::Ident(name) = cur else {
            return self.err(line, "only named arrays can be indexed");
        };
        let Some(NameBinding::Array { id, dims }) = self.lookup(name) else {
            return self.err(line, format!("`{name}` is not an array"));
        };
        // Linearize: idx0 * prod(dims) + idx1 * prod(dims[1..]) + ...
        let mut linear: Option<Slot> = None;
        for (k, idx_expr) in idxs.iter().enumerate() {
            let iv = self.lower_expr(idx_expr, line)?;
            let stride: u64 = dims.iter().skip(k).product::<u64>().max(1);
            let scaled = if stride == 1 {
                iv
            } else {
                let c = self.new_temp(64, false);
                self.push(Op::Const { dst: c, value: stride as i64 });
                let t = self.new_temp(64, false);
                self.push(Op::Bin { op: BinOp::Mul, dst: t, a: iv, b: c });
                t
            };
            linear = Some(match linear {
                None => scaled,
                Some(acc) => {
                    let t = self.new_temp(64, false);
                    self.push(Op::Bin { op: BinOp::Add, dst: t, a: acc, b: scaled });
                    t
                }
            });
        }
        let idx = linear.ok_or(HlsError::Unsupported {
            msg: "array access without index".to_string(),
            line,
        })?;
        Ok((id, idx))
    }

    fn lower_call(&mut self, name: &str, args: &[Expr], line: u32) -> Result<Slot, HlsError> {
        match name {
            "abs" => {
                let a = self.lower_expr(&args[0], line)?;
                let zero = self.new_temp(64, false);
                self.push(Op::Const { dst: zero, value: 0 });
                let neg = self.new_temp(64, false);
                self.push(Op::Bin { op: BinOp::Sub, dst: neg, a: zero, b: a });
                let isneg = self.new_temp(1, false);
                self.push(Op::Bin { op: BinOp::Lt, dst: isneg, a, b: zero });
                let (bits, unsigned) = self.slot_bits(a);
                let t = self.new_temp(bits, unsigned);
                self.push(Op::Select { dst: t, c: isneg, t: neg, f: a });
                Ok(t)
            }
            "assert" => {
                // Hardware has no trap: asserts are dropped with a note.
                self.out
                    .warnings
                    .push(format!("line {line}: assert() dropped during synthesis"));
                let t = self.new_temp(1, false);
                self.push(Op::Const { dst: t, value: 0 });
                Ok(t)
            }
            "malloc" | "calloc" | "free" | "printf" | "putchar" | "memset" | "memcpy" => {
                self.err(line, format!("`{name}` is not HLS-synthesizable"))
            }
            _ => {
                // Inline user function.
                if self.inline_depth > 16 {
                    return self.err(line, "inlining depth exceeded");
                }
                let callee = self
                    .prog
                    .function(name)
                    .ok_or_else(|| HlsError::Unsupported {
                        msg: format!("unknown function `{name}`"),
                        line,
                    })?
                    .clone();
                if callee.params.len() != args.len() {
                    return self.err(line, format!("`{name}` arity mismatch"));
                }
                // Evaluate arguments in the caller scope, then bind a fresh
                // scope for the callee body.
                let mut bindings = Vec::new();
                for (p, a) in callee.params.iter().zip(args) {
                    if p.ty.is_array() || p.ty.is_pointer() {
                        // Array argument must be a named array.
                        let Expr::Ident(an) = a else {
                            return self.err(line, "array argument must be a plain array name");
                        };
                        let Some(NameBinding::Array { id, .. }) = self.lookup(an) else {
                            return self.err(line, format!("`{an}` is not an array"));
                        };
                        let dims =
                            if p.ty.dims.len() > 1 { p.ty.dims[1..].to_vec() } else { Vec::new() };
                        bindings.push((p.name.clone(), NameBinding::Array { id, dims }));
                    } else {
                        let v = self.lower_expr(a, line)?;
                        let slot = {
                            let id = self.out.slots.len() as Slot;
                            self.out.slots.push(SlotInfo {
                                name: format!("{}_{}_{id}", name, p.name),
                                bits: p.ty.bits().max(1),
                                unsigned: p.ty.unsigned,
                                temp: false,
                            });
                            id
                        };
                        self.push(Op::Copy { dst: slot, src: v });
                        bindings.push((p.name.clone(), NameBinding::Scalar(slot)));
                    }
                }
                let ret_slot = self.new_temp(callee.ret.bits().max(1), callee.ret.unsigned);
                self.push(Op::Const { dst: ret_slot, value: 0 });

                self.inline_depth += 1;
                let mut scope = HashMap::new();
                for (n, b) in bindings {
                    scope.insert(n, b);
                }
                self.scopes.push(scope);
                // Returns inside the callee become writes to ret_slot +
                // jump to a join block.
                let join = self.new_block();
                let saved = self.inline_ret.replace((ret_slot, join));
                for s in &callee.body.stmts {
                    self.lower_stmt(s)?;
                }
                self.terminate(Terminator::Jump(join));
                self.inline_ret = saved;
                self.scopes.pop();
                self.inline_depth -= 1;
                self.current = join;
                Ok(ret_slot)
            }
        }
    }
}

fn body_is_branch_free(b: &CBlock) -> bool {
    b.stmts.iter().all(|s| {
        matches!(
            s.kind,
            StmtKind::Decl { .. } | StmtKind::Expr(_) | StmtKind::Pragma(_)
        )
    })
}

/// Detects `for (i = C0; i < C1; i += C2)`-style loops and returns the trip
/// count.
fn static_trip_count(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Expr>,
) -> Option<u64> {
    let init = init?;
    let (var, start) = match &init.kind {
        StmtKind::Decl { name, init: Some(Expr::IntLit(v)), .. } => (name.clone(), *v),
        StmtKind::Expr(Expr::Assign { op: None, target, value }) => match (&**target, &**value) {
            (Expr::Ident(n), Expr::IntLit(v)) => (n.clone(), *v),
            _ => return None,
        },
        _ => return None,
    };
    let (end, inclusive) = match cond? {
        Expr::Binary(BinOp::Lt, a, b) => match (&**a, &**b) {
            (Expr::Ident(n), Expr::IntLit(v)) if *n == var => (*v, false),
            _ => return None,
        },
        Expr::Binary(BinOp::Le, a, b) => match (&**a, &**b) {
            (Expr::Ident(n), Expr::IntLit(v)) if *n == var => (*v, true),
            _ => return None,
        },
        _ => return None,
    };
    let stride = match step? {
        Expr::IncDec { target, inc: true, .. } => match &**target {
            Expr::Ident(n) if *n == var => 1,
            _ => return None,
        },
        Expr::Assign { op: Some(BinOp::Add), target, value } => match (&**target, &**value) {
            (Expr::Ident(n), Expr::IntLit(v)) if *n == var && *v > 0 => *v,
            _ => return None,
        },
        _ => return None,
    };
    let span = end - start + if inclusive { 1 } else { 0 };
    if span <= 0 {
        return Some(0);
    }
    Some(((span + stride - 1) / stride) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cmini::parse;

    fn lw(src: &str, f: &str) -> LoweredFn {
        lower(&parse(src).unwrap(), f).unwrap()
    }

    #[test]
    fn lowers_straight_line() {
        let f = lw("int f(int a, int b) { return a + b * 2; }", "f");
        assert_eq!(f.scalar_params.len(), 2);
        assert!(f.blocks[f.entry as usize]
            .ops
            .iter()
            .any(|o| matches!(o, Op::Bin { op: BinOp::Mul, .. })));
    }

    #[test]
    fn lowers_loop_with_trip_count() {
        let f = lw(
            "int f(int x[16]) { int s = 0; for (int i = 0; i < 16; i++) s += x[i]; return s; }",
            "f",
        );
        assert_eq!(f.loops.len(), 1);
        assert_eq!(f.loops[0].trip_count, Some(16));
        assert_eq!(f.array_params.len(), 1);
    }

    #[test]
    fn pipeline_pragma_recorded() {
        let f = lw(
            "void f(int x[8]) {\n#pragma HLS pipeline II=2\nfor (int i = 0; i < 8; i++) x[i] = i; }",
            "f",
        );
        assert_eq!(f.loops[0].pipeline_ii, Some(2));
    }

    #[test]
    fn unroll_replicates_branch_free_body() {
        let f = lw(
            "void f(int x[8]) {\n#pragma HLS unroll factor=4\nfor (int i = 0; i < 8; i++) x[i] = i; }",
            "f",
        );
        assert_eq!(f.loops[0].unrolled, 4);
        // Body block contains 4 stores.
        let body = &f.blocks[f.loops[0].body as usize];
        let stores = body.ops.iter().filter(|o| matches!(o, Op::Store { .. })).count();
        assert_eq!(stores, 4);
    }

    #[test]
    fn unroll_ignored_with_unknown_trip() {
        let f = lw(
            "void f(int x[8], int n) {\n#pragma HLS unroll factor=4\nfor (int i = 0; i < 8; i++) if (n) x[i] = i; }",
            "f",
        );
        assert_eq!(f.loops[0].unrolled, 1);
        assert!(!f.warnings.is_empty());
    }

    #[test]
    fn rejects_malloc() {
        let r = lower(
            &parse("int f(int n) { int *p = (int*)malloc(n * sizeof(int)); free(p); return 0; }")
                .unwrap(),
            "f",
        );
        assert!(matches!(r, Err(HlsError::Unsupported { .. })));
    }

    #[test]
    fn inlines_calls() {
        let f = lw(
            "int sq(int x) { return x * x; }
             int f(int a) { return sq(a) + sq(a + 1); }",
            "f",
        );
        let muls: usize = f
            .blocks
            .iter()
            .flat_map(|b| &b.ops)
            .filter(|o| matches!(o, Op::Bin { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 2, "both callee bodies inlined");
    }

    #[test]
    fn bitwidth_pragma_applies() {
        let f = lw(
            "int f(int a) {\n#pragma HLS bitwidth var=acc width=12\nint acc = a; acc += 1; return acc; }",
            "f",
        );
        let acc = f.slots.iter().find(|s| s.name.starts_with("acc")).unwrap();
        assert_eq!(acc.bits, 12);
    }

    #[test]
    fn two_d_arrays_linearized() {
        let f = lw(
            "void f(int m[2][3]) { for (int i = 0; i < 2; i++) for (int j = 0; j < 3; j++) m[i][j] = i + j; }",
            "f",
        );
        assert_eq!(f.arrays[0].len, 6);
    }

    #[test]
    fn static_trip_count_patterns() {
        let f = lw(
            "int f() { int s = 0; for (int i = 2; i <= 10; i += 2) s += i; return s; }",
            "f",
        );
        assert_eq!(f.loops[0].trip_count, Some(5));
    }
}
