//! C↔hardware co-simulation (the paper's Fig. 2 stage 3, "equivalence
//! verification").
//!
//! Runs the same inputs through the CPU reference (the `eda-cmini`
//! interpreter) and the FSMD hardware model, comparing return values and
//! output arrays. CPU-side runtime faults (division by zero, OOB) are
//! counted separately: hardware does not trap, so those inputs are
//! discrepancy *candidates* rather than equivalence failures.

use crate::fsmd::{execute, FsmdOptions, FsmdResult};
use crate::ir::LoweredFn;
use crate::schedule::Schedule;
use eda_cmini::{CValue, Interp, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One co-simulation stimulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosimInput {
    pub scalars: Vec<i64>,
    pub arrays: Vec<Vec<i64>>,
}

/// A recorded mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CosimMismatch {
    pub input_index: usize,
    /// `"ret"` or `"array<k>[i]"`.
    pub location: String,
    pub cpu: i64,
    pub hw: i64,
}

/// Co-simulation outcome.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CosimOutcome {
    /// Inputs compared (CPU run succeeded).
    pub compared: usize,
    /// Inputs where the CPU reference faulted (skipped).
    pub cpu_faults: usize,
    /// Recorded mismatches (capped at 16).
    pub mismatches: Vec<CosimMismatch>,
    /// Total hardware cycles across runs.
    pub hw_cycles: u64,
}

impl CosimOutcome {
    /// True when every compared input matched.
    pub fn equivalent(&self) -> bool {
        self.mismatches.is_empty() && self.compared > 0
    }
}

/// Generates `n` seeded-random inputs with scalar values in
/// `[0, scalar_range)` and array elements in `[0, elem_range)`.
pub fn random_inputs(
    f: &LoweredFn,
    n: usize,
    seed: u64,
    scalar_range: i64,
    elem_range: i64,
) -> Vec<CosimInput> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc051_3141);
    (0..n)
        .map(|_| CosimInput {
            scalars: f
                .scalar_params
                .iter()
                .map(|_| rng.gen_range(0..scalar_range.max(1)))
                .collect(),
            arrays: f
                .array_params
                .iter()
                .map(|a| {
                    let len = f.arrays[*a as usize].len as usize;
                    (0..len).map(|_| rng.gen_range(0..elem_range.max(1))).collect()
                })
                .collect(),
        })
        .collect()
}

/// Runs the CPU reference for one input. Returns `(ret, out_arrays)`.
///
/// # Errors
///
/// Propagates interpreter faults (the caller counts them).
pub fn run_cpu(
    prog: &Program,
    func: &str,
    input: &CosimInput,
) -> Result<(i64, Vec<Vec<i64>>), eda_cmini::CminiError> {
    let mut interp = Interp::new(prog);
    let mut args: Vec<CValue> = Vec::new();
    let mut ptrs = Vec::new();
    let f = prog
        .function(func)
        .ok_or_else(|| eda_cmini::CminiError::type_err(0, format!("no function `{func}`")))?;
    let mut scalar_i = 0;
    let mut array_i = 0;
    for p in &f.params {
        if p.ty.is_array() || p.ty.is_pointer() {
            let data = &input.arrays[array_i];
            array_i += 1;
            let ptr = interp.alloc_array(data, p.ty.bits().max(1), p.ty.unsigned);
            ptrs.push((ptr, data.len()));
            args.push(ptr);
        } else {
            args.push(CValue::Int(input.scalars[scalar_i]));
            scalar_i += 1;
        }
    }
    let ret = interp.call(func, &args)?;
    let mut outs = Vec::new();
    for (ptr, len) in ptrs {
        outs.push(interp.read_array(ptr, len)?);
    }
    Ok((ret.as_int().unwrap_or(0), outs))
}

/// Runs the hardware model for one input. Returns `(result, out_arrays)`.
///
/// # Errors
///
/// Propagates FSMD faults (cycle budget).
pub fn run_hw(
    f: &LoweredFn,
    sched: &Schedule,
    input: &CosimInput,
    opts: FsmdOptions,
) -> Result<(FsmdResult, Vec<Vec<i64>>), crate::error::HlsError> {
    let mut arrays = input.arrays.clone();
    let r = execute(f, sched, &input.scalars, &mut arrays, opts)?;
    Ok((r, arrays))
}

/// Compares CPU and hardware over all `inputs`.
pub fn cosim(
    prog: &Program,
    func: &str,
    f: &LoweredFn,
    sched: &Schedule,
    inputs: &[CosimInput],
    opts: FsmdOptions,
) -> CosimOutcome {
    let mut out = CosimOutcome::default();
    for (i, input) in inputs.iter().enumerate() {
        let cpu = match run_cpu(prog, func, input) {
            Ok(v) => v,
            Err(_) => {
                out.cpu_faults += 1;
                continue;
            }
        };
        let Ok((hw, hw_arrays)) = run_hw(f, sched, input, opts) else {
            out.cpu_faults += 1;
            continue;
        };
        out.compared += 1;
        out.hw_cycles += hw.activity.cycles;
        if let Some(hret) = hw.ret {
            if hret != cpu.0 && out.mismatches.len() < 16 {
                out.mismatches.push(CosimMismatch {
                    input_index: i,
                    location: "ret".to_string(),
                    cpu: cpu.0,
                    hw: hret,
                });
            }
        }
        for (k, (ca, ha)) in cpu.1.iter().zip(&hw_arrays).enumerate() {
            for (j, (cv, hv)) in ca.iter().zip(ha).enumerate() {
                if cv != hv && out.mismatches.len() < 16 {
                    out.mismatches.push(CosimMismatch {
                        input_index: i,
                        location: format!("array{k}[{j}]"),
                        cpu: *cv,
                        hw: *hv,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use crate::schedule::{schedule, Latencies, Resources};
    use eda_cmini::parse;

    fn setup(src: &str, func: &str) -> (Program, LoweredFn, Schedule) {
        let prog = parse(src).unwrap();
        let f = lower(&prog, func).unwrap();
        let s = schedule(&f, Resources::default(), Latencies::default());
        (prog, f, s)
    }

    #[test]
    fn clean_kernel_is_equivalent() {
        let src = "
          int dot(int a[8], int b[8]) {
            int s = 0;
            for (int i = 0; i < 8; i++) s += a[i] * b[i];
            return s;
          }";
        let (prog, f, sched) = setup(src, "dot");
        let inputs = random_inputs(&f, 20, 42, 100, 100);
        let out = cosim(&prog, "dot", &f, &sched, &inputs, FsmdOptions::default());
        assert!(out.equivalent(), "{:?}", out.mismatches);
        assert_eq!(out.compared, 20);
    }

    #[test]
    fn narrowed_width_creates_mismatches() {
        let src = "
          int acc(int x[16]) {
            #pragma HLS bitwidth var=s width=8
            int s = 0;
            for (int i = 0; i < 16; i++) s += x[i];
            return s;
          }";
        let (prog, f, sched) = setup(src, "acc");
        // Large elements force the 8-bit accumulator to wrap.
        let inputs = random_inputs(&f, 10, 7, 100, 100);
        let out = cosim(&prog, "acc", &f, &sched, &inputs, FsmdOptions::default());
        assert!(!out.equivalent(), "expected overflow mismatches");
    }

    #[test]
    fn cpu_faults_counted_not_compared() {
        let src = "int f(int a, int b) { return a / b; }";
        let (prog, f, sched) = setup(src, "f");
        let inputs = vec![
            CosimInput { scalars: vec![10, 0], arrays: vec![] },
            CosimInput { scalars: vec![10, 2], arrays: vec![] },
        ];
        let out = cosim(&prog, "f", &f, &sched, &inputs, FsmdOptions::default());
        assert_eq!(out.cpu_faults, 1);
        assert_eq!(out.compared, 1);
        assert!(out.equivalent());
    }

    #[test]
    fn deterministic_input_generation() {
        let (_, f, _) = setup("int f(int a) { return a; }", "f");
        assert_eq!(random_inputs(&f, 5, 1, 10, 10), random_inputs(&f, 5, 1, 10, 10));
        assert_ne!(random_inputs(&f, 5, 1, 10, 10), random_inputs(&f, 5, 2, 10, 10));
    }
}
