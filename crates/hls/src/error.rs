//! Error type for the HLS compiler.

use std::fmt;

/// HLS compilation or execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HlsError {
    /// Source construct outside the synthesizable subset.
    Unsupported { msg: String, line: u32 },
    /// Internal scheduling/execution failure.
    Internal { msg: String },
    /// FSMD runtime fault (cycle limit).
    Runtime { msg: String },
}

impl HlsError {
    /// Creates an internal error.
    pub fn internal(msg: impl Into<String>) -> Self {
        HlsError::Internal { msg: msg.into() }
    }

    /// Creates a runtime error.
    pub fn runtime(msg: impl Into<String>) -> Self {
        HlsError::Runtime { msg: msg.into() }
    }

    /// Tool-feedback category tag.
    pub fn category(&self) -> &'static str {
        match self {
            HlsError::Unsupported { .. } => "hls-unsupported",
            HlsError::Internal { .. } => "hls-internal",
            HlsError::Runtime { .. } => "hls-runtime",
        }
    }
}

impl fmt::Display for HlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HlsError::Unsupported { msg, line } => {
                write!(f, "HLS: unsupported construct at line {line}: {msg}")
            }
            HlsError::Internal { msg } => write!(f, "HLS internal error: {msg}"),
            HlsError::Runtime { msg } => write!(f, "HLS runtime error: {msg}"),
        }
    }
}

impl std::error::Error for HlsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_category() {
        let e = HlsError::Unsupported { msg: "malloc".into(), line: 4 };
        assert!(e.to_string().contains("line 4"));
        assert_eq!(e.category(), "hls-unsupported");
    }
}
