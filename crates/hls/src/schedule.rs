//! Operation scheduling: resource-constrained list scheduling per basic
//! block, plus loop pipelining analysis.
//!
//! Each basic block is scheduled into *cycles*; an op starts when its
//! operands are ready and a functional unit of its class is free. Memory
//! ops keep program order per array (store–store, load–store, store–load).
//! Pipelined loops get an initiation-interval analysis: the *required* II
//! follows from loop-carried memory dependencies and resource pressure; a
//! requested II below it is an II violation (the FSMD models the resulting
//! stale-read behaviour — the paper's pipeline discrepancy source).

use crate::ir::{ArrId, FuClass, LoweredFn, Op, Slot};
use std::collections::HashMap;

/// Available functional units / memory ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resources {
    pub alus: u32,
    pub muls: u32,
    pub divs: u32,
    /// Ports per array memory.
    pub mem_ports: u32,
}

impl Default for Resources {
    fn default() -> Self {
        Resources { alus: 2, muls: 1, divs: 1, mem_ports: 1 }
    }
}

/// Latency in cycles for each op class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    pub alu: u32,
    pub mul: u32,
    pub div: u32,
    pub load: u32,
    pub store: u32,
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies { alu: 1, mul: 3, div: 16, load: 2, store: 1 }
    }
}

impl Latencies {
    /// Latency of one op.
    pub fn of(&self, op: &Op) -> u32 {
        match op {
            Op::Load { .. } => self.load,
            Op::Store { .. } => self.store,
            _ => match op.fu() {
                FuClass::Alu => self.alu,
                FuClass::Mul => self.mul,
                FuClass::Div => self.div,
                FuClass::Mem => self.load,
            },
        }
    }
}

/// Schedule of one basic block: `start[i]` is the cycle op `i` issues.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockSchedule {
    pub start: Vec<u32>,
    /// Total cycles to drain the block (last finish).
    pub length: u32,
}

/// Pipelining decision for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSchedule {
    pub loop_id: u32,
    pub requested_ii: u32,
    /// Minimum II supported by dependencies and resources.
    pub required_ii: u32,
    /// True when `requested_ii < required_ii`: behaviour may diverge.
    pub ii_violation: bool,
}

/// Full schedule of a lowered function.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    pub blocks: Vec<BlockSchedule>,
    pub loops: Vec<LoopSchedule>,
    pub resources: Resources,
    pub latencies: Latencies,
}

/// Schedules every block of `f` under `res`/`lat`.
pub fn schedule(f: &LoweredFn, res: Resources, lat: Latencies) -> Schedule {
    let mut blocks = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        blocks.push(schedule_block(&b.ops, res, lat));
    }
    let mut loops = Vec::new();
    for l in &f.loops {
        if let Some(req) = l.pipeline_ii {
            let body = &f.blocks[l.body as usize];
            let required = required_ii(&body.ops, res, lat);
            loops.push(LoopSchedule {
                loop_id: l.id,
                requested_ii: req,
                required_ii: required,
                ii_violation: req < required,
            });
        }
    }
    Schedule { blocks, loops, resources: res, latencies: lat }
}

/// List-schedules one op sequence.
pub fn schedule_block(ops: &[Op], res: Resources, lat: Latencies) -> BlockSchedule {
    let mut start = vec![0u32; ops.len()];
    // ready[slot] = cycle its value is available.
    let mut ready: HashMap<Slot, u32> = HashMap::new();
    // Per-array last memory op finish (conservative ordering for
    // store-store / load-store / store-load; load-load may reorder).
    let mut last_store_end: HashMap<ArrId, u32> = HashMap::new();
    let mut last_access_end: HashMap<ArrId, u32> = HashMap::new();
    // FU usage per cycle.
    let mut usage: HashMap<(FuClass, Option<ArrId>, u32), u32> = HashMap::new();
    let mut length = 0u32;

    for (i, op) in ops.iter().enumerate() {
        let mut earliest = 0u32;
        for s in op.srcs() {
            earliest = earliest.max(ready.get(&s).copied().unwrap_or(0));
        }
        if let Some(arr) = op.array() {
            // All memory ops must wait for prior stores; stores must also
            // wait for prior loads.
            earliest = earliest.max(last_store_end.get(&arr).copied().unwrap_or(0));
            if matches!(op, Op::Store { .. }) {
                earliest = earliest.max(last_access_end.get(&arr).copied().unwrap_or(0));
            }
        }
        // Find a cycle with a free FU.
        let class = op.fu();
        let limit = match class {
            FuClass::Alu => res.alus,
            FuClass::Mul => res.muls,
            FuClass::Div => res.divs,
            FuClass::Mem => res.mem_ports,
        }
        .max(1);
        let key_arr = op.array();
        let mut cycle = earliest;
        loop {
            let used = usage.get(&(class, key_arr, cycle)).copied().unwrap_or(0);
            if used < limit {
                break;
            }
            cycle += 1;
        }
        *usage.entry((class, key_arr, cycle)).or_insert(0) += 1;
        start[i] = cycle;
        let end = cycle + lat.of(op);
        if let Some(dst) = op.dst() {
            ready.insert(dst, end);
        }
        if let Some(arr) = op.array() {
            last_access_end.insert(arr, end.max(last_access_end.get(&arr).copied().unwrap_or(0)));
            if matches!(op, Op::Store { .. }) {
                last_store_end.insert(arr, end.max(last_store_end.get(&arr).copied().unwrap_or(0)));
            }
        }
        length = length.max(end);
    }
    BlockSchedule { start, length: length.max(1) }
}

/// Minimum initiation interval for a pipelined loop body.
///
/// * Resource-limited II: `ceil(ops_of_class / units)` for each class.
/// * Dependency-limited II: a store followed (in a later iteration) by a
///   load of the same array forces `II >= store latency` under distance-1
///   assumptions (indices are not statically disambiguated).
pub fn required_ii(ops: &[Op], res: Resources, lat: Latencies) -> u32 {
    let mut counts: HashMap<(FuClass, Option<ArrId>), u32> = HashMap::new();
    for op in ops {
        *counts.entry((op.fu(), op.array())).or_insert(0) += 1;
    }
    let mut ii = 1u32;
    for ((class, _), n) in &counts {
        let units = match class {
            FuClass::Alu => res.alus,
            FuClass::Mul => res.muls,
            FuClass::Div => res.divs,
            FuClass::Mem => res.mem_ports,
        }
        .max(1);
        ii = ii.max(n.div_ceil(units));
    }
    // Loop-carried memory dependency: any array both stored and loaded.
    let stores: Vec<ArrId> = ops.iter().filter_map(|o| match o {
        Op::Store { arr, .. } => Some(*arr),
        _ => None,
    }).collect();
    let loads: Vec<ArrId> = ops.iter().filter_map(|o| match o {
        Op::Load { arr, .. } => Some(*arr),
        _ => None,
    }).collect();
    for s in &stores {
        if loads.contains(s) {
            ii = ii.max(lat.store + lat.load);
        }
    }
    ii
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use eda_cmini::parse;

    fn sched(src: &str, f: &str) -> (crate::ir::LoweredFn, Schedule) {
        let lf = lower(&parse(src).unwrap(), f).unwrap();
        let s = schedule(&lf, Resources::default(), Latencies::default());
        (lf, s)
    }

    #[test]
    fn dependent_ops_serialize() {
        let (lf, s) = sched("int f(int a) { return ((a + 1) * 2) + 3; }", "f");
        let entry = &s.blocks[lf.entry as usize];
        // Length must cover add -> mul (3 cycles) -> add chain.
        assert!(entry.length > 1 + 3, "length {}", entry.length);
    }

    #[test]
    fn independent_ops_share_cycles_up_to_resources() {
        // 4 independent adds with 2 ALUs need at least 2 issue cycles.
        let (lf, s) = sched(
            "int f(int a, int b, int c, int d) { int w = a+1; int x = b+1; int y = c+1; int z = d+1; return w; }",
            "f",
        );
        let entry = &s.blocks[lf.entry as usize];
        let adds: Vec<u32> = lf.blocks[lf.entry as usize]
            .ops
            .iter()
            .zip(&entry.start)
            .filter(|(o, _)| matches!(o, Op::Bin { .. }))
            .map(|(_, c)| *c)
            .collect();
        let first = adds.iter().min().unwrap();
        let issued_first_cycle = adds.iter().filter(|c| *c == first).count();
        assert!(issued_first_cycle <= 2, "ALU limit respected: {adds:?}");
    }

    #[test]
    fn memory_ops_respect_port_limit_and_order() {
        let (lf, s) = sched(
            "void f(int x[8]) { x[0] = 1; x[1] = 2; int a = x[0]; x[2] = a; }",
            "f",
        );
        let entry_ops = &lf.blocks[lf.entry as usize].ops;
        let entry = &s.blocks[lf.entry as usize];
        // Each store/load to the same array issues in a distinct cycle.
        let mem_cycles: Vec<u32> = entry_ops
            .iter()
            .zip(&entry.start)
            .filter(|(o, _)| o.array().is_some())
            .map(|(_, c)| *c)
            .collect();
        let mut sorted = mem_cycles.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), mem_cycles.len(), "one mem port: {mem_cycles:?}");
    }

    #[test]
    fn ii_violation_detected_for_feedback_loop() {
        let src = "
          void f(int x[16]) {
            #pragma HLS pipeline II=1
            for (int i = 1; i < 16; i++) x[i] = x[i - 1] + 1;
          }";
        let (_, s) = sched(src, "f");
        assert_eq!(s.loops.len(), 1);
        assert!(s.loops[0].ii_violation, "{:?}", s.loops[0]);
        assert!(s.loops[0].required_ii >= 3);
    }

    #[test]
    fn no_violation_without_feedback() {
        let src = "
          void f(int x[16], int y[16]) {
            #pragma HLS pipeline II=3
            for (int i = 0; i < 16; i++) y[i] = x[i] * 2;
          }";
        let (_, s) = sched(src, "f");
        assert!(!s.loops[0].ii_violation, "{:?}", s.loops[0]);
    }

    #[test]
    fn more_alus_shorten_blocks() {
        let src = "int f(int a, int b, int c, int d) {
            int w = a+1; int x = b+2; int y = c+3; int z = d+4;
            return w + x + y + z;
        }";
        let lf = lower(&parse(src).unwrap(), "f").unwrap();
        let narrow = schedule(&lf, Resources { alus: 1, ..Resources::default() }, Latencies::default());
        let wide = schedule(&lf, Resources { alus: 4, ..Resources::default() }, Latencies::default());
        let e = lf.entry as usize;
        assert!(wide.blocks[e].length <= narrow.blocks[e].length);
    }
}
