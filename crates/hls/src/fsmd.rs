//! Cycle-accurate FSMD (finite-state machine with datapath) execution.
//!
//! This is the "hardware side" of C↔RTL co-simulation: it executes a
//! [`LoweredFn`] under a [`Schedule`], producing outputs, a cycle count,
//! and activity counters. Two behaviours intentionally differ from the C
//! interpreter — exactly the discrepancy classes the paper's HLSTester
//! targets:
//!
//! 1. **Narrowed bit widths** (from `bitwidth` pragmas) wrap values where
//!    the CPU build would not.
//! 2. **Pipeline II violations** delay stores behind loads: when a loop is
//!    pipelined below its dependency-required II, loads observe *stale*
//!    memory for a few iterations (modelled by an iteration-tagged store
//!    buffer), reproducing "results that deviate from sequential CPU
//!    execution due to data dependencies or feedback paths".
//! 3. **No traps**: division by zero yields 0 (hardware FU semantics) and
//!    asserts are dropped, where the CPU run would abort.

use crate::error::HlsError;
use crate::ir::{FuClass, LoweredFn, Op, Terminator};
use crate::schedule::Schedule;
use eda_cmini::{wrap, BinOp, UnOp};
use std::collections::HashMap;

/// Per-class executed-op counters plus cycle count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Activity {
    pub alu_ops: u64,
    pub mul_ops: u64,
    pub div_ops: u64,
    pub mem_ops: u64,
    pub cycles: u64,
}

/// FSMD execution options.
#[derive(Debug, Clone, Copy)]
pub struct FsmdOptions {
    /// Apply stale-store pipeline semantics on II violations.
    pub model_pipeline_hazards: bool,
    /// Cycle budget before aborting.
    pub max_cycles: u64,
}

impl Default for FsmdOptions {
    fn default() -> Self {
        FsmdOptions { model_pipeline_hazards: true, max_cycles: 10_000_000 }
    }
}

/// Result of one FSMD run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsmdResult {
    /// Return value (None for void functions).
    pub ret: Option<i64>,
    pub activity: Activity,
}

/// Executes `f` with `scalar_args` and in/out `arrays` (one `Vec<i64>` per
/// array parameter, in declaration order; local arrays are zero-initialized
/// internally, matching BRAM initialization).
///
/// # Errors
///
/// Returns [`HlsError::Runtime`] when the cycle budget is exhausted, and
/// [`HlsError::Internal`] on malformed inputs.
pub fn execute(
    f: &LoweredFn,
    sched: &Schedule,
    scalar_args: &[i64],
    arrays: &mut [Vec<i64>],
    opts: FsmdOptions,
) -> Result<FsmdResult, HlsError> {
    if scalar_args.len() != f.scalar_params.len() {
        return Err(HlsError::internal(format!(
            "expected {} scalar args, got {}",
            f.scalar_params.len(),
            scalar_args.len()
        )));
    }
    if arrays.len() != f.array_params.len() {
        return Err(HlsError::internal(format!(
            "expected {} array args, got {}",
            f.array_params.len(),
            arrays.len()
        )));
    }

    let mut regs = vec![0i64; f.slots.len()];
    for (slot, v) in f.scalar_params.iter().zip(scalar_args) {
        let info = &f.slots[*slot as usize];
        regs[*slot as usize] = wrap(*v, info.bits, info.unsigned);
    }
    // Memories: parameters share caller storage; locals are zeroed.
    let mut mems: Vec<Vec<i64>> = f
        .arrays
        .iter()
        .map(|a| vec![0i64; a.len as usize])
        .collect();
    for (k, arr_id) in f.array_params.iter().enumerate() {
        let len = f.arrays[*arr_id as usize].len as usize;
        if arrays[k].len() < len {
            arrays[k].resize(len, 0);
        }
        mems[*arr_id as usize] = arrays[k][..len].to_vec();
    }

    // Pipeline hazard state.
    let ii_violations: HashMap<u32, u32> = sched
        .loops
        .iter()
        .filter(|l| l.ii_violation)
        .map(|l| (l.loop_id, l.requested_ii.max(1)))
        .collect();
    // Pending stores: (arr, idx, val, commit_iteration).
    let mut store_buffer: Vec<(u32, usize, i64, u64)> = Vec::new();
    let mut loop_iter: HashMap<u32, u64> = HashMap::new();
    let mut active_hazard_loop: Option<u32> = None;

    let mut act = Activity::default();
    let mut bb = f.entry;
    let ret = loop {
        let block = &f.blocks[bb as usize];
        let bs = &sched.blocks[bb as usize];

        // Loop accounting: entering a pipelined loop body bumps its
        // iteration counter and commits matured stores.
        if let Some(lid) = block.loop_id {
            let is_body = f.loops.iter().any(|l| l.id == lid && l.body == bb);
            if is_body {
                let it = loop_iter.entry(lid).or_insert(0);
                *it += 1;
                let cur = *it;
                if opts.model_pipeline_hazards && ii_violations.contains_key(&lid) {
                    active_hazard_loop = Some(lid);
                    store_buffer.retain(|(arr, idx, val, commit_at)| {
                        if *commit_at <= cur {
                            if let Some(slot) = mems[*arr as usize].get_mut(*idx) {
                                let a = &f.arrays[*arr as usize];
                                *slot = wrap(*val, a.elem_bits, a.unsigned);
                            }
                            false
                        } else {
                            true
                        }
                    });
                }
                // Pipelined loops cost II per steady-state iteration.
                if let Some(ls) = sched.loops.iter().find(|l| l.loop_id == lid) {
                    if cur > 1 {
                        act.cycles = act
                            .cycles
                            .saturating_sub(bs.length as u64)
                            .saturating_add(ls.requested_ii.max(1) as u64);
                    }
                    let _ = ls;
                }
            }
        } else if active_hazard_loop.is_some() {
            // Left the hazardous loop: flush pending stores.
            for (arr, idx, val, _) in store_buffer.drain(..) {
                if let Some(slot) = mems[arr as usize].get_mut(idx) {
                    let a = &f.arrays[arr as usize];
                    *slot = wrap(val, a.elem_bits, a.unsigned);
                }
            }
            active_hazard_loop = None;
            loop_iter.clear();
        }

        act.cycles += bs.length.max(1) as u64;
        if act.cycles > opts.max_cycles {
            return Err(HlsError::runtime(format!(
                "cycle budget ({}) exhausted — check loop bounds",
                opts.max_cycles
            )));
        }

        // Execute ops in program order (the schedule fixes timing, not
        // values — blocking semantics within a block are preserved by
        // dependence-respecting scheduling).
        for op in &block.ops {
            exec_op(
                f,
                op,
                &mut regs,
                &mut mems,
                &mut act,
                &mut store_buffer,
                active_hazard_loop.and_then(|l| ii_violations.get(&l).map(|ii| (l, *ii))),
                &loop_iter,
                sched,
            );
        }

        match &block.term {
            Terminator::Jump(next) => bb = *next,
            Terminator::Branch { cond, then_bb, else_bb } => {
                act.alu_ops += 1;
                bb = if regs[*cond as usize] != 0 { *then_bb } else { *else_bb };
            }
            Terminator::Return(slot) => {
                break slot.map(|s| regs[s as usize]);
            }
        }
    };

    // Flush any remaining buffered stores.
    for (arr, idx, val, _) in store_buffer.drain(..) {
        if let Some(slot) = mems[arr as usize].get_mut(idx) {
            let a = &f.arrays[arr as usize];
            *slot = wrap(val, a.elem_bits, a.unsigned);
        }
    }
    // Copy array params back out.
    for (k, arr_id) in f.array_params.iter().enumerate() {
        arrays[k] = mems[*arr_id as usize].clone();
    }
    Ok(FsmdResult { ret, activity: act })
}

#[allow(clippy::too_many_arguments)]
fn exec_op(
    f: &LoweredFn,
    op: &Op,
    regs: &mut [i64],
    mems: &mut [Vec<i64>],
    act: &mut Activity,
    store_buffer: &mut Vec<(u32, usize, i64, u64)>,
    hazard: Option<(u32, u32)>,
    loop_iter: &HashMap<u32, u64>,
    sched: &Schedule,
) {
    match op.fu() {
        FuClass::Alu => act.alu_ops += 1,
        FuClass::Mul => act.mul_ops += 1,
        FuClass::Div => act.div_ops += 1,
        FuClass::Mem => act.mem_ops += 1,
    }
    let store_to = |regs: &mut [i64], dst: u32, v: i64| {
        let info = &f.slots[dst as usize];
        regs[dst as usize] = wrap(v, info.bits, info.unsigned);
    };
    match op {
        Op::Const { dst, value } => store_to(regs, *dst, *value),
        Op::Copy { dst, src } => store_to(regs, *dst, regs[*src as usize]),
        Op::Un { op, dst, a } => {
            let v = regs[*a as usize];
            let r = match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => (v == 0) as i64,
                UnOp::BitNot => !v,
            };
            store_to(regs, *dst, r);
        }
        Op::Select { dst, c, t, f: fv } => {
            let r = if regs[*c as usize] != 0 { regs[*t as usize] } else { regs[*fv as usize] };
            store_to(regs, *dst, r);
        }
        Op::Bin { op, dst, a, b } => {
            let (x, y) = (regs[*a as usize], regs[*b as usize]);
            let r = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                // Hardware division units yield 0 on zero divisors
                // (no trap) — a deliberate CPU/FPGA discrepancy source.
                BinOp::Div => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_div(y)
                    }
                }
                BinOp::Rem => {
                    if y == 0 {
                        0
                    } else {
                        x.wrapping_rem(y)
                    }
                }
                BinOp::Shl => x.wrapping_shl((y & 63) as u32),
                BinOp::Shr => x.wrapping_shr((y & 63) as u32),
                BinOp::Lt => (x < y) as i64,
                BinOp::Le => (x <= y) as i64,
                BinOp::Gt => (x > y) as i64,
                BinOp::Ge => (x >= y) as i64,
                BinOp::Eq => (x == y) as i64,
                BinOp::Ne => (x != y) as i64,
                BinOp::BitAnd => x & y,
                BinOp::BitXor => x ^ y,
                BinOp::BitOr => x | y,
                BinOp::LogAnd => ((x != 0) && (y != 0)) as i64,
                BinOp::LogOr => ((x != 0) || (y != 0)) as i64,
            };
            store_to(regs, *dst, r);
        }
        Op::Load { dst, arr, idx } => {
            let i = regs[*idx as usize];
            let mem = &mems[*arr as usize];
            // Out-of-range reads return 0 (BRAM wrap/undefined modeled as 0).
            let v = if i >= 0 && (i as usize) < mem.len() { mem[i as usize] } else { 0 };
            store_to(regs, *dst, v);
        }
        Op::Store { arr, idx, val } => {
            let i = regs[*idx as usize];
            if i < 0 {
                return;
            }
            let i = i as usize;
            let v = regs[*val as usize];
            match hazard {
                Some((lid, ii)) => {
                    // Store commits `delay` iterations later.
                    let lat = sched.latencies.store + sched.latencies.load;
                    let delay = (lat.div_ceil(ii.max(1))).max(1) as u64;
                    let cur = loop_iter.get(&lid).copied().unwrap_or(0);
                    store_buffer.push((*arr, i, v, cur + delay));
                }
                None => {
                    if let Some(slot) = mems[*arr as usize].get_mut(i) {
                        let a = &f.arrays[*arr as usize];
                        *slot = wrap(v, a.elem_bits, a.unsigned);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use crate::schedule::{schedule, Latencies, Resources};
    use eda_cmini::parse;

    fn run(src: &str, func: &str, args: &[i64], arrays: &mut [Vec<i64>]) -> FsmdResult {
        let f = lower(&parse(src).unwrap(), func).unwrap();
        let s = schedule(&f, Resources::default(), Latencies::default());
        execute(&f, &s, args, arrays, FsmdOptions::default()).unwrap()
    }

    #[test]
    fn matches_c_for_scalar_math() {
        let src = "int f(int a, int b) { int s = a * b + 3; return s - (a >> 1); }";
        let p = parse(src).unwrap();
        for (a, b) in [(3, 4), (100, -7), (0, 0), (-5, -6)] {
            let c = eda_cmini::Interp::new(&p).call_ints("f", &[a, b]).unwrap();
            let hw = run(src, "f", &[a, b], &mut []);
            assert_eq!(hw.ret, Some(c), "a={a} b={b}");
        }
    }

    #[test]
    fn loops_and_arrays_match_c() {
        let src = "
          int sum(int x[8]) {
            int s = 0;
            for (int i = 0; i < 8; i++) s += x[i];
            return s;
          }";
        let data: Vec<i64> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let mut arrays = vec![data.clone()];
        let hw = run(src, "sum", &[], &mut arrays);
        assert_eq!(hw.ret, Some(36));
    }

    #[test]
    fn array_outputs_written_back() {
        let src = "
          void scale(int x[4], int k) {
            for (int i = 0; i < 4; i++) x[i] = x[i] * k;
          }";
        let mut arrays = vec![vec![1, 2, 3, 4]];
        run(src, "scale", &[3], &mut arrays);
        assert_eq!(arrays[0], vec![3, 6, 9, 12]);
    }

    #[test]
    fn division_by_zero_returns_zero_not_trap() {
        let src = "int f(int a, int b) { return a / b; }";
        let hw = run(src, "f", &[10, 0], &mut []);
        assert_eq!(hw.ret, Some(0), "hardware divider yields 0");
        // The CPU reference traps instead.
        let p = parse(src).unwrap();
        assert!(eda_cmini::Interp::new(&p).call_ints("f", &[10, 0]).is_err());
    }

    #[test]
    fn narrowed_width_wraps() {
        let src = "
          int f(int n) {
            #pragma HLS bitwidth var=acc width=10
            int acc = 0;
            for (int i = 0; i < n; i++) acc += 100;
            return acc;
          }";
        let hw = run(src, "f", &[20], &mut []);
        // 2000 wraps in 10 signed bits.
        assert_eq!(hw.ret, Some(wrap(2000, 10, false)));
        assert_ne!(hw.ret, Some(2000));
    }

    #[test]
    fn pipeline_ii_violation_causes_stale_reads() {
        let src = "
          void f(int x[16]) {
            #pragma HLS pipeline II=1
            for (int i = 1; i < 16; i++) x[i] = x[i - 1] + 1;
          }";
        let mut hw_arrays = vec![vec![0i64; 16]];
        run(src, "f", &[], &mut hw_arrays);
        // Sequential semantics would produce x[i] = i; stale reads break
        // the recurrence.
        let expected: Vec<i64> = (0..16).collect();
        assert_ne!(hw_arrays[0], expected, "II violation must perturb results");
    }

    #[test]
    fn pipeline_with_adequate_ii_is_correct() {
        let src = "
          void f(int x[16]) {
            #pragma HLS pipeline II=4
            for (int i = 1; i < 16; i++) x[i] = x[i - 1] + 1;
          }";
        let mut hw_arrays = vec![vec![0i64; 16]];
        run(src, "f", &[], &mut hw_arrays);
        let expected: Vec<i64> = (0..16).collect();
        assert_eq!(hw_arrays[0], expected);
    }

    #[test]
    fn pipelining_reduces_cycles() {
        let base = "
          void f(int x[64], int y[64]) {
            for (int i = 0; i < 64; i++) y[i] = x[i] * 3;
          }";
        let piped = "
          void f(int x[64], int y[64]) {
            #pragma HLS pipeline II=1
            for (int i = 0; i < 64; i++) y[i] = x[i] * 3;
          }";
        let mut a1 = vec![vec![1i64; 64], vec![0i64; 64]];
        let mut a2 = vec![vec![1i64; 64], vec![0i64; 64]];
        // Same data path, II=1 requested (no feedback, so no violation at
        // mem_ports=1? required II from 2 mem ops on different arrays is 1).
        let slow = run(base, "f", &[], &mut a1);
        let fast = run(piped, "f", &[], &mut a2);
        assert_eq!(a1[0], a2[0]);
        assert!(
            fast.activity.cycles < slow.activity.cycles,
            "pipelined {} vs {}",
            fast.activity.cycles,
            slow.activity.cycles
        );
    }

    #[test]
    fn cycle_budget_enforced() {
        let src = "int f() { int s = 0; for (int i = 0; i < 1000000; i++) s += i; return s; }";
        let f = lower(&parse(src).unwrap(), "f").unwrap();
        let s = schedule(&f, Resources::default(), Latencies::default());
        let r = execute(
            &f,
            &s,
            &[],
            &mut [],
            FsmdOptions { max_cycles: 1000, ..FsmdOptions::default() },
        );
        assert!(matches!(r, Err(HlsError::Runtime { .. })));
    }

    #[test]
    fn activity_counters_populated() {
        let src = "int f(int a) { return a * a + a / 3; }";
        let hw = run(src, "f", &[9], &mut []);
        assert!(hw.activity.mul_ops >= 1);
        assert!(hw.activity.div_ops >= 1);
        assert!(hw.activity.cycles > 0);
    }
}
