//! Power/performance/area estimation.
//!
//! Simple, monotonic cost models calibrated to arbitrary-but-consistent
//! units: the experiments care about *relative* PPA movement under pragma
//! and resource changes (the paper's Fig. 2 stage 4 optimization loop),
//! not absolute silicon numbers.

use crate::fsmd::Activity;
use crate::ir::LoweredFn;
use crate::schedule::Schedule;

/// A PPA report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PpaReport {
    /// Estimated area in equivalent-gate units.
    pub area: f64,
    /// Maximum clock frequency in MHz (limited by the slowest used FU).
    pub fmax_mhz: f64,
    /// Measured latency in cycles (from an FSMD run).
    pub latency_cycles: u64,
    /// Wall-clock latency in microseconds at `fmax`.
    pub latency_us: f64,
    /// Dynamic power (mW) from activity.
    pub dynamic_mw: f64,
    /// Static power (mW) proportional to area.
    pub static_mw: f64,
}

impl PpaReport {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.static_mw
    }

    /// Scalar figure of merit (lower is better): latency × area, the usual
    /// HLS design-space objective.
    pub fn latency_area_product(&self) -> f64 {
        self.latency_us.max(1e-9) * self.area
    }
}

const AREA_ALU: f64 = 120.0;
const AREA_MUL: f64 = 900.0;
const AREA_DIV: f64 = 2200.0;
const AREA_REG_PER_BIT: f64 = 8.0;
const AREA_MEM_PER_BIT: f64 = 0.5;

const FMAX_ALU: f64 = 500.0;
const FMAX_MUL: f64 = 350.0;
const FMAX_DIV: f64 = 250.0;
const FMAX_MEM: f64 = 400.0;

/// Energy per op in pJ-equivalents.
const E_ALU: f64 = 1.0;
const E_MUL: f64 = 6.0;
const E_DIV: f64 = 18.0;
const E_MEM: f64 = 4.0;

/// Estimates PPA for a scheduled design, given the activity of a
/// representative FSMD run.
pub fn estimate(f: &LoweredFn, sched: &Schedule, activity: Activity) -> PpaReport {
    let res = sched.resources;
    let reg_bits: u64 = f
        .slots
        .iter()
        .filter(|s| !s.temp)
        .map(|s| s.bits as u64)
        .sum();
    // Temporaries share pipeline registers; charge a quarter.
    let temp_bits: u64 = f
        .slots
        .iter()
        .filter(|s| s.temp)
        .map(|s| s.bits as u64)
        .sum();
    let mem_bits: u64 = f.arrays.iter().map(|a| a.len * a.elem_bits as u64).sum();

    let area = res.alus as f64 * AREA_ALU
        + res.muls as f64 * AREA_MUL
        + res.divs as f64 * AREA_DIV
        + (reg_bits as f64 + temp_bits as f64 / 4.0) * AREA_REG_PER_BIT
        + mem_bits as f64 * AREA_MEM_PER_BIT;

    // fmax limited by the slowest FU actually used.
    let mut fmax = FMAX_ALU;
    if activity.mul_ops > 0 {
        fmax = fmax.min(FMAX_MUL);
    }
    if activity.div_ops > 0 {
        fmax = fmax.min(FMAX_DIV);
    }
    if activity.mem_ops > 0 {
        fmax = fmax.min(FMAX_MEM);
    }

    let cycles = activity.cycles.max(1);
    let latency_us = cycles as f64 / fmax; // cycles / MHz = microseconds

    let energy = activity.alu_ops as f64 * E_ALU
        + activity.mul_ops as f64 * E_MUL
        + activity.div_ops as f64 * E_DIV
        + activity.mem_ops as f64 * E_MEM;
    // P = E / t; scale into a plausible mW range.
    let dynamic_mw = energy / latency_us.max(1e-6) * 0.01;
    let static_mw = area * 0.002;

    PpaReport {
        area,
        fmax_mhz: fmax,
        latency_cycles: cycles,
        latency_us,
        dynamic_mw,
        static_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fsmd::{execute, FsmdOptions};
    use crate::ir::lower;
    use crate::schedule::{schedule, Latencies, Resources};
    use eda_cmini::parse;

    fn ppa_of(src: &str, func: &str, arrays: &mut [Vec<i64>]) -> PpaReport {
        let f = lower(&parse(src).unwrap(), func).unwrap();
        let s = schedule(&f, Resources::default(), Latencies::default());
        let r = execute(&f, &s, &[], arrays, FsmdOptions::default()).unwrap();
        estimate(&f, &s, r.activity)
    }

    #[test]
    fn multiplier_designs_cost_more_area_like_units() {
        let add = "int f() { int s = 0; for (int i = 0; i < 32; i++) s += i; return s; }";
        let mul = "int f() { int s = 0; for (int i = 0; i < 32; i++) s += i * i; return s; }";
        let p_add = ppa_of(add, "f", &mut []);
        let p_mul = ppa_of(mul, "f", &mut []);
        // Multiplication limits fmax and burns more energy.
        assert!(p_mul.fmax_mhz < p_add.fmax_mhz);
        assert!(p_mul.latency_cycles > p_add.latency_cycles);
    }

    #[test]
    fn pipelining_improves_latency_metric() {
        let base = "void f(int x[64], int y[64]) { for (int i = 0; i < 64; i++) y[i] = x[i] + 1; }";
        let piped = "void f(int x[64], int y[64]) {\n#pragma HLS pipeline II=1\nfor (int i = 0; i < 64; i++) y[i] = x[i] + 1; }";
        let a = ppa_of(base, "f", &mut [vec![0; 64], vec![0; 64]]);
        let b = ppa_of(piped, "f", &mut [vec![0; 64], vec![0; 64]]);
        assert!(b.latency_cycles < a.latency_cycles);
        assert!(b.latency_area_product() < a.latency_area_product());
    }

    #[test]
    fn memory_contributes_area() {
        let small = "int f(int x[4]) { return x[0]; }";
        let big = "int f(int x[1024]) { return x[0]; }";
        let a = ppa_of(small, "f", &mut [vec![0; 4]]);
        let b = ppa_of(big, "f", &mut [vec![0; 1024]]);
        assert!(b.area > a.area);
        assert!(b.total_mw() > 0.0);
    }
}
