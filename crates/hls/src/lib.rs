//! # eda-hls — a from-scratch high-level synthesis compiler
//!
//! Compiles the HLS-compatible mini-C subset (see `eda-cmini`) into a
//! scheduled FSMD hardware model plus synthesizable Verilog, with the
//! pragma surface the paper's HLS case studies exercise:
//!
//! * `#pragma HLS pipeline II=k` — loop pipelining with initiation-interval
//!   analysis (violations reproduce the paper's pipeline-parallelism
//!   discrepancies),
//! * `#pragma HLS unroll factor=f` — loop unrolling by body replication,
//! * `#pragma HLS bitwidth var=x width=w` — FPGA-side custom bit widths
//!   (the paper's overflow discrepancy source).
//!
//! Pipeline: mini-C → [`ir::lower`] → [`schedule::schedule`] →
//! { [`fsmd::execute`] (cycle-accurate behaviour + activity),
//!   [`ppa::estimate`] (area/fmax/power),
//!   [`emit_rtl::emit_verilog`] (structural Verilog for `eda-hdl`) },
//! with [`cosim`] providing C↔hardware equivalence checking.
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use eda_hls::{HlsProject, HlsOptions};
//!
//! let src = "int dot(int a[4], int b[4]) {
//!              int s = 0;
//!              for (int i = 0; i < 4; i++) s += a[i] * b[i];
//!              return s;
//!            }";
//! let prog = eda_cmini::parse(src)?;
//! let proj = HlsProject::compile(&prog, "dot", HlsOptions::default())?;
//! let report = proj.cosim_random(16, 99)?;
//! assert!(report.equivalent());
//! # Ok(())
//! # }
//! ```

pub mod cosim;
pub mod emit_rtl;
pub mod error;
pub mod fsmd;
pub mod ir;
pub mod ppa;
pub mod schedule;

pub use cosim::{cosim, random_inputs, CosimInput, CosimMismatch, CosimOutcome};
pub use emit_rtl::emit_verilog;
pub use error::HlsError;
pub use fsmd::{execute, Activity, FsmdOptions, FsmdResult};
pub use ir::{lower, ArrId, BlockId, FuClass, LoweredFn, Op, Slot, Terminator};
pub use ppa::{estimate, PpaReport};
pub use schedule::{schedule, BlockSchedule, Latencies, LoopSchedule, Resources, Schedule};

use eda_cmini::Program;

/// Compilation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct HlsOptions {
    pub resources: Resources,
    pub latencies: Latencies,
    pub fsmd: FsmdOptions,
}

/// A compiled HLS design: lowered IR, schedule, and emitted Verilog.
#[derive(Debug, Clone)]
pub struct HlsProject {
    pub program: Program,
    pub func: String,
    pub lowered: LoweredFn,
    pub schedule: Schedule,
    pub verilog: String,
    pub options: HlsOptions,
}

impl HlsProject {
    /// Compiles `func` from `prog`.
    ///
    /// # Errors
    ///
    /// Returns [`HlsError::Unsupported`] for non-synthesizable input — the
    /// error feed consumed by the repair framework.
    pub fn compile(prog: &Program, func: &str, options: HlsOptions) -> Result<Self, HlsError> {
        let lowered = lower(prog, func)?;
        let sched = schedule(&lowered, options.resources, options.latencies);
        let verilog = emit_verilog(&lowered);
        Ok(HlsProject {
            program: prog.clone(),
            func: func.to_string(),
            lowered,
            schedule: sched,
            verilog,
            options,
        })
    }

    /// Runs the hardware model on one input.
    ///
    /// # Errors
    ///
    /// Propagates FSMD faults.
    pub fn run(
        &self,
        scalars: &[i64],
        arrays: &mut [Vec<i64>],
    ) -> Result<FsmdResult, HlsError> {
        execute(&self.lowered, &self.schedule, scalars, arrays, self.options.fsmd)
    }

    /// PPA estimate from a representative run's activity.
    pub fn ppa(&self, activity: Activity) -> PpaReport {
        estimate(&self.lowered, &self.schedule, activity)
    }

    /// Convenience: co-simulate against the C reference on random inputs.
    ///
    /// # Errors
    ///
    /// Never fails today; kept fallible for future strict modes.
    pub fn cosim_random(&self, n: usize, seed: u64) -> Result<CosimOutcome, HlsError> {
        let inputs = random_inputs(&self.lowered, n, seed, 1000, 1000);
        Ok(cosim(
            &self.program,
            &self.func,
            &self.lowered,
            &self.schedule,
            &inputs,
            self.options.fsmd,
        ))
    }

    /// II-violation warnings for feedback prompts.
    pub fn timing_warnings(&self) -> Vec<String> {
        let mut out = self.lowered.warnings.clone();
        for l in &self.schedule.loops {
            if l.ii_violation {
                out.push(format!(
                    "loop {}: requested II={} below required II={} — pipeline hazard",
                    l.loop_id, l.requested_ii, l.required_ii
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_compiles_and_runs() {
        let prog = eda_cmini::parse(
            "int f(int a) { int s = 0; for (int i = 0; i < a; i++) s += i; return s; }",
        )
        .unwrap();
        let p = HlsProject::compile(&prog, "f", HlsOptions::default()).unwrap();
        let r = p.run(&[10], &mut []).unwrap();
        assert_eq!(r.ret, Some(45));
        assert!(p.verilog.contains("module f_hls"));
        let ppa = p.ppa(r.activity);
        assert!(ppa.area > 0.0 && ppa.fmax_mhz > 0.0);
    }

    #[test]
    fn unsupported_input_reports_error() {
        let prog = eda_cmini::parse(
            "int f(int n) { int *p = (int*)malloc(n * sizeof(int)); free(p); return 0; }",
        )
        .unwrap();
        let e = HlsProject::compile(&prog, "f", HlsOptions::default()).unwrap_err();
        assert_eq!(e.category(), "hls-unsupported");
    }

    #[test]
    fn timing_warnings_surface_ii_violations() {
        let prog = eda_cmini::parse(
            "void f(int x[16]) {\n#pragma HLS pipeline II=1\nfor (int i = 1; i < 16; i++) x[i] = x[i-1] + 1; }",
        )
        .unwrap();
        let p = HlsProject::compile(&prog, "f", HlsOptions::default()).unwrap();
        assert!(p.timing_warnings().iter().any(|w| w.contains("pipeline hazard")));
    }
}
