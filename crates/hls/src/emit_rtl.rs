//! Verilog emission: renders a lowered function as a microcoded FSMD
//! module compatible with the `eda-hdl` simulator.
//!
//! The generated module executes one IR operation per clock (a microcoded
//! FSM, not the overlapped schedule — the schedule drives the *timing
//! model*; the RTL drives the *structural* flow into logic synthesis and
//! co-simulation). Interface:
//!
//! ```text
//! module <name>_hls(input clk, rst, start,
//!                   input  [63:0] arg0..argN,   // scalar params
//!                   output done, output [63:0] ret);
//! ```
//!
//! Array parameters become internal memories named `mem_<array>`; the
//! test harness preloads them with `Simulator::poke_mem` and reads them
//! back after `done`.
//!
//! Known divergence (documented in DESIGN.md): RTL registers hold
//! zero-extended values, so signed comparisons on negative sub-64-bit
//! intermediates differ from the FSMD; co-simulation drives non-negative
//! domains.

use crate::ir::{LoweredFn, Op, Terminator};
use eda_cmini::{BinOp, UnOp};
use std::fmt::Write as _;

/// Emits the FSMD Verilog for `f`. The module is named `<f.name>_hls`.
pub fn emit_verilog(f: &LoweredFn) -> String {
    let mut s = String::new();
    let module = format!("{}_hls", f.name);

    // Linearize states: state 0 = wait-for-start/latch args; then one state
    // per op; one per terminator.
    // Compute per-block state bases.
    let mut block_base = Vec::with_capacity(f.blocks.len());
    let mut next_state = 1u32;
    for b in &f.blocks {
        block_base.push(next_state);
        next_state += b.ops.len() as u32 + 1; // +1 terminator state
    }
    let n_states = next_state.max(2);
    let sw = 32 - (n_states - 1).leading_zeros().max(1);
    let sw = sw.max(1);

    writeln!(s, "module {module}(").unwrap();
    write!(s, "  input clk,\n  input rst,\n  input start").unwrap();
    for (k, _) in f.scalar_params.iter().enumerate() {
        write!(s, ",\n  input [63:0] arg{k}").unwrap();
    }
    writeln!(s, ",\n  output reg done,\n  output reg [63:0] ret\n);").unwrap();

    for (i, slot) in f.slots.iter().enumerate() {
        writeln!(s, "  reg [{}:0] s{i}; // {}", slot.bits.max(1) - 1, slot.name).unwrap();
    }
    for (i, a) in f.arrays.iter().enumerate() {
        writeln!(
            s,
            "  reg [{}:0] mem_{i} [0:{}]; // {}",
            a.elem_bits.max(1) - 1,
            a.len.max(1) - 1,
            a.name
        )
        .unwrap();
    }
    writeln!(s, "  reg [{}:0] state;", sw - 1).unwrap();
    writeln!(s, "  always @(posedge clk) begin").unwrap();
    writeln!(s, "    if (rst) begin state <= 0; done <= 1'b0; ret <= 64'd0; end").unwrap();
    writeln!(s, "    else begin").unwrap();
    writeln!(s, "      case (state)").unwrap();

    // State 0: wait for start, latch scalar args.
    writeln!(s, "        0: if (start) begin").unwrap();
    for (k, slot) in f.scalar_params.iter().enumerate() {
        writeln!(s, "          s{slot} <= arg{k};").unwrap();
    }
    writeln!(s, "          done <= 1'b0;").unwrap();
    writeln!(s, "          state <= {};", block_base[f.entry as usize]).unwrap();
    writeln!(s, "        end").unwrap();

    for (bi, b) in f.blocks.iter().enumerate() {
        let base = block_base[bi];
        for (oi, op) in b.ops.iter().enumerate() {
            let st = base + oi as u32;
            let next = st + 1;
            writeln!(s, "        {st}: begin {} state <= {next}; end", emit_op(op)).unwrap();
        }
        let term_state = base + b.ops.len() as u32;
        match &b.term {
            Terminator::Jump(t) => {
                writeln!(s, "        {term_state}: state <= {};", block_base[*t as usize]).unwrap()
            }
            Terminator::Branch { cond, then_bb, else_bb } => writeln!(
                s,
                "        {term_state}: state <= (s{cond} != 0) ? {} : {};",
                block_base[*then_bb as usize], block_base[*else_bb as usize]
            )
            .unwrap(),
            Terminator::Return(slot) => {
                match slot {
                    Some(v) => writeln!(
                        s,
                        "        {term_state}: begin done <= 1'b1; ret <= s{v}; end"
                    )
                    .unwrap(),
                    None => {
                        writeln!(s, "        {term_state}: begin done <= 1'b1; end").unwrap()
                    }
                }
            }
        }
    }
    writeln!(s, "        default: state <= 0;").unwrap();
    writeln!(s, "      endcase").unwrap();
    writeln!(s, "    end").unwrap();
    writeln!(s, "  end").unwrap();
    writeln!(s, "endmodule").unwrap();
    s
}

fn bin_expr(op: BinOp, a: &str, b: &str) -> String {
    match op {
        BinOp::Add => format!("{a} + {b}"),
        BinOp::Sub => format!("{a} - {b}"),
        BinOp::Mul => format!("{a} * {b}"),
        // Hardware dividers: 0 on zero divisor (matches the FSMD model).
        BinOp::Div => format!("({b} == 0) ? 0 : ({a} / {b})"),
        BinOp::Rem => format!("({b} == 0) ? 0 : ({a} % {b})"),
        BinOp::Shl => format!("{a} << {b}"),
        BinOp::Shr => format!("{a} >> {b}"),
        BinOp::Lt => format!("{a} < {b}"),
        BinOp::Le => format!("{a} <= {b}"),
        BinOp::Gt => format!("{a} > {b}"),
        BinOp::Ge => format!("{a} >= {b}"),
        BinOp::Eq => format!("{a} == {b}"),
        BinOp::Ne => format!("{a} != {b}"),
        BinOp::BitAnd => format!("{a} & {b}"),
        BinOp::BitXor => format!("{a} ^ {b}"),
        BinOp::BitOr => format!("{a} | {b}"),
        BinOp::LogAnd => format!("({a} != 0) && ({b} != 0)"),
        BinOp::LogOr => format!("({a} != 0) || ({b} != 0)"),
    }
}

fn emit_op(op: &Op) -> String {
    match op {
        Op::Const { dst, value } => {
            // Negative constants are emitted via unsigned wrap at 64 bits.
            let v = *value as u64;
            format!("s{dst} <= 64'd{v};")
        }
        Op::Copy { dst, src } => format!("s{dst} <= s{src};"),
        Op::Un { op, dst, a } => match op {
            UnOp::Neg => format!("s{dst} <= 0 - s{a};"),
            UnOp::Not => format!("s{dst} <= s{a} == 0;"),
            UnOp::BitNot => format!("s{dst} <= ~s{a};"),
        },
        Op::Select { dst, c, t, f } => format!("s{dst} <= (s{c} != 0) ? s{t} : s{f};"),
        Op::Bin { op, dst, a, b } => {
            format!("s{dst} <= {};", bin_expr(*op, &format!("s{a}"), &format!("s{b}")))
        }
        Op::Load { dst, arr, idx } => format!("s{dst} <= mem_{arr}[s{idx}];"),
        Op::Store { arr, idx, val } => format!("mem_{arr}[s{idx}] <= s{val};"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::lower;
    use eda_cmini::parse;
    use eda_hdl::{clock_cycles, Simulator, Value};

    fn emit(src: &str, func: &str) -> (LoweredFn, String) {
        let f = lower(&parse(src).unwrap(), func).unwrap();
        let v = emit_verilog(&f);
        (f, v)
    }

    #[test]
    fn emitted_verilog_compiles() {
        let (_, v) = emit(
            "int f(int a, int b) { int s = 0; for (int i = 0; i < 4; i++) s += a * b; return s; }",
            "f",
        );
        eda_hdl::compile(&v, "f_hls").unwrap_or_else(|e| panic!("{e}\n{v}"));
    }

    /// Drives the generated FSMD through `eda-hdl` and returns `ret`.
    fn run_rtl(verilog: &str, module: &str, args: &[u64], max_cycles: u32) -> u64 {
        let design = eda_hdl::compile(verilog, module).unwrap();
        let mut sim = Simulator::new(&design);
        sim.poke("rst", Value::bit(true)).unwrap();
        clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
        sim.poke("rst", Value::bit(false)).unwrap();
        for (k, a) in args.iter().enumerate() {
            sim.poke(&format!("arg{k}"), Value::from_u64(64, *a)).unwrap();
        }
        sim.poke("start", Value::bit(true)).unwrap();
        clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
        sim.poke("start", Value::bit(false)).unwrap();
        let mut cycles = 0;
        while sim.peek("done").unwrap().to_u64() != Some(1) {
            clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
            cycles += 1;
            assert!(cycles < max_cycles, "RTL did not finish in {max_cycles} cycles");
        }
        sim.peek("ret").unwrap().to_u64().unwrap()
    }

    #[test]
    fn rtl_matches_c_on_unsigned_domain() {
        let src = "int f(int a, int b) { int s = a + b * 3; if (s > 20) s = s - 7; return s; }";
        let (_, v) = emit(src, "f");
        let prog = parse(src).unwrap();
        for (a, b) in [(1u64, 2u64), (5, 9), (0, 0), (7, 7)] {
            let c = eda_cmini::Interp::new(&prog)
                .call_ints("f", &[a as i64, b as i64])
                .unwrap() as u64;
            let hw = run_rtl(&v, "f_hls", &[a, b], 5000);
            assert_eq!(hw & 0xffff_ffff, c & 0xffff_ffff, "a={a} b={b}");
        }
    }

    #[test]
    fn rtl_loop_with_memory() {
        let src = "
          int sum(int x[8]) {
            int s = 0;
            for (int i = 0; i < 8; i++) s += x[i];
            return s;
          }";
        let (_, v) = emit(src, "sum");
        let design = eda_hdl::compile(&v, "sum_hls").unwrap();
        let mut sim = Simulator::new(&design);
        sim.poke("rst", Value::bit(true)).unwrap();
        clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
        sim.poke("rst", Value::bit(false)).unwrap();
        for i in 0..8u32 {
            sim.poke_mem("mem_0", i, Value::from_u64(32, (i + 1) as u64)).unwrap();
        }
        sim.poke("start", Value::bit(true)).unwrap();
        clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
        sim.poke("start", Value::bit(false)).unwrap();
        let mut guard = 0;
        while sim.peek("done").unwrap().to_u64() != Some(1) {
            clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
            guard += 1;
            assert!(guard < 5000);
        }
        assert_eq!(sim.peek("ret").unwrap().to_u64(), Some(36));
    }

    #[test]
    fn division_guard_matches_hardware_semantics() {
        let src = "int f(int a, int b) { return a / b; }";
        let (_, v) = emit(src, "f");
        assert_eq!(run_rtl(&v, "f_hls", &[10, 0], 1000), 0);
        assert_eq!(run_rtl(&v, "f_hls", &[10, 3], 1000), 3);
    }
}
