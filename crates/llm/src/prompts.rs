//! Prompt construction and parsing.
//!
//! Frameworks talk to the LLM through *text prompts*, exactly as they
//! would to a cloud model; structured task markers (`[[TASK:...]]`,
//! `[[FEEDBACK]]`, `[[PREVIOUS]]`, `[[TEMPLATE]]`, `[[EXAMPLE score=..]]`,
//! `[[SCOT]]`) keep the interface honest while letting the simulated model
//! recover the task deterministically. A real API client would simply
//! ignore the markers.

use std::collections::HashMap;

/// A parsed task prompt.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedPrompt {
    /// Task name from `[[TASK:name key=value...]]`.
    pub task: String,
    /// Key/value attributes on the task marker.
    pub attrs: HashMap<String, String>,
    /// Number of `[[FEEDBACK]]` sections (tool-feedback rounds).
    pub feedback_rounds: u32,
    /// Content of the last `[[FEEDBACK]]` section.
    pub last_feedback: Option<String>,
    /// Content of the `[[PREVIOUS]]` section (prior attempt).
    pub previous: Option<String>,
    /// Content of the `[[TEMPLATE]]` section (RAG retrieval).
    pub template: Option<String>,
    /// `[[EXAMPLE score=X]]` bodies with scores.
    pub examples: Vec<(f64, String)>,
    /// Whether Structured Chain-of-Thought is requested.
    pub scot: bool,
    /// Free text outside any marker section.
    pub body: String,
}

/// Builds a task prompt with the given marker and attributes.
pub fn task_header(task: &str, attrs: &[(&str, &str)]) -> String {
    let mut s = format!("[[TASK:{task}");
    for (k, v) in attrs {
        s.push_str(&format!(" {k}={v}"));
    }
    s.push_str("]]\n");
    s
}

/// Appends a feedback section.
pub fn feedback_section(text: &str) -> String {
    format!("[[FEEDBACK]]\n{text}\n[[/FEEDBACK]]\n")
}

/// Appends a previous-attempt section.
pub fn previous_section(text: &str) -> String {
    format!("[[PREVIOUS]]\n{text}\n[[/PREVIOUS]]\n")
}

/// Appends a retrieved-template section.
pub fn template_section(text: &str) -> String {
    format!("[[TEMPLATE]]\n{text}\n[[/TEMPLATE]]\n")
}

/// Appends a scored example section.
pub fn example_section(score: f64, text: &str) -> String {
    format!("[[EXAMPLE score={score:.4}]]\n{text}\n[[/EXAMPLE]]\n")
}

/// The SCoT marker.
pub fn scot_marker() -> &'static str {
    "[[SCOT]]\n"
}

/// Parses a prompt back into its structured pieces.
pub fn parse_prompt(prompt: &str) -> ParsedPrompt {
    let mut out = ParsedPrompt {
        task: String::new(),
        attrs: HashMap::new(),
        feedback_rounds: 0,
        last_feedback: None,
        previous: None,
        template: None,
        examples: Vec::new(),
        scot: prompt.contains("[[SCOT]]"),
        body: String::new(),
    };
    // Task marker.
    if let Some(start) = prompt.find("[[TASK:") {
        if let Some(end) = prompt[start..].find("]]") {
            let inner = &prompt[start + 7..start + end];
            let mut parts = inner.split_whitespace();
            if let Some(name) = parts.next() {
                out.task = name.to_string();
            }
            for p in parts {
                if let Some((k, v)) = p.split_once('=') {
                    out.attrs.insert(k.to_string(), v.to_string());
                }
            }
        }
    }
    // Sections.
    out.feedback_rounds = prompt.matches("[[FEEDBACK]]").count() as u32;
    out.last_feedback = last_section(prompt, "FEEDBACK");
    out.previous = last_section(prompt, "PREVIOUS");
    out.template = last_section(prompt, "TEMPLATE");
    // Examples.
    let mut rest = prompt;
    while let Some(start) = rest.find("[[EXAMPLE score=") {
        let after = &rest[start + 16..];
        let Some(close) = after.find("]]") else { break };
        let score: f64 = after[..close].trim().parse().unwrap_or(0.0);
        let body_start = start + 16 + close + 2;
        let Some(endpos) = rest[body_start..].find("[[/EXAMPLE]]") else { break };
        let body = rest[body_start..body_start + endpos].trim().to_string();
        out.examples.push((score, body));
        rest = &rest[body_start + endpos + 12..];
    }
    // Body: text before the first marker section.
    let first_marker = ["[[FEEDBACK]]", "[[PREVIOUS]]", "[[TEMPLATE]]", "[[EXAMPLE", "[[SCOT]]"]
        .iter()
        .filter_map(|m| prompt.find(m))
        .min()
        .unwrap_or(prompt.len());
    let body_region = &prompt[..first_marker];
    out.body = match body_region.find("]]") {
        Some(p) if body_region.contains("[[TASK:") => body_region[p + 2..].trim().to_string(),
        _ => body_region.trim().to_string(),
    };
    out
}

fn last_section(prompt: &str, name: &str) -> Option<String> {
    let open = format!("[[{name}]]");
    let close = format!("[[/{name}]]");
    let start = prompt.rfind(&open)? + open.len();
    let end = prompt[start..].find(&close)? + start;
    Some(prompt[start..end].trim().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_task_and_sections() {
        let mut p = task_header("verilog-design", &[("problem", "counter4")]);
        p.push_str("Design a 4-bit counter.\n");
        p.push_str(&feedback_section("vector 3: expected 4, got 5"));
        p.push_str(&previous_section("module counter4(); endmodule"));
        let parsed = parse_prompt(&p);
        assert_eq!(parsed.task, "verilog-design");
        assert_eq!(parsed.attrs["problem"], "counter4");
        assert_eq!(parsed.feedback_rounds, 1);
        assert!(parsed.last_feedback.unwrap().contains("expected 4"));
        assert!(parsed.previous.unwrap().contains("counter4"));
        assert_eq!(parsed.body, "Design a 4-bit counter.");
    }

    #[test]
    fn multiple_feedback_rounds_counted() {
        let mut p = task_header("verilog-design", &[]);
        p.push_str(&feedback_section("round one"));
        p.push_str(&feedback_section("round two"));
        let parsed = parse_prompt(&p);
        assert_eq!(parsed.feedback_rounds, 2);
        assert_eq!(parsed.last_feedback.unwrap(), "round two");
    }

    #[test]
    fn examples_with_scores() {
        let mut p = task_header("c-power-snippet", &[]);
        p.push_str(&example_section(4.2, "int f() { return 1; }"));
        p.push_str(&example_section(5.0, "int g() { return 2; }"));
        p.push_str(scot_marker());
        let parsed = parse_prompt(&p);
        assert_eq!(parsed.examples.len(), 2);
        assert!((parsed.examples[1].0 - 5.0).abs() < 1e-9);
        assert!(parsed.scot);
    }

    #[test]
    fn template_section_parsed() {
        let mut p = task_header("c-repair", &[("kind", "dynamic-allocation")]);
        p.push_str(&template_section("replace malloc with a static array"));
        let parsed = parse_prompt(&p);
        assert!(parsed.template.unwrap().contains("static array"));
        assert_eq!(parsed.attrs["kind"], "dynamic-allocation");
    }
}
