//! Transport seam between [`ChatModel`] consumers and the model itself.
//!
//! Real LLM deployments sit behind a network: requests time out, rate
//! limits fire, gateways return 5xx, latency spikes, and completions
//! arrive truncated or garbled. The simulated workspace reproduces all
//! of that behind one seam:
//!
//! * [`Transport`] — one attempt of one request: either a [`Reply`]
//!   (text + simulated latency) or a [`TransportError`].
//! * [`DirectTransport`] — the fault-free adapter around any
//!   [`ChatModel`]; constant base latency, never errors.
//! * [`FaultyTransport`] — deterministic, seed-driven fault injection at
//!   configurable per-class probabilities ([`FaultConfig`]). Every fault
//!   decision is a pure function of `(seed, request, attempt)` — *never*
//!   of shared mutable state — so faults land on the same candidates
//!   regardless of engine thread count or scheduling, and whole flow
//!   runs are bit-reproducible given `(seed, config)`.
//!
//! The retry/backoff/degradation logic on top lives in
//! [`crate::resilient`].

use crate::{ChatModel, ChatRequest};
use eda_exec::s_to_us;
use serde::Serialize;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Attempt-index salt marking a hedged duplicate request, so the hedge
/// draws an independent fault/latency outcome from the same transport.
pub const HEDGE_ATTEMPT_SALT: u32 = 0x4000_0000;

/// One successful transport attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    pub text: String,
    /// Simulated time-to-completion for this attempt.
    pub latency_us: u64,
}

/// Transport-level failure of one attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The attempt produced no answer within the connection budget;
    /// `waited_s` virtual seconds were burned finding out.
    Timeout { waited_s: f64 },
    /// 429-style rejection with an advertised retry-after.
    RateLimited { retry_after_s: f64 },
    /// Transient 5xx-style server failure.
    Server { code: u16 },
}

impl TransportError {
    /// Virtual seconds a caller spends on this failed attempt (the
    /// timeout wait, the advertised retry-after, or a fast error reply).
    pub fn cost_s(&self) -> f64 {
        match self {
            TransportError::Timeout { waited_s } => *waited_s,
            TransportError::RateLimited { retry_after_s } => *retry_after_s,
            TransportError::Server { .. } => 0.2,
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Timeout { waited_s } => {
                write!(f, "timeout after {waited_s:.1}s")
            }
            TransportError::RateLimited { retry_after_s } => {
                write!(f, "rate limited (retry after {retry_after_s:.1}s)")
            }
            TransportError::Server { code } => write!(f, "server error {code}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Counters of injected faults, by class. All-zero for fault-free
/// transports. Totals are atomic sums, so they are identical across
/// engine thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct FaultStats {
    pub timeouts: u64,
    pub rate_limits: u64,
    pub server_errors: u64,
    pub truncated: u64,
    pub garbled: u64,
    pub latency_spikes: u64,
}

impl FaultStats {
    /// Total injected faults of every class.
    pub fn total(&self) -> u64 {
        self.timeouts
            + self.rate_limits
            + self.server_errors
            + self.truncated
            + self.garbled
            + self.latency_spikes
    }

    /// Faults that surface as [`TransportError`] (and therefore retry).
    pub fn errors(&self) -> u64 {
        self.timeouts + self.rate_limits + self.server_errors
    }

    /// Adds `other`'s counters into `self` (aggregating across runs or
    /// clients).
    pub fn merge(&mut self, other: &FaultStats) {
        self.timeouts += other.timeouts;
        self.rate_limits += other.rate_limits;
        self.server_errors += other.server_errors;
        self.truncated += other.truncated;
        self.garbled += other.garbled;
        self.latency_spikes += other.latency_spikes;
    }
}

/// One attempt of one request. Implementations must be pure per
/// `(request, attempt)` — the same inputs always produce the same
/// outcome — so flows stay deterministic under parallel evaluation.
pub trait Transport: Send + Sync {
    /// Transport display name (for logs and reports).
    fn name(&self) -> &str;

    /// Performs attempt `attempt` of `request`.
    fn send(&self, request: &ChatRequest, attempt: u32) -> Result<Reply, TransportError>;

    /// Injected-fault counters (all zero for fault-free transports).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// The fault-free adapter: completes through the wrapped model at a
/// constant simulated base latency, never errors.
#[derive(Debug, Clone)]
pub struct DirectTransport<M> {
    model: M,
    base_latency_us: u64,
}

/// Default simulated time-to-completion of a healthy request (0.8 s).
pub const BASE_LATENCY_US: u64 = 800_000;

impl<M: ChatModel> DirectTransport<M> {
    pub fn new(model: M) -> Self {
        DirectTransport { model, base_latency_us: BASE_LATENCY_US }
    }

    /// Overrides the simulated base latency.
    pub fn with_base_latency_us(mut self, us: u64) -> Self {
        self.base_latency_us = us;
        self
    }
}

impl<M: ChatModel> Transport for DirectTransport<M> {
    fn name(&self) -> &str {
        self.model.name()
    }

    fn send(&self, request: &ChatRequest, attempt: u32) -> Result<Reply, TransportError> {
        let reply = Reply {
            text: self.model.complete(request).text,
            latency_us: self.base_latency_us,
        };
        // Same idempotent reporting as FaultyTransport: pure per
        // (request, attempt), so the fault-free stack also shows its
        // unique transport calls in traces.
        if eda_obs::enabled() {
            eda_obs::transport_event(
                crate::resilient::hash_request(request),
                attempt,
                "transport.ok",
                reply.latency_us,
                String::new,
            );
        }
        Ok(reply)
    }
}

/// Per-class fault probabilities plus the injection seed.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Attempt hangs and times out (error; costs [`FaultConfig::timeout_s`]).
    pub timeout_p: f64,
    /// 429-style rejection (error; costs the advertised retry-after).
    pub rate_limit_p: f64,
    /// Transient 5xx (error; fast failure).
    pub server_error_p: f64,
    /// Completion arrives cut off mid-stream.
    pub truncate_p: f64,
    /// Completion arrives with corrupted spans.
    pub garble_p: f64,
    /// Latency multiplied by [`FaultConfig::spike_factor`] (no error —
    /// hedging territory).
    pub latency_spike_p: f64,
    /// Virtual seconds burned by one timed-out attempt.
    pub timeout_s: f64,
    /// Latency multiplier on a spike.
    pub spike_factor: f64,
    /// Injection seed: same `(seed, request, attempt)` → same faults.
    pub seed: u64,
}

impl Default for FaultConfig {
    /// No faults injected.
    fn default() -> Self {
        FaultConfig {
            timeout_p: 0.0,
            rate_limit_p: 0.0,
            server_error_p: 0.0,
            truncate_p: 0.0,
            garble_p: 0.0,
            latency_spike_p: 0.0,
            timeout_s: 10.0,
            spike_factor: 8.0,
            seed: 0x00fa_0175,
        }
    }
}

impl FaultConfig {
    /// No faults.
    pub fn none() -> Self {
        FaultConfig::default()
    }

    /// Spreads one overall fault `rate` over the classes with a fixed
    /// mix (25% timeout, 20% rate-limit, 20% 5xx, 15% truncation,
    /// 10% garbling, 10% latency spike). `rate` is clamped to `[0, 1]`.
    pub fn uniform(rate: f64, seed: u64) -> Self {
        let r = rate.clamp(0.0, 1.0);
        FaultConfig {
            timeout_p: 0.25 * r,
            rate_limit_p: 0.20 * r,
            server_error_p: 0.20 * r,
            truncate_p: 0.15 * r,
            garble_p: 0.10 * r,
            latency_spike_p: 0.10 * r,
            seed,
            ..FaultConfig::default()
        }
    }

    /// True when any class has nonzero probability.
    pub fn any(&self) -> bool {
        self.timeout_p > 0.0
            || self.rate_limit_p > 0.0
            || self.server_error_p > 0.0
            || self.truncate_p > 0.0
            || self.garble_p > 0.0
            || self.latency_spike_p > 0.0
    }

    /// Probability that one attempt fails with a [`TransportError`].
    pub fn error_rate(&self) -> f64 {
        (self.timeout_p + self.rate_limit_p + self.server_error_p).min(1.0)
    }
}

/// Deterministic per-attempt uniform stream: FNV-1a over the request
/// identity, then splitmix64 per draw. Draw order is fixed, so the same
/// `(seed, request, attempt)` always yields the same fault pattern.
struct FaultDraw {
    state: u64,
}

impl FaultDraw {
    fn new(seed: u64, request: &ChatRequest, attempt: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for b in request.prompt.bytes() {
            mix(b as u64);
        }
        mix(request.temperature.to_bits());
        mix(request.sample_index as u64);
        mix(attempt as u64);
        FaultDraw { state: h }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One Bernoulli trial (always consumes exactly one draw).
    fn hit(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

/// Atomic mirror of [`FaultStats`].
#[derive(Debug, Default)]
struct AtomicFaultStats {
    timeouts: AtomicU64,
    rate_limits: AtomicU64,
    server_errors: AtomicU64,
    truncated: AtomicU64,
    garbled: AtomicU64,
    latency_spikes: AtomicU64,
}

impl AtomicFaultStats {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            timeouts: self.timeouts.load(Ordering::Relaxed),
            rate_limits: self.rate_limits.load(Ordering::Relaxed),
            server_errors: self.server_errors.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
            garbled: self.garbled.load(Ordering::Relaxed),
            latency_spikes: self.latency_spikes.load(Ordering::Relaxed),
        }
    }
}

/// Seed-driven fault-injecting wrapper around any [`Transport`].
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    cfg: FaultConfig,
    stats: AtomicFaultStats,
}

impl<T: Transport> FaultyTransport<T> {
    pub fn new(inner: T, cfg: FaultConfig) -> Self {
        FaultyTransport { inner, cfg, stats: AtomicFaultStats::default() }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn send(&self, request: &ChatRequest, attempt: u32) -> Result<Reply, TransportError> {
        let result = self.send_inner(request, attempt);
        // Observability: one idempotent event per (request, attempt).
        // The outcome is pure, so whichever job/thread reports first
        // writes identical bytes — traces stay invariant across thread
        // counts and across coalescing (which only dedups the calls).
        if eda_obs::enabled() {
            let key = crate::resilient::hash_request(request);
            match &result {
                Ok(reply) => eda_obs::transport_event(
                    key,
                    attempt,
                    "transport.ok",
                    reply.latency_us,
                    String::new,
                ),
                Err(e) => {
                    let name = match e {
                        TransportError::Timeout { .. } => "transport.timeout",
                        TransportError::RateLimited { .. } => "transport.rate_limited",
                        TransportError::Server { .. } => "transport.server_error",
                    };
                    eda_obs::transport_event(key, attempt, name, s_to_us(e.cost_s()), || {
                        e.to_string()
                    });
                }
            }
        }
        result
    }

    fn fault_stats(&self) -> FaultStats {
        self.stats.snapshot()
    }
}

impl<T: Transport> FaultyTransport<T> {
    fn send_inner(&self, request: &ChatRequest, attempt: u32) -> Result<Reply, TransportError> {
        // One Bernoulli draw per class, in fixed order, so the outcome
        // stream is a pure function of (seed, request, attempt).
        let mut draw = FaultDraw::new(self.cfg.seed, request, attempt);
        let timeout = draw.hit(self.cfg.timeout_p);
        let rate_limited = draw.hit(self.cfg.rate_limit_p);
        let server = draw.hit(self.cfg.server_error_p);
        let spike = draw.hit(self.cfg.latency_spike_p);
        let truncate = draw.hit(self.cfg.truncate_p);
        let garble = draw.hit(self.cfg.garble_p);
        if timeout {
            self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            return Err(TransportError::Timeout { waited_s: self.cfg.timeout_s });
        }
        if rate_limited {
            self.stats.rate_limits.fetch_add(1, Ordering::Relaxed);
            return Err(TransportError::RateLimited {
                retry_after_s: 1.0 + (draw.unit() * 4.0 * 10.0).round() / 10.0,
            });
        }
        if server {
            self.stats.server_errors.fetch_add(1, Ordering::Relaxed);
            let code = if draw.unit() < 0.5 { 500 } else { 503 };
            return Err(TransportError::Server { code });
        }
        let mut reply = self.inner.send(request, attempt)?;
        if spike {
            self.stats.latency_spikes.fetch_add(1, Ordering::Relaxed);
            reply.latency_us = s_to_us(
                reply.latency_us as f64 / 1e6 * self.cfg.spike_factor.max(1.0),
            );
        }
        if truncate {
            self.stats.truncated.fetch_add(1, Ordering::Relaxed);
            reply.text = truncate_text(&reply.text, draw.unit());
        } else if garble {
            self.stats.garbled.fetch_add(1, Ordering::Relaxed);
            reply.text = garble_text(&reply.text, &mut draw);
        }
        Ok(reply)
    }
}

/// Cuts a completion off mid-stream, keeping a `[0.2, 0.8)` prefix
/// (UTF-8-safe).
fn truncate_text(text: &str, unit: f64) -> String {
    let keep = ((text.len() as f64) * (0.2 + 0.6 * unit)) as usize;
    let mut cut = keep.min(text.len());
    while cut > 0 && !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text[..cut].to_string()
}

/// Corrupts ~8% of the bytes of a completion with punctuation noise
/// (only ASCII positions are touched, so the result stays valid UTF-8).
fn garble_text(text: &str, draw: &mut FaultDraw) -> String {
    const NOISE: &[u8; 16] = b"#@$%^&*~`?<>|\\{}";
    let mut bytes = text.as_bytes().to_vec();
    for b in bytes.iter_mut() {
        if b.is_ascii() && draw.hit(0.08) {
            *b = NOISE[(draw.next_u64() as usize) % NOISE.len()];
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelSpec, SimulatedLlm};

    fn req(prompt: &str, idx: u32) -> ChatRequest {
        ChatRequest { prompt: prompt.into(), temperature: 0.4, sample_index: idx }
    }

    fn faulty(rate: f64, seed: u64) -> FaultyTransport<DirectTransport<SimulatedLlm>> {
        FaultyTransport::new(
            DirectTransport::new(SimulatedLlm::new(ModelSpec::ultra())),
            FaultConfig::uniform(rate, seed),
        )
    }

    #[test]
    fn direct_transport_is_faithful_and_fault_free() {
        let model = SimulatedLlm::new(ModelSpec::ultra());
        let t = DirectTransport::new(model.clone());
        let r = req("hello", 0);
        let reply = t.send(&r, 0).unwrap();
        assert_eq!(reply.text, model.complete(&r).text);
        assert_eq!(reply.latency_us, BASE_LATENCY_US);
        assert_eq!(t.fault_stats().total(), 0);
    }

    #[test]
    fn fault_outcome_is_pure_per_request_and_attempt() {
        let t = faulty(0.5, 42);
        for i in 0..40u32 {
            let r = req("probe", i);
            for attempt in 0..3 {
                let a = t.send(&r, attempt);
                let b = t.send(&r, attempt);
                assert_eq!(a, b, "request {i} attempt {attempt} not reproducible");
            }
        }
    }

    #[test]
    fn different_attempts_draw_independent_faults() {
        let t = faulty(0.5, 7);
        let outcomes: Vec<bool> = (0..64u32)
            .map(|a| t.send(&req("same prompt", 1), a).is_ok())
            .collect();
        assert!(outcomes.iter().any(|o| *o), "some attempt must succeed");
        assert!(outcomes.iter().any(|o| !*o), "some attempt must fail at p=0.5");
    }

    #[test]
    fn seed_changes_fault_pattern() {
        let pattern = |seed: u64| -> Vec<bool> {
            let t = faulty(0.4, seed);
            (0..64u32).map(|i| t.send(&req("x", i), 0).is_ok()).collect()
        };
        assert_ne!(pattern(1), pattern(2));
        assert_eq!(pattern(3), pattern(3));
    }

    #[test]
    fn all_fault_classes_fire_and_are_counted() {
        let t = faulty(0.9, 11);
        let mut ok = 0u32;
        for i in 0..300u32 {
            if t.send(&req("class sweep", i), 0).is_ok() {
                ok += 1;
            }
        }
        let s = t.fault_stats();
        assert!(s.timeouts > 0, "{s:?}");
        assert!(s.rate_limits > 0, "{s:?}");
        assert!(s.server_errors > 0, "{s:?}");
        assert!(s.truncated > 0, "{s:?}");
        assert!(s.garbled > 0, "{s:?}");
        assert!(s.latency_spikes > 0, "{s:?}");
        assert_eq!(s.errors(), 300 - ok as u64);
    }

    #[test]
    fn certain_timeout_always_errors() {
        let cfg = FaultConfig { timeout_p: 1.0, ..FaultConfig::default() };
        let t = FaultyTransport::new(
            DirectTransport::new(SimulatedLlm::new(ModelSpec::basic())),
            cfg,
        );
        for i in 0..10u32 {
            match t.send(&req("y", i), 0) {
                Err(TransportError::Timeout { waited_s }) => assert_eq!(waited_s, 10.0),
                other => panic!("expected timeout, got {other:?}"),
            }
        }
        assert_eq!(t.fault_stats().timeouts, 10);
    }

    #[test]
    fn truncation_shortens_and_garbling_corrupts() {
        let model = SimulatedLlm::new(ModelSpec::ultra());
        let clean = model.complete(&req("z", 0)).text;
        let trunc = FaultyTransport::new(
            DirectTransport::new(model.clone()),
            FaultConfig { truncate_p: 1.0, ..FaultConfig::default() },
        );
        let t = trunc.send(&req("z", 0), 0).unwrap().text;
        assert!(t.len() < clean.len(), "{} vs {}", t.len(), clean.len());
        assert!(clean.starts_with(&t), "truncation must be a prefix");

        let garb = FaultyTransport::new(
            DirectTransport::new(model),
            FaultConfig { garble_p: 1.0, ..FaultConfig::default() },
        );
        let g = garb.send(&req("z", 0), 0).unwrap().text;
        assert_eq!(g.len(), clean.len());
        assert_ne!(g, clean, "garbling must corrupt some bytes");
    }

    #[test]
    fn latency_spike_multiplies_base_latency() {
        let t = FaultyTransport::new(
            DirectTransport::new(SimulatedLlm::new(ModelSpec::basic())),
            FaultConfig { latency_spike_p: 1.0, ..FaultConfig::default() },
        );
        let reply = t.send(&req("w", 0), 0).unwrap();
        assert_eq!(reply.latency_us, BASE_LATENCY_US * 8);
        assert_eq!(t.fault_stats().latency_spikes, 1);
    }

    #[test]
    fn uniform_mix_sums_to_rate() {
        let c = FaultConfig::uniform(0.4, 0);
        let sum = c.timeout_p
            + c.rate_limit_p
            + c.server_error_p
            + c.truncate_p
            + c.garble_p
            + c.latency_spike_p;
        assert!((sum - 0.4).abs() < 1e-12);
        assert!(c.any());
        assert!(!FaultConfig::none().any());
        assert!((FaultConfig::uniform(0.4, 0).error_rate() - 0.26).abs() < 1e-12);
    }
}
