//! # eda-llm — a deterministic simulated LLM for EDA workflows
//!
//! This crate is the workspace's substitution for the cloud LLMs the paper
//! uses (GPT-3.5/4/4o, Code Llama 34B, fine-tuned variants). The paper's
//! experiments measure *search dynamics around a model* — candidate
//! quality versus temperature, feedback benefit versus model tier, pool
//! convergence — not any specific model's weights, so the simulation
//! exposes exactly those statistical knobs:
//!
//! * **capability** — expected bug/defect rate of generated artifacts,
//! * **feedback_skill** — how much EDA-tool feedback reduces that rate
//!   (only strong models benefit, reproducing AutoChip's finding),
//! * **temperature** — diversity/error spread of samples,
//! * **SCoT** — structured chain-of-thought improves structure quality.
//!
//! Everything is deterministic given (model, prompt, temperature, sample
//! index), making every experiment in the workspace reproducible bit for
//! bit. The [`ChatModel`] trait is the seam where a real API client would
//! plug in: frameworks build *text prompts* (see [`prompts`]) and receive
//! *text completions*.
//!
//! ```
//! use eda_llm::{ChatModel, ChatRequest, ModelSpec, SimulatedLlm};
//!
//! let model = SimulatedLlm::new(ModelSpec::ultra());
//! let problem = eda_suite::problem("counter4").unwrap();
//! let mut prompt = eda_llm::prompts::task_header(
//!     "verilog-design", &[("problem", problem.id)]);
//! prompt.push_str(problem.prompt);
//! let resp = model.complete(&ChatRequest { prompt, temperature: 0.4, sample_index: 0 });
//! assert!(resp.text.contains("module"));
//! ```

pub mod cgen;
pub mod coalesce;
pub mod prompts;
pub mod repairgen;
pub mod resilient;
pub mod transport;
pub mod verilog;

pub use cgen::{extract_features, generate_snippet, CGenCtx, SnippetFeatures};
pub use coalesce::{
    CoalesceReport, CoalescingLlm, JobHandle, SharedTier, TierReport, CANCELLED_COMPLETION,
};
pub use prompts::{parse_prompt, ParsedPrompt};
pub use repairgen::{attempt_repair, RepairCtx};
pub use resilient::{
    ClientError, LlmReport, ResilienceConfig, ResilientClient, RetryPolicy, FAULT_RATE_ENV,
    FAULT_SEED_ENV, MAX_RETRIES_ENV,
};
pub use transport::{
    DirectTransport, FaultConfig, FaultStats, FaultyTransport, Reply, Transport, TransportError,
};
pub use verilog::{expected_bugs, generate_candidate, VerilogGenCtx};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A model tier.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    pub name: String,
    /// Generation quality in `[0, 1]`.
    pub capability: f64,
    /// Ability to exploit EDA-tool feedback in `[0, 1]`.
    pub feedback_skill: f64,
}

impl ModelSpec {
    /// A GPT-3.5-class conversational model.
    pub fn basic() -> ModelSpec {
        ModelSpec { name: "sim-basic-3.5".into(), capability: 0.42, feedback_skill: 0.10 }
    }

    /// A code-tuned open model (Code-Llama-34B-class).
    pub fn coder() -> ModelSpec {
        ModelSpec { name: "sim-coder-34b".into(), capability: 0.55, feedback_skill: 0.16 }
    }

    /// A GPT-4-class model.
    pub fn pro() -> ModelSpec {
        ModelSpec { name: "sim-pro-4".into(), capability: 0.72, feedback_skill: 0.28 }
    }

    /// The strongest tier (GPT-4o-class) — the only one that benefits
    /// substantially from tool feedback, per the paper.
    pub fn ultra() -> ModelSpec {
        ModelSpec { name: "sim-ultra-4o".into(), capability: 0.88, feedback_skill: 0.92 }
    }

    /// A Code-Llama-34B-Instruct further fine-tuned on 80k QA pairs — the
    /// Section-V SLT model.
    pub fn code_llama_ft() -> ModelSpec {
        ModelSpec { name: "sim-cl34b-ft".into(), capability: 0.68, feedback_skill: 0.40 }
    }

    /// The off-the-shelf counterpart of [`ModelSpec::code_llama_ft`]
    /// ("compared to the off-the-shelf model, it performs significantly
    /// better").
    pub fn code_llama_raw() -> ModelSpec {
        ModelSpec { name: "sim-cl34b-raw".into(), capability: 0.48, feedback_skill: 0.25 }
    }

    /// The next-cheaper tier to degrade to when `name`'s tier keeps
    /// failing: ultra → pro → coder → basic; the fine-tuned Code Llama
    /// falls back to its off-the-shelf counterpart. Unknown names
    /// degrade straight to [`ModelSpec::basic`].
    pub fn cheaper_tier(name: &str) -> ModelSpec {
        if name.contains("ultra") {
            ModelSpec::pro()
        } else if name.contains("pro") {
            ModelSpec::coder()
        } else if name.contains("cl34b-ft") {
            ModelSpec::code_llama_raw()
        } else {
            ModelSpec::basic()
        }
    }
}

/// The four commercial tiers AutoChip is evaluated with.
pub fn model_zoo() -> Vec<ModelSpec> {
    vec![ModelSpec::basic(), ModelSpec::coder(), ModelSpec::pro(), ModelSpec::ultra()]
}

/// A completion request.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatRequest {
    pub prompt: String,
    pub temperature: f64,
    /// Index when sampling k candidates from one prompt.
    pub sample_index: u32,
}

/// A completion.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatResponse {
    pub text: String,
}

/// The LLM interface used by every framework. Object-safe so frameworks
/// can hold `Box<dyn ChatModel>`.
pub trait ChatModel: Send + Sync {
    /// Model display name.
    fn name(&self) -> &str;
    /// Completes a prompt.
    fn complete(&self, request: &ChatRequest) -> ChatResponse;
}

impl<T: ChatModel + ?Sized> ChatModel for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn complete(&self, request: &ChatRequest) -> ChatResponse {
        (**self).complete(request)
    }
}

/// The deterministic simulated model.
#[derive(Debug, Clone)]
pub struct SimulatedLlm {
    spec: ModelSpec,
    base_seed: u64,
}

impl SimulatedLlm {
    /// Creates a model with the default base seed.
    pub fn new(spec: ModelSpec) -> Self {
        SimulatedLlm { spec, base_seed: 0x11aa_22bb }
    }

    /// Overrides the base seed (independent replications).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// The model tier.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    fn derive_seed(&self, prompt: &str, temperature: f64, sample_index: u32) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325 ^ self.base_seed;
        let mut mix = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x100000001b3);
        };
        for b in self.spec.name.bytes() {
            mix(b as u64);
        }
        for b in prompt.bytes() {
            mix(b as u64);
        }
        mix(temperature.to_bits());
        mix(sample_index as u64);
        h
    }

    /// Proposes test inputs from spectra observations (the HLSTester
    /// "LLM-based reasoning chain"). Given per-variable (min, max,
    /// overflow-count) summaries, strong models aim at boundary and
    /// overflow-triggering values; weak models sample mostly at random.
    pub fn reason_test_inputs(
        &self,
        spectra: &[(String, i64, i64, u64)],
        n_scalars: usize,
        n: usize,
        temperature: f64,
        seed: u64,
    ) -> Vec<Vec<i64>> {
        let mut rng = StdRng::seed_from_u64(seed ^ self.base_seed ^ 0xfeed);
        let mut out = Vec::with_capacity(n);
        let observed_max = spectra.iter().map(|(_, _, mx, _)| *mx).max().unwrap_or(100);
        let saw_overflow = spectra.iter().any(|(_, _, _, o)| *o > 0);
        for _ in 0..n {
            let targeted = rng.gen_bool(self.spec.capability.clamp(0.05, 0.95));
            let row: Vec<i64> = (0..n_scalars)
                .map(|_| {
                    if targeted {
                        // Boundary-oriented: push past observed extremes to
                        // provoke overflow/path changes.
                        let base = observed_max.max(1);
                        let factor = if saw_overflow { 4 } else { 2 };
                        let spread = (temperature * base as f64) as i64;
                        base * factor + rng.gen_range(0..=spread.max(1))
                    } else {
                        rng.gen_range(0..1000)
                    }
                })
                .collect();
            out.push(row);
        }
        out
    }
}

impl ChatModel for SimulatedLlm {
    fn name(&self) -> &str {
        &self.spec.name
    }

    fn complete(&self, request: &ChatRequest) -> ChatResponse {
        let parsed = parse_prompt(&request.prompt);
        let seed = self.derive_seed(&request.prompt, request.temperature, request.sample_index);
        let text = match parsed.task.as_str() {
            "verilog-design" => {
                let problem_id = parsed.attrs.get("problem").cloned().unwrap_or_default();
                match eda_suite::problem(&problem_id) {
                    Some(p) => {
                        let ctx = VerilogGenCtx {
                            capability: self.spec.capability,
                            feedback_skill: self.spec.feedback_skill,
                            temperature: request.temperature,
                            feedback_rounds: parsed.feedback_rounds,
                        };
                        verilog::generate_candidate(&p, &ctx, seed)
                    }
                    None => format!(
                        "module {}();\n  // specification not understood\nendmodule\n",
                        if problem_id.is_empty() { "design" } else { &problem_id }
                    ),
                }
            }
            "c-power-snippet" => {
                let ctx = CGenCtx {
                    capability: self.spec.capability,
                    temperature: request.temperature,
                    scot: parsed.scot,
                };
                cgen::generate_snippet(&ctx, &parsed.examples, seed)
            }
            "c-repair" => {
                let kind = parsed.attrs.get("kind").cloned().unwrap_or_default();
                let ctx = RepairCtx {
                    capability: self.spec.capability,
                    has_template: parsed.template.is_some(),
                };
                repairgen::attempt_repair(&parsed.body, &kind, &ctx, seed)
            }
            _ => "// unsupported task".to_string(),
        };
        ChatResponse { text }
    }
}

/// Content hash of this crate's sources (computed by `build.rs`).
/// Persisted results keyed on it self-invalidate when the engine
/// changes.
pub fn content_hash() -> u64 {
    // Emitted as decimal by build.rs; parsing cannot fail.
    env!("EDA_CONTENT_HASH").parse().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prompts::*;

    #[test]
    fn verilog_task_roundtrip() {
        let model = SimulatedLlm::new(ModelSpec::ultra());
        let p = eda_suite::problem("mux2").unwrap();
        let mut prompt = task_header("verilog-design", &[("problem", p.id)]);
        prompt.push_str(p.prompt);
        let r = model.complete(&ChatRequest { prompt, temperature: 0.2, sample_index: 0 });
        assert!(r.text.contains("module mux2"));
    }

    #[test]
    fn completions_deterministic() {
        let model = SimulatedLlm::new(ModelSpec::pro());
        let req = ChatRequest {
            prompt: task_header("verilog-design", &[("problem", "alu8")]),
            temperature: 0.9,
            sample_index: 3,
        };
        assert_eq!(model.complete(&req), model.complete(&req));
        let req2 = ChatRequest { sample_index: 4, ..req.clone() };
        assert_ne!(model.complete(&req), model.complete(&req2));
    }

    #[test]
    fn c_snippet_task() {
        let model = SimulatedLlm::new(ModelSpec::code_llama_ft());
        let mut prompt = task_header("c-power-snippet", &[]);
        prompt.push_str("Write C that maximizes power.\n");
        prompt.push_str(scot_marker());
        let r = model.complete(&ChatRequest { prompt, temperature: 0.7, sample_index: 0 });
        assert!(r.text.contains("int snippet()"));
    }

    #[test]
    fn repair_task_with_template() {
        let model = SimulatedLlm::new(ModelSpec::ultra());
        let mut prompt = task_header("c-repair", &[("kind", "stdio")]);
        prompt.push_str("int f(int a) { printf(\"%d\", a); return a; }\n");
        prompt.push_str(&template_section("remove stdio calls"));
        let r = model.complete(&ChatRequest { prompt, temperature: 0.1, sample_index: 0 });
        assert!(!r.text.contains("printf"), "{}", r.text);
    }

    #[test]
    fn unknown_problem_yields_stub() {
        let model = SimulatedLlm::new(ModelSpec::basic());
        let prompt = task_header("verilog-design", &[("problem", "nonexistent")]);
        let r = model.complete(&ChatRequest { prompt, temperature: 0.5, sample_index: 0 });
        assert!(r.text.contains("module"));
    }

    #[test]
    fn model_zoo_is_ordered_by_capability() {
        let zoo = model_zoo();
        assert_eq!(zoo.len(), 4);
        for w in zoo.windows(2) {
            assert!(w[0].capability < w[1].capability);
        }
    }

    #[test]
    fn reasoned_inputs_target_boundaries() {
        let strong = SimulatedLlm::new(ModelSpec::ultra());
        let spectra = vec![("acc".to_string(), 0i64, 500i64, 3u64)];
        let inputs = strong.reason_test_inputs(&spectra, 2, 20, 0.5, 9);
        assert_eq!(inputs.len(), 20);
        // Most proposals exceed the observed max (overflow hunting).
        let beyond = inputs.iter().filter(|row| row.iter().any(|v| *v > 500)).count();
        assert!(beyond >= 12, "{beyond}/20 beyond observed max");
    }

    #[test]
    fn chat_model_is_object_safe() {
        let m: Box<dyn ChatModel> = Box::new(SimulatedLlm::new(ModelSpec::basic()));
        assert_eq!(m.name(), "sim-basic-3.5");
    }
}
