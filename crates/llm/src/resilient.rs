//! Retry, backoff, hedging, and graceful degradation over a [`Transport`].
//!
//! [`ResilientClient`] is the piece every flow talks to instead of a raw
//! model: it retries transport errors with exponential backoff and
//! deterministic jitter, hedges latency spikes with a duplicate request
//! (canceling the loser), and degrades to a cheaper [`ModelSpec`] tier
//! after `degrade_after` consecutive failed attempts of a request —
//! trading answer quality for availability, exactly like a production
//! serving stack.
//!
//! All time is virtual: waits are billed to an [`eda_exec::SharedClock`]
//! in whole microseconds, so chaos tests run in milliseconds of real
//! time and totals are bit-identical across engine thread counts.
//!
//! **Determinism.** Every decision — fault draws, backoff jitter, hedge
//! outcomes, degradation — is a pure function of `(config, request,
//! attempt)`. There is deliberately no cross-request state: a degraded
//! request falls back for its own remaining attempts and the *next*
//! request starts on the primary tier again (recovery is implicit).
//! This is what lets parallel and sequential engine runs serialize
//! byte-identically even under fault injection: faults land by
//! candidate, never by thread timing.

use crate::transport::{
    DirectTransport, FaultConfig, FaultStats, FaultyTransport, Reply, Transport, TransportError,
    HEDGE_ATTEMPT_SALT,
};
use crate::{ChatModel, ChatRequest, ChatResponse, ModelSpec, SimulatedLlm};
use eda_exec::backing::{self, KvBacking, NS_COMPLETION};
use eda_exec::{s_to_us, EnvKnobError, EvalKey, SharedClock};
use serde::Serialize;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Overall fault rate injected into every flow's LLM traffic
/// (`0.0`–`1.0`; unset means no faults). Mirrors `EDA_EXEC_THREADS`.
pub const FAULT_RATE_ENV: &str = "EDA_LLM_FAULT_RATE";
/// Retry budget per request (retries after the first attempt).
pub const MAX_RETRIES_ENV: &str = "EDA_LLM_MAX_RETRIES";
/// Fault-injection seed (defaults to a fixed constant).
pub const FAULT_SEED_ENV: &str = "EDA_LLM_FAULT_SEED";

/// Retry/backoff/hedging/degradation policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt.
    pub max_retries: u32,
    /// First backoff wait.
    pub base_backoff_s: f64,
    /// Exponential growth per retry.
    pub backoff_multiplier: f64,
    /// Backoff cap.
    pub max_backoff_s: f64,
    /// Jitter fraction: each wait is scaled by a deterministic factor in
    /// `[1 - jitter, 1 + jitter)` derived from the request and attempt.
    pub jitter: f64,
    /// Issue a hedged duplicate when an attempt's latency exceeds this;
    /// the slower copy is canceled. `None` disables hedging.
    pub hedge_after_s: Option<f64>,
    /// Consecutive failed attempts of one request before its remaining
    /// attempts fall back to the cheaper tier.
    pub degrade_after: u32,
    /// Virtual-time budget per request (backoff + attempt costs); the
    /// request fails with a typed error rather than waiting past it.
    pub request_deadline_s: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_s: 0.5,
            backoff_multiplier: 2.0,
            max_backoff_s: 8.0,
            jitter: 0.2,
            hedge_after_s: Some(2.5),
            degrade_after: 3,
            request_deadline_s: 120.0,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `retry_index` (0-based), in microseconds:
    /// `base * multiplier^retry_index` capped at `max_backoff_s`, scaled
    /// by deterministic jitter derived from `(req_hash, retry_index)`.
    pub fn backoff_us(&self, req_hash: u64, retry_index: u32) -> u64 {
        let raw = self.base_backoff_s * self.backoff_multiplier.powi(retry_index as i32);
        let capped = raw.min(self.max_backoff_s);
        let scaled = capped * self.jitter_factor(req_hash, retry_index);
        s_to_us(scaled)
    }

    /// Deterministic jitter multiplier in `[1 - jitter, 1 + jitter)`.
    fn jitter_factor(&self, req_hash: u64, retry_index: u32) -> f64 {
        if self.jitter <= 0.0 {
            return 1.0;
        }
        let mut z = req_hash
            ^ (retry_index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ 0x6a09_e667_f3bc_c909;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        1.0 + self.jitter * (2.0 * unit - 1.0)
    }
}

/// Complete resilience configuration carried by every flow config.
///
/// `Default` reads the environment (mirroring [`eda_exec::Engine`]'s
/// `EDA_EXEC_THREADS`): with no `EDA_LLM_*` variables set it is the
/// fault-free direct path, byte-identical to calling the model.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceConfig {
    pub faults: FaultConfig,
    pub policy: RetryPolicy,
    /// Allow degradation to a cheaper tier ([`ModelSpec::cheaper_tier`]).
    pub fallback: bool,
}

impl ResilienceConfig {
    /// Fault-free, env-independent configuration (the direct path).
    pub fn off() -> Self {
        ResilienceConfig {
            faults: FaultConfig::none(),
            policy: RetryPolicy::default(),
            fallback: true,
        }
    }

    /// Env-independent configuration with an overall fault `rate` spread
    /// over the classes per [`FaultConfig::uniform`].
    pub fn with_fault_rate(rate: f64, seed: u64) -> Self {
        ResilienceConfig { faults: FaultConfig::uniform(rate, seed), ..Self::off() }
    }

    /// Reads `EDA_LLM_FAULT_RATE`, `EDA_LLM_FAULT_SEED`, and
    /// `EDA_LLM_MAX_RETRIES`. Unset variables mean no faults and the
    /// default retry budget.
    ///
    /// # Panics
    ///
    /// On a malformed or out-of-range variable, with a message naming
    /// it; use [`ResilienceConfig::try_from_env`] to handle the error.
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`ResilienceConfig::from_env`]: the fault rate
    /// must be in `[0, 1]` and the retry budget in `[0, 16]`; malformed
    /// or out-of-range values are an [`EnvKnobError`] naming the
    /// variable instead of a silent default.
    pub fn try_from_env() -> Result<Self, EnvKnobError> {
        let rate = eda_exec::parse_knob_in::<f64>(FAULT_RATE_ENV, 0.0, 1.0)?.unwrap_or(0.0);
        let seed =
            eda_exec::parse_knob::<u64>(FAULT_SEED_ENV)?.unwrap_or(FaultConfig::default().seed);
        let mut cfg = Self::with_fault_rate(rate, seed);
        if let Some(r) = eda_exec::parse_knob_in::<u32>(MAX_RETRIES_ENV, 0, 16)? {
            cfg.policy.max_retries = r;
        }
        Ok(cfg)
    }
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Typed failure of a fully-retried request.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// Every attempt in the retry budget failed.
    RetriesExhausted { attempts: u32, last: TransportError },
    /// The per-request virtual-time budget ran out mid-retry.
    DeadlineExceeded { spent_s: f64 },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "retries exhausted after {attempts} attempts (last: {last})")
            }
            ClientError::DeadlineExceeded { spent_s } => {
                write!(f, "request deadline exceeded after {spent_s:.1}s virtual")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Serializable counter snapshot of one client's traffic. All counters
/// are sums of per-request pure outcomes, so they are identical across
/// engine thread counts and reruns.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct LlmReport {
    /// Requests issued through the client.
    pub requests: u64,
    /// Retry attempts (beyond each request's first attempt).
    pub retries: u64,
    /// Hedged duplicates issued on latency spikes.
    pub hedges: u64,
    /// Hedges that finished first (the original was canceled).
    pub hedge_wins: u64,
    /// Requests whose whole retry budget failed.
    pub exhausted: u64,
    /// Completions served by the cheaper fallback tier.
    pub fallback_completions: u64,
    /// True when any completion was served degraded.
    pub degraded: bool,
    /// Injected-fault counters from the transport.
    pub faults: FaultStats,
    /// Total virtual time billed (latency + backoff + error waits).
    pub virtual_time_us: u64,
    /// Completions served from the persistent store (no transport I/O).
    pub store_hits: u64,
    /// Raw transport sends (attempts + hedges); shrinks on warm runs.
    pub transport_sends: u64,
}

impl LlmReport {
    /// Adds `other`'s counters into `self`. This is the one shared
    /// aggregation helper for everything that sums LLM traffic across
    /// runs, flows, or jobs (benches, serve reports): counters add,
    /// fault classes add, and `degraded` is sticky (true if either side
    /// ever degraded).
    pub fn merge(&mut self, other: &LlmReport) {
        self.requests += other.requests;
        self.retries += other.retries;
        self.hedges += other.hedges;
        self.hedge_wins += other.hedge_wins;
        self.exhausted += other.exhausted;
        self.fallback_completions += other.fallback_completions;
        self.degraded |= other.degraded;
        self.faults.merge(&other.faults);
        self.virtual_time_us += other.virtual_time_us;
        self.store_hits += other.store_hits;
        self.transport_sends += other.transport_sends;
    }

    /// Fold of [`merge`](Self::merge) over any iterator of reports.
    pub fn merged<'a, I: IntoIterator<Item = &'a LlmReport>>(reports: I) -> LlmReport {
        let mut total = LlmReport::default();
        for r in reports {
            total.merge(r);
        }
        total
    }
}

/// The resilient LLM client: a [`Transport`] stack plus retry state.
/// Implements [`ChatModel`], so flows use it as a drop-in; a request
/// that fails its whole budget surfaces as an `// llm-transport-error`
/// comment completion (which every evaluator scores as garbage) while
/// [`ResilientClient::try_complete`] exposes the typed error.
pub struct ResilientClient<'a> {
    primary: Box<dyn Transport + 'a>,
    fallback: Option<Box<dyn Transport + 'a>>,
    policy: RetryPolicy,
    clock: SharedClock,
    name: String,
    requests: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    exhausted: AtomicU64,
    fallback_completions: AtomicU64,
    store_hits: AtomicU64,
    transport_sends: AtomicU64,
    /// Persistent completion store: `(backing, llm engine version)`.
    backing: Option<(Arc<dyn KvBacking>, u64)>,
}

impl<'a> ResilientClient<'a> {
    /// Builds the standard stack for `model`: a [`FaultyTransport`] when
    /// faults are configured (plus a fault-free cheaper-tier fallback),
    /// or the bare [`DirectTransport`] when they are not. When a
    /// persistent store is installed ([`eda_exec::backing::install`]),
    /// completions are served from and written through to it, keyed on
    /// `(model, prompt, temperature, sample index)` and versioned by
    /// this crate's content hash.
    ///
    /// # Panics
    ///
    /// On a malformed `EDA_STORE_ENABLE` value.
    pub fn new(model: &'a dyn ChatModel, cfg: &ResilienceConfig) -> Self {
        let name = model.name().to_string();
        let primary: Box<dyn Transport + 'a> = if cfg.faults.any() {
            Box::new(FaultyTransport::new(DirectTransport::new(model), cfg.faults.clone()))
        } else {
            Box::new(DirectTransport::new(model))
        };
        let fallback: Option<Box<dyn Transport + 'a>> = (cfg.fallback && cfg.faults.any())
            .then(|| {
                let spec = ModelSpec::cheaper_tier(&name);
                Box::new(DirectTransport::new(SimulatedLlm::new(spec))) as Box<dyn Transport + 'a>
            });
        let mut client = Self::from_parts(&name, primary, fallback, cfg.policy.clone());
        eda_store::ensure_env_install();
        client.backing = backing::installed().map(|kv| (kv, crate::content_hash()));
        client
    }

    /// Fault-free direct client (identical outputs to the bare model).
    pub fn direct(model: &'a dyn ChatModel) -> Self {
        Self::new(model, &ResilienceConfig::off())
    }

    /// Assembles a client from explicit transports (tests, custom stacks).
    pub fn from_parts(
        name: &str,
        primary: Box<dyn Transport + 'a>,
        fallback: Option<Box<dyn Transport + 'a>>,
        policy: RetryPolicy,
    ) -> Self {
        ResilientClient {
            primary,
            fallback,
            policy,
            clock: SharedClock::new(),
            name: name.to_string(),
            requests: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            exhausted: AtomicU64::new(0),
            fallback_completions: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            transport_sends: AtomicU64::new(0),
            backing: None,
        }
    }

    /// Layers an explicit persistent store under this client (tests,
    /// benches): completions are loaded from and written through to
    /// `kv`'s completion namespace at engine `version`.
    pub fn with_backing(mut self, kv: Arc<dyn KvBacking>, version: u64) -> Self {
        self.backing = Some((kv, version));
        self
    }

    /// The virtual clock accumulating this client's waits.
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Counter snapshot for flow reports.
    pub fn report(&self) -> LlmReport {
        let fallback_completions = self.fallback_completions.load(Ordering::Relaxed);
        LlmReport {
            requests: self.requests.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            exhausted: self.exhausted.load(Ordering::Relaxed),
            fallback_completions,
            degraded: fallback_completions > 0,
            faults: self.primary.fault_stats(),
            virtual_time_us: self.clock.micros(),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            transport_sends: self.transport_sends.load(Ordering::Relaxed),
        }
    }

    /// Completes `request` with retries, backoff, hedging, and
    /// degradation, billing every wait to the virtual clock.
    ///
    /// # Errors
    ///
    /// [`ClientError::RetriesExhausted`] when every attempt fails, or
    /// [`ClientError::DeadlineExceeded`] when the per-request virtual
    /// budget runs out first.
    pub fn try_complete(&self, request: &ChatRequest) -> Result<ChatResponse, ClientError> {
        self.run_costed(request).0
    }

    /// Infallible completion that also returns the request's virtual
    /// cost in microseconds (latency + backoff + error waits). This is
    /// the seam job-level billing layers on (see `crate::coalesce`): the
    /// cost of a request is a pure function of `(config, request)`, so a
    /// caller can bill it to its own clock. Failures surface as the same
    /// `// llm-transport-error` comment completion as
    /// [`ChatModel::complete`], still carrying their full cost.
    pub fn complete_costed(&self, request: &ChatRequest) -> (ChatResponse, u64) {
        let (result, spent_us) = self.run_costed(request);
        let resp = result
            .unwrap_or_else(|e| ChatResponse { text: format!("// llm-transport-error: {e}\n") });
        (resp, spent_us)
    }

    /// The retry loop proper: returns the outcome plus the virtual
    /// microseconds spent, after billing them to the client clock.
    fn run_costed(&self, request: &ChatRequest) -> (Result<ChatResponse, ClientError>, u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        // Persistent fast path: an intact stored completion is served
        // with its original virtual cost billed identically, so warm
        // runs stay bit-identical to cold ones (including the clock)
        // while skipping the transport entirely.
        let store_key = self.backing.as_ref().map(|_| completion_key(&self.name, request));
        if let (Some((kv, version)), Some(key)) = (&self.backing, store_key) {
            if let Some((cost_us, text)) =
                kv.load(NS_COMPLETION, *version, key).as_deref().and_then(decode_completion)
            {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                self.clock.advance_us(cost_us);
                return (Ok(ChatResponse { text }), cost_us);
            }
        }
        let req_hash = hash_request(request);
        let deadline_us = s_to_us(self.policy.request_deadline_s);
        let attempts = self.policy.max_retries + 1;
        let mut spent_us: u64 = 0;
        let mut consecutive_failures = 0u32;
        let mut last_err: Option<TransportError> = None;

        for attempt in 0..attempts {
            if attempt > 0 {
                self.retries.fetch_add(1, Ordering::Relaxed);
                spent_us += self.policy.backoff_us(req_hash, attempt - 1);
            }
            if spent_us > deadline_us {
                self.clock.advance_us(spent_us);
                self.exhausted.fetch_add(1, Ordering::Relaxed);
                return (
                    Err(ClientError::DeadlineExceeded { spent_s: spent_us as f64 / 1e6 }),
                    spent_us,
                );
            }
            // Degradation: after `degrade_after` consecutive failures of
            // THIS request, its remaining attempts go to the cheaper
            // tier. The next request starts on the primary again
            // (recovery) — per-request state keeps the whole client a
            // pure function of its inputs.
            let degraded =
                consecutive_failures >= self.policy.degrade_after && self.fallback.is_some();
            let transport: &dyn Transport = if degraded {
                self.fallback.as_deref().expect("degraded implies fallback")
            } else {
                self.primary.as_ref()
            };
            self.transport_sends.fetch_add(1, Ordering::Relaxed);
            match transport.send(request, attempt) {
                Ok(reply) => {
                    let (latency_us, text) = self.maybe_hedge(transport, request, attempt, reply);
                    spent_us += latency_us;
                    if degraded {
                        self.fallback_completions.fetch_add(1, Ordering::Relaxed);
                    }
                    // Write through the completion with its full cost
                    // (backoffs included) so a warm hit bills the same
                    // virtual time this cold completion did. Failures
                    // are never stored.
                    if let (Some((kv, version)), Some(key)) = (&self.backing, store_key) {
                        kv.store(NS_COMPLETION, *version, key, &encode_completion(spent_us, &text));
                    }
                    self.clock.advance_us(spent_us);
                    return (Ok(ChatResponse { text }), spent_us);
                }
                Err(e) => {
                    spent_us += s_to_us(e.cost_s());
                    consecutive_failures += 1;
                    last_err = Some(e);
                }
            }
        }
        self.clock.advance_us(spent_us);
        self.exhausted.fetch_add(1, Ordering::Relaxed);
        (
            Err(ClientError::RetriesExhausted {
                attempts,
                last: last_err.expect("exhaustion implies at least one error"),
            }),
            spent_us,
        )
    }

    /// Hedging: when an attempt's latency exceeds `hedge_after_s`, fire
    /// a salted duplicate and keep whichever copy finishes first — the
    /// loser is canceled (its text is dropped and its remaining latency
    /// is never billed).
    fn maybe_hedge(
        &self,
        transport: &dyn Transport,
        request: &ChatRequest,
        attempt: u32,
        reply: Reply,
    ) -> (u64, String) {
        let Some(hedge_after_s) = self.policy.hedge_after_s else {
            return (reply.latency_us, reply.text);
        };
        let hedge_at_us = s_to_us(hedge_after_s);
        if reply.latency_us <= hedge_at_us {
            return (reply.latency_us, reply.text);
        }
        self.hedges.fetch_add(1, Ordering::Relaxed);
        self.transport_sends.fetch_add(1, Ordering::Relaxed);
        match transport.send(request, attempt | HEDGE_ATTEMPT_SALT) {
            Ok(hedge) => {
                // The hedge starts hedge_at_us in; it wins if it still
                // finishes before the original.
                let hedge_done_us = hedge_at_us + hedge.latency_us;
                if hedge_done_us < reply.latency_us {
                    self.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    (hedge_done_us, hedge.text)
                } else {
                    (reply.latency_us, reply.text)
                }
            }
            // A failed hedge is just a canceled hedge: the original
            // (already successful) reply stands.
            Err(_) => (reply.latency_us, reply.text),
        }
    }
}

impl ChatModel for ResilientClient<'_> {
    /// Always the primary model's name, even for degraded completions,
    /// so reports pin the tier the run was configured with.
    fn name(&self) -> &str {
        &self.name
    }

    fn complete(&self, request: &ChatRequest) -> ChatResponse {
        match self.try_complete(request) {
            Ok(resp) => resp,
            Err(e) => ChatResponse { text: format!("// llm-transport-error: {e}\n") },
        }
    }
}

/// Persistent-store key for a completion. Unlike [`hash_request`] (a
/// per-client jitter/coalescing key) it folds in the *model name*: the
/// store outlives the process and is shared across flows, so two models
/// given the same prompt must never collide.
pub fn completion_key(model: &str, request: &ChatRequest) -> u64 {
    EvalKey::new()
        .text(model)
        .text(&request.prompt)
        .word(request.temperature.to_bits())
        .word(request.sample_index as u64)
        .finish()
}

/// Stored completion payload: 8-byte LE virtual cost, then UTF-8 text.
fn encode_completion(cost_us: u64, text: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + text.len());
    out.extend_from_slice(&cost_us.to_le_bytes());
    out.extend_from_slice(text.as_bytes());
    out
}

fn decode_completion(bytes: &[u8]) -> Option<(u64, String)> {
    let cost = u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?);
    let text = std::str::from_utf8(&bytes[8..]).ok()?;
    Some((cost, text.to_string()))
}

/// FNV-1a over the request identity (jitter seed material; also the
/// coalescing key — see `crate::coalesce`).
pub(crate) fn hash_request(request: &ChatRequest) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for b in request.prompt.bytes() {
        mix(b as u64);
    }
    mix(request.temperature.to_bits());
    mix(request.sample_index as u64);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::BASE_LATENCY_US;

    fn req(prompt: &str, idx: u32) -> ChatRequest {
        ChatRequest { prompt: prompt.into(), temperature: 0.3, sample_index: idx }
    }

    fn no_jitter_policy() -> RetryPolicy {
        RetryPolicy { jitter: 0.0, hedge_after_s: None, ..RetryPolicy::default() }
    }

    /// Fails the first `fails` attempts of every request, then succeeds.
    struct FailN {
        fails: u32,
        err: TransportError,
        calls: AtomicU64,
    }

    impl Transport for FailN {
        fn name(&self) -> &str {
            "mock-fail-n"
        }
        fn send(&self, _r: &ChatRequest, attempt: u32) -> Result<Reply, TransportError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            if attempt < self.fails {
                Err(self.err.clone())
            } else {
                Ok(Reply { text: "primary-ok".into(), latency_us: BASE_LATENCY_US })
            }
        }
    }

    fn fail_n(fails: u32, err: TransportError) -> FailN {
        FailN { fails, err, calls: AtomicU64::new(0) }
    }

    /// Always succeeds with a fixed text/latency.
    struct AlwaysOk {
        text: &'static str,
        latency_us: u64,
        calls: AtomicU64,
    }

    impl Transport for AlwaysOk {
        fn name(&self) -> &str {
            "mock-ok"
        }
        fn send(&self, _r: &ChatRequest, _attempt: u32) -> Result<Reply, TransportError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(Reply { text: self.text.into(), latency_us: self.latency_us })
        }
    }

    /// Slow original, fast hedge.
    struct SlowThenHedge {
        slow_us: u64,
        hedge_us: u64,
    }

    impl Transport for SlowThenHedge {
        fn name(&self) -> &str {
            "mock-hedge"
        }
        fn send(&self, _r: &ChatRequest, attempt: u32) -> Result<Reply, TransportError> {
            if attempt & HEDGE_ATTEMPT_SALT != 0 {
                Ok(Reply { text: "hedge-text".into(), latency_us: self.hedge_us })
            } else {
                Ok(Reply { text: "slow-text".into(), latency_us: self.slow_us })
            }
        }
    }

    #[test]
    fn backoff_schedule_is_pinned() {
        let p = no_jitter_policy();
        let got: Vec<u64> = (0..6).map(|k| p.backoff_us(0xdead, k)).collect();
        assert_eq!(
            got,
            vec![500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 8_000_000],
            "0.5s doubling capped at 8s"
        );
    }

    #[test]
    fn jittered_backoff_is_bounded_and_deterministic() {
        let p = RetryPolicy { jitter: 0.2, ..no_jitter_policy() };
        for k in 0..5u32 {
            let a = p.backoff_us(77, k);
            let b = p.backoff_us(77, k);
            assert_eq!(a, b, "jitter must be deterministic");
            let nominal = no_jitter_policy().backoff_us(77, k) as f64;
            assert!((a as f64) >= nominal * 0.8 - 1.0 && (a as f64) <= nominal * 1.2 + 1.0);
        }
        // Different requests spread their retries (thundering-herd guard).
        let spread: std::collections::HashSet<u64> =
            (0..32u64).map(|h| p.backoff_us(h, 0)).collect();
        assert!(spread.len() > 16, "jitter must actually vary: {}", spread.len());
    }

    #[test]
    fn virtual_clock_schedule_is_exact() {
        // Two rate-limit failures (1.0s advertised wait each), then
        // success: 1.0 + backoff(0.5) + 1.0 + backoff(1.0) + 0.8 = 4.3s.
        let t = fail_n(2, TransportError::RateLimited { retry_after_s: 1.0 });
        let client =
            ResilientClient::from_parts("pin", Box::new(t), None, no_jitter_policy());
        let resp = client.try_complete(&req("p", 0)).unwrap();
        assert_eq!(resp.text, "primary-ok");
        assert_eq!(client.clock().micros(), 4_300_000);
        let r = client.report();
        assert_eq!((r.requests, r.retries, r.exhausted), (1, 2, 0));
    }

    #[test]
    fn retry_budget_exhaustion_returns_typed_error() {
        let t = fail_n(u32::MAX, TransportError::Server { code: 503 });
        let client =
            ResilientClient::from_parts("exhaust", Box::new(t), None, no_jitter_policy());
        let err = client.try_complete(&req("p", 1)).unwrap_err();
        assert_eq!(
            err,
            ClientError::RetriesExhausted {
                attempts: 5,
                last: TransportError::Server { code: 503 },
            }
        );
        let r = client.report();
        assert_eq!((r.requests, r.retries, r.exhausted), (1, 4, 1));
        // The infallible ChatModel surface turns it into a comment
        // completion every evaluator scores as garbage.
        let text = client.complete(&req("p", 2)).text;
        assert!(text.starts_with("// llm-transport-error:"), "{text}");
    }

    #[test]
    fn deadline_exceeded_is_typed() {
        let t = fail_n(u32::MAX, TransportError::Timeout { waited_s: 10.0 });
        let policy = RetryPolicy {
            max_retries: 10,
            request_deadline_s: 15.0,
            ..no_jitter_policy()
        };
        let client = ResilientClient::from_parts("deadline", Box::new(t), None, policy);
        match client.try_complete(&req("p", 0)) {
            Err(ClientError::DeadlineExceeded { spent_s }) => {
                assert!(spent_s > 15.0, "{spent_s}")
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert_eq!(client.report().exhausted, 1);
    }

    #[test]
    fn degradation_triggers_at_exactly_n_failures_and_recovers() {
        let primary = fail_n(u32::MAX, TransportError::Timeout { waited_s: 10.0 });
        let fallback = AlwaysOk { text: "fallback-text", latency_us: 400_000, calls: AtomicU64::new(0) };
        let policy = RetryPolicy { degrade_after: 2, ..no_jitter_policy() };
        let client = ResilientClient::from_parts(
            "degrade",
            Box::new(primary),
            Some(Box::new(fallback)),
            policy,
        );
        let resp = client.complete(&req("a", 0));
        assert_eq!(resp.text, "fallback-text");
        let r = client.report();
        // Attempts 0 and 1 hit the (failing) primary; attempt 2 — after
        // exactly two consecutive failures — is served degraded.
        assert_eq!((r.retries, r.fallback_completions), (2, 1));
        assert!(r.degraded);

        // Recovery: the next request starts on the primary tier again.
        let _ = client.complete(&req("b", 1));
        let r2 = client.report();
        assert_eq!(r2.fallback_completions, 2);
        assert_eq!(r2.retries, 4, "second request retried the primary twice again");
    }

    #[test]
    fn hedging_cancels_the_loser() {
        // Original takes 5s; hedge fires at 2.5s and takes 0.5s more →
        // hedge wins at 3.0s, the original is canceled.
        let policy = RetryPolicy { hedge_after_s: Some(2.5), ..RetryPolicy::default() };
        let client = ResilientClient::from_parts(
            "hedge-win",
            Box::new(SlowThenHedge { slow_us: 5_000_000, hedge_us: 500_000 }),
            None,
            policy.clone(),
        );
        let resp = client.try_complete(&req("h", 0)).unwrap();
        assert_eq!(resp.text, "hedge-text");
        assert_eq!(client.clock().micros(), 3_000_000);
        let r = client.report();
        assert_eq!((r.hedges, r.hedge_wins), (1, 1));

        // Slow hedge loses: the original's reply and latency stand.
        let client2 = ResilientClient::from_parts(
            "hedge-lose",
            Box::new(SlowThenHedge { slow_us: 5_000_000, hedge_us: 4_000_000 }),
            None,
            policy,
        );
        let resp2 = client2.try_complete(&req("h", 0)).unwrap();
        assert_eq!(resp2.text, "slow-text");
        assert_eq!(client2.clock().micros(), 5_000_000);
        let r2 = client2.report();
        assert_eq!((r2.hedges, r2.hedge_wins), (1, 0));
    }

    #[test]
    fn zero_fault_client_is_byte_identical_to_the_model() {
        let model = SimulatedLlm::new(ModelSpec::ultra());
        let client = ResilientClient::new(&model, &ResilienceConfig::off());
        assert_eq!(client.name(), model.name());
        for i in 0..5u32 {
            let r = crate::prompts::task_header("verilog-design", &[("problem", "mux2")]);
            let request = ChatRequest { prompt: r, temperature: 0.6, sample_index: i };
            assert_eq!(client.complete(&request), model.complete(&request));
        }
        let rep = client.report();
        assert_eq!(rep.retries, 0);
        assert_eq!(rep.faults.total(), 0);
        assert!(!rep.degraded);
        assert_eq!(rep.virtual_time_us, rep.requests * BASE_LATENCY_US);
    }

    #[test]
    fn faulty_stack_converges_and_counts() {
        let model = SimulatedLlm::new(ModelSpec::pro());
        let cfg = ResilienceConfig::with_fault_rate(0.5, 99);
        let client = ResilientClient::new(&model, &cfg);
        for i in 0..60u32 {
            let text = client.complete(&req(&format!("probe {i}"), i)).text;
            assert!(!text.is_empty() || text.is_empty()); // no panics, always a response
        }
        let r = client.report();
        assert_eq!(r.requests, 60);
        assert!(r.retries > 0, "{r:?}");
        assert!(r.faults.total() > 0, "{r:?}");
        assert!(r.virtual_time_us > 60 * BASE_LATENCY_US, "{r:?}");
    }

    #[test]
    fn cheaper_tier_ladder() {
        assert_eq!(ModelSpec::cheaper_tier("sim-ultra-4o").name, "sim-pro-4");
        assert_eq!(ModelSpec::cheaper_tier("sim-pro-4").name, "sim-coder-34b");
        assert_eq!(ModelSpec::cheaper_tier("sim-coder-34b").name, "sim-basic-3.5");
        assert_eq!(ModelSpec::cheaper_tier("sim-cl34b-ft").name, "sim-cl34b-raw");
        assert_eq!(ModelSpec::cheaper_tier("anything-else").name, "sim-basic-3.5");
    }

    /// In-memory [`KvBacking`] for store-path tests.
    #[derive(Default)]
    struct MemBacking {
        map: std::sync::Mutex<std::collections::HashMap<(u8, u64, u64), Vec<u8>>>,
    }

    impl KvBacking for MemBacking {
        fn load(&self, ns: u8, version: u64, key: u64) -> Option<Vec<u8>> {
            self.map.lock().unwrap().get(&(ns, version, key)).cloned()
        }
        fn store(&self, ns: u8, version: u64, key: u64, bytes: &[u8]) {
            self.map.lock().unwrap().insert((ns, version, key), bytes.to_vec());
        }
        fn stats(&self) -> backing::StoreStats {
            backing::StoreStats::default()
        }
    }

    #[test]
    fn store_hit_skips_transport_and_bills_identical_cost() {
        let kv = Arc::new(MemBacking::default());
        let t = AlwaysOk { text: "stored-me", latency_us: 800_000, calls: AtomicU64::new(0) };
        let client = ResilientClient::from_parts("m", Box::new(t), None, no_jitter_policy())
            .with_backing(kv.clone(), 1);
        let (cold, cold_cost) = client.complete_costed(&req("p", 0));
        let (warm, warm_cost) = client.complete_costed(&req("p", 0));
        assert_eq!(cold, warm, "warm completion must be byte-identical");
        assert_eq!(cold_cost, warm_cost, "warm hit bills the original cost");
        let r = client.report();
        assert_eq!((r.requests, r.store_hits, r.transport_sends), (2, 1, 1));
        assert_eq!(r.virtual_time_us, cold_cost * 2);

        // A second client (fresh process) over the same store is warm
        // from its first request.
        let t2 = AlwaysOk { text: "never-seen", latency_us: 1, calls: AtomicU64::new(0) };
        let client2 = ResilientClient::from_parts("m", Box::new(t2), None, no_jitter_policy())
            .with_backing(kv.clone(), 1);
        assert_eq!(client2.complete(&req("p", 0)).text, "stored-me");
        assert_eq!(client2.report().transport_sends, 0);

        // A different model name must not collide on the same prompt.
        let t3 = AlwaysOk { text: "other-model", latency_us: 1, calls: AtomicU64::new(0) };
        let client3 = ResilientClient::from_parts("m2", Box::new(t3), None, no_jitter_policy())
            .with_backing(kv.clone(), 1);
        assert_eq!(client3.complete(&req("p", 0)).text, "other-model");

        // An engine-version bump makes the store cold again.
        let t4 = AlwaysOk { text: "new-engine", latency_us: 1, calls: AtomicU64::new(0) };
        let client4 = ResilientClient::from_parts("m", Box::new(t4), None, no_jitter_policy())
            .with_backing(kv, 2);
        assert_eq!(client4.complete(&req("p", 0)).text, "new-engine");
    }

    #[test]
    fn failures_are_never_stored() {
        let kv = Arc::new(MemBacking::default());
        let t = fail_n(u32::MAX, TransportError::Server { code: 500 });
        let client = ResilientClient::from_parts("f", Box::new(t), None, no_jitter_policy())
            .with_backing(kv.clone(), 1);
        assert!(client.try_complete(&req("p", 0)).is_err());
        assert!(kv.map.lock().unwrap().is_empty(), "exhausted requests must not be cached");
        let r = client.report();
        assert_eq!((r.store_hits, r.transport_sends), (0, 5));
        // The request succeeds later (transient outage over) and only
        // then is it stored.
        let t2 = fail_n(0, TransportError::Server { code: 500 });
        let client2 = ResilientClient::from_parts("f", Box::new(t2), None, no_jitter_policy())
            .with_backing(kv.clone(), 1);
        assert_eq!(client2.complete(&req("p", 0)).text, "primary-ok");
        assert_eq!(kv.map.lock().unwrap().len(), 1);
    }

    #[test]
    fn completion_payload_roundtrips() {
        let enc = encode_completion(123_456, "text π ✓");
        assert_eq!(decode_completion(&enc), Some((123_456, "text π ✓".to_string())));
        assert_eq!(decode_completion(&enc[..4]), None, "short payloads are rejected");
        // Key folds the model name in (unlike hash_request).
        let r = req("same", 0);
        assert_ne!(completion_key("a", &r), completion_key("b", &r));
        assert_eq!(completion_key("a", &r), completion_key("a", &r));
    }

    #[test]
    fn env_parsing_mirrors_exec_threads() {
        std::env::set_var(FAULT_RATE_ENV, "0.25");
        std::env::set_var(MAX_RETRIES_ENV, "7");
        std::env::set_var(FAULT_SEED_ENV, "123");
        let cfg = ResilienceConfig::from_env();
        std::env::remove_var(FAULT_RATE_ENV);
        std::env::remove_var(MAX_RETRIES_ENV);
        std::env::remove_var(FAULT_SEED_ENV);
        assert!((cfg.faults.timeout_p - 0.0625).abs() < 1e-12);
        assert_eq!(cfg.policy.max_retries, 7);
        assert_eq!(cfg.faults.seed, 123);
        // Unset -> fault-free direct path.
        let off = ResilienceConfig::from_env();
        assert!(!off.faults.any());
        assert_eq!(off.policy.max_retries, RetryPolicy::default().max_retries);
    }
}
