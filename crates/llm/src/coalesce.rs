//! Cross-job request coalescing and per-job virtual billing.
//!
//! A serving layer runs many flows concurrently against one model, and
//! real traffic is duplicate-heavy: retried jobs, template prompts, and
//! fan-outs of the same problem issue byte-identical requests. This
//! module adds the request-level cache the serve scheduler layers over
//! PR 2's [`ResilientClient`]:
//!
//! * [`CoalescingLlm`] — one shared client per serve run. Identical
//!   `(model, prompt, temperature, sample_index)` requests share a
//!   single transport-level call; later copies are served from the
//!   coalescing cache. The unique computation runs *under the shard
//!   lock*, so exactly one transport call ever happens per key and the
//!   transport-level fault/retry counters are independent of which job
//!   got there first.
//! * [`JobHandle`] — the per-job [`ChatModel`] facade. Every request
//!   (coalesced or not) bills its full pure virtual cost to the job's
//!   own [`SharedClock`], so a job's duration is a function of its own
//!   request stream only — never of what other jobs happen to have
//!   cached. Coalescing saves transport calls, not virtual time; that
//!   is what keeps a whole serve trace bit-identical across engine
//!   thread counts. The handle also enforces the job's deadline: once
//!   the billed clock passes it, the job's [`CancelToken`] fires and
//!   further completions return a zero-cost `// llm-cancelled` stub, so
//!   deadline overshoot is bounded by one request's worst-case cost.
//!
//! Coalescing correctness rests on the same purity argument as fault
//! injection: a completion is a pure function of the request, so the
//! cached text is byte-identical to what the uncoalesced call would
//! have returned (a property test in `tests/serve.rs` pins this).

use crate::resilient::{hash_request, LlmReport, ResilienceConfig, ResilientClient};
use crate::{ChatModel, ChatRequest, ChatResponse};
use eda_exec::{CancelToken, SharedClock};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Completion text returned (at zero cost) once a job's deadline has
/// fired; evaluators score it as garbage, like a transport error.
pub const CANCELLED_COMPLETION: &str = "// llm-cancelled: job deadline reached\n";

const COALESCE_SHARDS: usize = 16;

/// Counter snapshot of one [`CoalescingLlm`]'s coalescing activity. All
/// quantities are order-independent (distinct keys and totals), so they
/// serialize identically across engine thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct CoalesceReport {
    /// Whether coalescing was enabled.
    pub enabled: bool,
    /// Requests routed through the layer.
    pub lookups: u64,
    /// Distinct requests that reached the transport stack.
    pub unique: u64,
    /// Requests served from the coalescing cache (`lookups - unique`
    /// when enabled; zero when disabled).
    pub hits: u64,
}

impl CoalesceReport {
    /// Fraction of lookups served without a transport-level call.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Accumulates another layer's counters (per-shard reports folding
    /// into a cluster-wide view). `enabled` ORs: the merged report says
    /// whether *any* contributing layer coalesced.
    pub fn merge(&mut self, other: &CoalesceReport) {
        self.enabled |= other.enabled;
        self.lookups += other.lookups;
        self.unique += other.unique;
        self.hits += other.hits;
    }
}

#[derive(Clone)]
struct CachedReply {
    text: String,
    cost_us: u64,
}

/// Counter snapshot of one [`SharedTier`]. Like [`CoalesceReport`], all
/// quantities are order-independent totals, so a cluster report
/// embedding one serializes identically at any host thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct TierReport {
    /// Requests that missed their local (per-shard) layer and reached
    /// the tier.
    pub lookups: u64,
    /// Distinct requests the tier computed through its own client.
    pub unique: u64,
    /// Requests served from the tier's cache — cross-shard duplicates
    /// the sharded layers above could not see.
    pub hits: u64,
}

/// A cluster-wide completion tier: the "shared store" arm of the
/// cache-topology knob. Several per-shard [`CoalescingLlm`]s (built with
/// [`CoalescingLlm::over_tier`]) sit above one tier; a request that
/// misses its shard's own cache falls through here, where the unique
/// computation runs under a per-key shard lock against the tier's
/// single [`ResilientClient`]. Exactly one transport call happens per
/// distinct request *cluster-wide*, and — because concurrent same-key
/// callers from different shards serialize on the key lock before
/// touching the client — every transport/fault/retry counter is a pure
/// function of the distinct-request set, independent of which shard got
/// there first. Tier hits return the cached text *and cached cost*, so
/// job billing stays topology-invariant.
pub struct SharedTier<'a> {
    client: ResilientClient<'a>,
    shards: Vec<Mutex<HashMap<u64, CachedReply>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
}

impl<'a> SharedTier<'a> {
    /// Builds the tier over `model` with the given resilience config.
    /// The tier's client uses the process-global persistent store when
    /// one is installed, exactly like a serve run's shared client.
    pub fn new(model: &'a dyn ChatModel, cfg: &ResilienceConfig) -> Self {
        Self::from_client(ResilientClient::new(model, cfg))
    }

    /// Builds the tier over an explicitly constructed client (callers
    /// that need `with_backing` or other client customization).
    pub fn from_client(client: ResilientClient<'a>) -> Self {
        SharedTier {
            client,
            shards: (0..COALESCE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The model name the tier was built over.
    pub fn name(&self) -> &str {
        self.client.name()
    }

    /// Completes `request` through the tier cache: the unique
    /// computation runs under the key's shard lock; hits are billed the
    /// cached cost.
    pub fn complete_costed(&self, request: &ChatRequest) -> (ChatResponse, u64) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key = hash_request(request);
        let shard = &self.shards[(key as usize) % COALESCE_SHARDS];
        let mut map = shard.lock();
        if let Some(cached) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (ChatResponse { text: cached.text.clone() }, cached.cost_us);
        }
        let (resp, cost_us) = self.client.complete_costed(request);
        map.insert(key, CachedReply { text: resp.text.clone(), cost_us });
        (resp, cost_us)
    }

    /// Tier-level dedup counters.
    pub fn report(&self) -> TierReport {
        let lookups = self.lookups.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        TierReport { lookups, unique: lookups - hits, hits }
    }

    /// Transport-level traffic of the tier's client (cluster-unique
    /// calls only).
    pub fn llm_report(&self) -> LlmReport {
        self.client.report()
    }
}

/// What a [`CoalescingLlm`] completes through on a cache miss: its own
/// private client (the single-node serve stack), or a cluster-shared
/// [`SharedTier`].
enum Lower<'a> {
    Client(Box<ResilientClient<'a>>),
    Tier(&'a SharedTier<'a>),
}

/// A [`ResilientClient`] shared by many jobs, with cross-job request
/// coalescing. Create one per serve run; mint one [`JobHandle`] per job
/// with [`CoalescingLlm::handle`].
pub struct CoalescingLlm<'a> {
    lower: Lower<'a>,
    enabled: bool,
    shards: Vec<Mutex<HashMap<u64, CachedReply>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
}

impl<'a> CoalescingLlm<'a> {
    /// Builds the shared stack over `model` with the given resilience
    /// configuration. `enabled: false` keeps the layer as a transparent
    /// pass-through (every request reaches the transport), which is the
    /// baseline the `exp_serve` bench compares against.
    pub fn new(model: &'a dyn ChatModel, cfg: &ResilienceConfig, enabled: bool) -> Self {
        Self::from_client(ResilientClient::new(model, cfg), enabled)
    }

    /// [`CoalescingLlm::new`] over an explicitly constructed client
    /// (callers that need `with_backing` — e.g. a cluster shard with a
    /// shard-salted store version).
    pub fn from_client(client: ResilientClient<'a>, enabled: bool) -> Self {
        CoalescingLlm {
            lower: Lower::Client(Box::new(client)),
            enabled,
            shards: (0..COALESCE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// Builds a per-shard coalescing layer over a cluster-shared
    /// [`SharedTier`] instead of a private client: local (same-shard)
    /// duplicates are served here; misses fall through to the tier,
    /// which dedups cross-shard duplicates against its single client.
    pub fn over_tier(tier: &'a SharedTier<'a>, enabled: bool) -> Self {
        CoalescingLlm {
            lower: Lower::Tier(tier),
            enabled,
            shards: (0..COALESCE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The model name the stack was built over.
    pub fn name(&self) -> &str {
        match &self.lower {
            Lower::Client(c) => c.name(),
            Lower::Tier(t) => t.name(),
        }
    }

    /// Completes `request`, returning the response plus its full pure
    /// virtual cost in microseconds. A coalesced hit returns the cached
    /// text *and the cached cost* — the caller is billed as if it had
    /// made the call itself, so job durations never depend on cache
    /// warm-up order.
    pub fn complete_costed(&self, request: &ChatRequest) -> (ChatResponse, u64) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let (resp, cost_us) = self.complete_costed_inner(request);
        // Observability: one histogram sample per *lookup*, with the
        // billed cost. Hits bill the cached cost — identical to what
        // the miss would have billed — so the distribution is invariant
        // under coalescing on/off (join totals live in CoalesceReport,
        // which deliberately stays out of the obs exports).
        eda_obs::counter_add("llm.lookups", String::new, 1);
        eda_obs::observe_us("llm.request_us", String::new, cost_us);
        (resp, cost_us)
    }

    fn lower_complete(&self, request: &ChatRequest) -> (ChatResponse, u64) {
        match &self.lower {
            Lower::Client(c) => c.complete_costed(request),
            Lower::Tier(t) => t.complete_costed(request),
        }
    }

    fn complete_costed_inner(&self, request: &ChatRequest) -> (ChatResponse, u64) {
        if !self.enabled {
            return self.lower_complete(request);
        }
        let key = hash_request(request);
        let shard = &self.shards[(key as usize) % COALESCE_SHARDS];
        // The unique computation runs under the shard lock: concurrent
        // jobs asking for the same key block here and then hit the
        // cache, so the layer below sees exactly one call per key.
        let mut map = shard.lock();
        if let Some(cached) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (ChatResponse { text: cached.text.clone() }, cached.cost_us);
        }
        let (resp, cost_us) = self.lower_complete(request);
        map.insert(key, CachedReply { text: resp.text.clone(), cost_us });
        (resp, cost_us)
    }

    /// Coalescing counters.
    pub fn report(&self) -> CoalesceReport {
        let lookups = self.lookups.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        CoalesceReport { enabled: self.enabled, lookups, unique: lookups - hits, hits }
    }

    /// Transport-level traffic counters of the shared client (unique
    /// calls only — coalesced hits never reach it). A layer built
    /// [`CoalescingLlm::over_tier`] owns no client: it reports zeros,
    /// and the tier's [`SharedTier::llm_report`] carries the transport
    /// traffic instead.
    pub fn llm_report(&self) -> LlmReport {
        match &self.lower {
            Lower::Client(c) => c.report(),
            Lower::Tier(_) => LlmReport::default(),
        }
    }

    /// Mints the per-job facade: requests made through the handle are
    /// billed to a fresh job clock, and once that clock passes
    /// `deadline_us` (0 = no deadline) the job's `cancel` token fires.
    pub fn handle(&self, deadline_us: u64, cancel: CancelToken) -> JobHandle<'_> {
        JobHandle { shared: self, clock: Arc::new(SharedClock::new()), deadline_us, cancel }
    }
}

/// Per-job [`ChatModel`] facade over a [`CoalescingLlm`]: per-job
/// billing clock, deadline enforcement, cooperative cancellation.
pub struct JobHandle<'c> {
    shared: &'c CoalescingLlm<'c>,
    clock: Arc<SharedClock>,
    deadline_us: u64,
    cancel: CancelToken,
}

impl JobHandle<'_> {
    /// The job's billed virtual clock (LLM latency + backoff + waits).
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// Shared handle on the billing clock — what the serve layer
    /// attaches as the job's ambient observability clock, so spans
    /// stamp the same virtual time the job is billed on.
    pub fn clock_shared(&self) -> Arc<SharedClock> {
        self.clock.clone()
    }

    /// The job's cancellation token (shared with the flow config).
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }
}

impl ChatModel for JobHandle<'_> {
    fn name(&self) -> &str {
        self.shared.name()
    }

    fn complete(&self, request: &ChatRequest) -> ChatResponse {
        if self.cancel.is_cancelled() {
            eda_obs::instant!("llm", "cancelled");
            return ChatResponse { text: CANCELLED_COMPLETION.to_string() };
        }
        // Tree span on the job's own clock: recorded only from the
        // job's (sequential) flow thread, so enter/exit stamps are a
        // pure function of the job's request stream.
        let span = eda_obs::span!("llm", "request");
        let (resp, cost_us) = self.shared.complete_costed(request);
        self.clock.advance_us(cost_us);
        drop(span);
        if self.deadline_us > 0 && self.clock.micros() > self.deadline_us {
            self.cancel.cancel();
            eda_obs::instant!("llm", "deadline_fired", "billed_us" => self.clock.micros());
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::BASE_LATENCY_US;
    use crate::{ModelSpec, SimulatedLlm};

    fn req(prompt: &str, idx: u32) -> ChatRequest {
        ChatRequest { prompt: prompt.into(), temperature: 0.4, sample_index: idx }
    }

    #[test]
    fn duplicate_requests_share_one_transport_call() {
        let model = SimulatedLlm::new(ModelSpec::pro());
        let shared = CoalescingLlm::new(&model, &ResilienceConfig::off(), true);
        let (a, cost_a) = shared.complete_costed(&req("same prompt", 3));
        let (b, cost_b) = shared.complete_costed(&req("same prompt", 3));
        // A different prompt is a different key even when the simulated
        // model's text happens to coincide.
        let _ = shared.complete_costed(&req("other prompt", 3));
        assert_eq!(a, b, "coalesced reply must be byte-identical");
        assert_eq!(cost_a, cost_b, "coalesced cost must be billed identically");
        let r = shared.report();
        assert_eq!((r.lookups, r.unique, r.hits), (3, 2, 1));
        assert!((r.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        // Only the unique calls reached the transport stack.
        assert_eq!(shared.llm_report().requests, 2);
    }

    #[test]
    fn coalesced_reply_matches_the_uncoalesced_one() {
        let model = SimulatedLlm::new(ModelSpec::ultra());
        let cfg = ResilienceConfig::with_fault_rate(0.3, 7);
        let coalesced = CoalescingLlm::new(&model, &cfg, true);
        let plain = CoalescingLlm::new(&model, &cfg, false);
        for i in 0..8u32 {
            let r = req("design a mux", i % 3); // duplicates across i
            let (a, ca) = coalesced.complete_costed(&r);
            let (b, cb) = plain.complete_costed(&r);
            assert_eq!(a, b, "request {i}");
            assert_eq!(ca, cb, "request {i} cost");
        }
        assert!(coalesced.report().hits > 0);
        assert_eq!(plain.report().hits, 0);
        assert_eq!(plain.report().unique, 8);
    }

    #[test]
    fn handle_bills_every_request_and_enforces_the_deadline() {
        let model = SimulatedLlm::new(ModelSpec::pro());
        let shared = CoalescingLlm::new(&model, &ResilienceConfig::off(), true);
        let token = CancelToken::new();
        // Deadline allows exactly one base-latency request.
        let h = shared.handle(BASE_LATENCY_US, token.clone());
        let first = h.complete(&req("p", 0));
        assert!(!first.text.starts_with("// llm-cancelled"));
        assert_eq!(h.clock().micros(), BASE_LATENCY_US);
        assert!(!token.is_cancelled(), "exactly at the deadline is still in budget");
        let second = h.complete(&req("p", 1));
        assert!(!second.text.starts_with("// llm-cancelled"));
        assert!(token.is_cancelled(), "past the deadline the token must fire");
        let third = h.complete(&req("p", 2));
        assert_eq!(third.text, CANCELLED_COMPLETION);
        assert_eq!(h.clock().micros(), 2 * BASE_LATENCY_US, "cancelled stubs cost nothing");
    }

    #[test]
    fn shared_tier_dedups_across_shard_layers() {
        let model = SimulatedLlm::new(ModelSpec::pro());
        let tier = SharedTier::new(&model, &ResilienceConfig::off());
        let shard_a = CoalescingLlm::over_tier(&tier, true);
        let shard_b = CoalescingLlm::over_tier(&tier, true);
        let (ra, ca) = shard_a.complete_costed(&req("dup", 0));
        let (rb, cb) = shard_b.complete_costed(&req("dup", 0));
        assert_eq!(ra, rb, "tier hit must be byte-identical");
        assert_eq!(ca, cb, "tier hit must bill the cached cost");
        // Each shard layer saw a local miss; the tier saw the cross-
        // shard duplicate and made exactly one transport call.
        assert_eq!(shard_a.report().hits, 0);
        assert_eq!(shard_b.report().hits, 0);
        let t = tier.report();
        assert_eq!((t.lookups, t.unique, t.hits), (2, 1, 1));
        assert_eq!(tier.llm_report().requests, 1, "one cluster-wide transport call");
        // Shard layers over a tier own no client.
        assert_eq!(shard_a.llm_report(), LlmReport::default());
        // A same-shard duplicate is served locally and never reaches
        // the tier.
        let _ = shard_a.complete_costed(&req("dup", 0));
        assert_eq!(shard_a.report().hits, 1);
        assert_eq!(tier.report().lookups, 2);
    }

    #[test]
    fn tier_reply_matches_direct_client_under_faults() {
        let model = SimulatedLlm::new(ModelSpec::ultra());
        let cfg = ResilienceConfig::with_fault_rate(0.3, 7);
        let tier = SharedTier::new(&model, &cfg);
        let direct = CoalescingLlm::new(&model, &cfg, false);
        for i in 0..6u32 {
            let r = req("repair this loop", i % 2);
            let (a, ca) = tier.complete_costed(&r);
            let (b, cb) = direct.complete_costed(&r);
            assert_eq!(a, b, "request {i}");
            assert_eq!(ca, cb, "request {i} cost");
        }
    }

    #[test]
    fn coalesce_report_merge_sums_counters() {
        let mut a = CoalesceReport { enabled: false, lookups: 5, unique: 3, hits: 2 };
        let b = CoalesceReport { enabled: true, lookups: 7, unique: 7, hits: 0 };
        a.merge(&b);
        assert_eq!(a, CoalesceReport { enabled: true, lookups: 12, unique: 10, hits: 2 });
    }

    #[test]
    fn coalesced_hits_still_bill_the_job_clock() {
        let model = SimulatedLlm::new(ModelSpec::pro());
        let shared = CoalescingLlm::new(&model, &ResilienceConfig::off(), true);
        let a = shared.handle(0, CancelToken::new());
        let b = shared.handle(0, CancelToken::new());
        let _ = a.complete(&req("dup", 0));
        let _ = b.complete(&req("dup", 0));
        assert_eq!(a.clock().micros(), b.clock().micros(), "hit billed like the miss");
        assert_eq!(shared.llm_report().requests, 1, "one transport-level call");
        assert_eq!(shared.report().hits, 1);
    }
}
