//! Grammar-based C snippet generation for power stress (paper Section V).
//!
//! The simulated model writes loop-nest C programs whose instruction mix
//! and instruction-level parallelism determine the power the RISC-V OOO
//! model reports. Generation is conditioned on:
//!
//! * **examples in the prompt**: the model extracts structural features
//!   (multiply/divide/memory density, parallel chain count) from the
//!   best-scoring examples and samples around that anchor — exploitation;
//! * **temperature**: wider sampling around the anchor — exploration;
//! * **SCoT**: the two-stage pseudocode-first prompt improves structure
//!   (one extra parallel chain, fewer malformed programs), modelling the
//!   paper's observation that SCoT raises output quality;
//! * **capability**: weak models emit more malformed or faulting programs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Structural features of a power snippet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnippetFeatures {
    /// Independent dependency chains (drives ILP).
    pub chains: u32,
    /// Statements per loop iteration.
    pub stmts: u32,
    /// Fraction of statements that are multiplies.
    pub mul_frac: f64,
    /// Fraction that are divides.
    pub div_frac: f64,
    /// Fraction that touch memory.
    pub mem_frac: f64,
    /// Loop trip count.
    pub trip: u32,
}

impl Default for SnippetFeatures {
    fn default() -> Self {
        SnippetFeatures { chains: 3, stmts: 8, mul_frac: 0.3, div_frac: 0.05, mem_frac: 0.15, trip: 3000 }
    }
}

/// Extracts features from generated snippet text (used to condition later
/// generations on prompt examples).
pub fn extract_features(code: &str) -> SnippetFeatures {
    let stmts = code.matches(';').count().max(1) as u32;
    let muls = code.matches('*').count() as f64;
    let divs = code.matches(" / ").count() as f64;
    let mems = code.matches('[').count() as f64;
    let chains = code
        .lines()
        .filter(|l| l.trim_start().starts_with("int c"))
        .count()
        .max(1) as u32;
    let trip = code
        .split("i < ")
        .nth(1)
        .and_then(|s| s.split(';').next())
        .and_then(|s| s.trim().parse::<u32>().ok())
        .unwrap_or(3000);
    let body_stmts = stmts.saturating_sub(chains + 3).max(1);
    SnippetFeatures {
        chains,
        stmts: body_stmts,
        mul_frac: (muls / body_stmts as f64).min(1.0),
        div_frac: (divs / body_stmts as f64).min(1.0),
        mem_frac: (mems / body_stmts as f64 / 2.0).min(1.0),
        trip,
    }
}

/// Generation context.
#[derive(Debug, Clone, Copy)]
pub struct CGenCtx {
    pub capability: f64,
    pub temperature: f64,
    /// Structured Chain-of-Thought two-stage prompting.
    pub scot: bool,
}

/// Generates a C power snippet conditioned on scored examples.
///
/// `examples` are `(score, code)` pairs from the prompt; the anchor is the
/// best example's feature vector (when present).
pub fn generate_snippet(
    ctx: &CGenCtx,
    examples: &[(f64, String)],
    seed: u64,
) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
    let anchor = examples
        .iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .map(|(_, code)| extract_features(code))
        .unwrap_or_default();

    let t = ctx.temperature.clamp(0.0, 2.0);
    let jitter = |rng: &mut StdRng, v: f64, scale: f64| -> f64 {
        v + (rng.gen::<f64>() * 2.0 - 1.0) * scale * (0.15 + 0.7 * t)
    };

    // Capability caps structural quality: weaker models cannot juggle as
    // many independent chains or as extreme an operation mix (the paper's
    // fine-tuned model "performs significantly better" than off-the-shelf).
    let max_chains = (2.0 + ctx.capability * 8.0).floor().clamp(2.0, 8.0);
    let max_mul = (0.45 + 0.6 * ctx.capability).clamp(0.0, 0.92);
    let mut chains =
        (jitter(&mut rng, anchor.chains as f64, 1.2)).round().clamp(1.0, max_chains) as u32;
    if ctx.scot {
        // Pseudocode-first planning finds one more independent chain.
        chains = (chains + 1).min(max_chains as u32);
    }
    let stmts = (jitter(&mut rng, anchor.stmts as f64, 4.0)).round().clamp(4.0, 24.0) as u32;
    let mut mul_frac = jitter(&mut rng, anchor.mul_frac, 0.10).clamp(0.0, max_mul);
    let div_frac = jitter(&mut rng, anchor.div_frac, 0.05).clamp(0.0, 0.3);
    let mem_frac = jitter(&mut rng, anchor.mem_frac, 0.08).clamp(0.0, 0.5);
    if ctx.scot {
        mul_frac = (mul_frac * 1.15).min(max_mul);
    }
    let trip = (jitter(&mut rng, anchor.trip as f64, 800.0)).round().clamp(500.0, 8000.0) as u32;

    // Malformed-output path (weak models, high temperature, no SCoT).
    let p_bad = ((1.0 - ctx.capability) * 0.10 + t * 0.03) * if ctx.scot { 0.5 } else { 1.0 };
    let malformed = rng.gen_bool(p_bad.clamp(0.0, 0.6));
    // Hazardous memory indexing (causes an exception -> zero score).
    let p_fault = (1.0 - ctx.capability) * 0.08;
    let faulty = rng.gen_bool(p_fault.clamp(0.0, 0.5));

    let mut code = String::new();
    code.push_str("int snippet() {\n");
    for c in 0..chains {
        let init = 3 + 2 * c + rng.gen_range(0..5);
        code.push_str(&format!("  int c{c} = {init};\n"));
    }
    code.push_str("  int s = 0;\n");
    code.push_str("  int buf[64];\n");
    code.push_str("  for (int k = 0; k < 64; k++) buf[k] = k + 1;\n");
    code.push_str(&format!("  for (int i = 0; i < {trip}; i++) {{\n"));
    for s_i in 0..stmts {
        let c = s_i % chains;
        let c2 = (s_i + 1) % chains;
        let roll: f64 = rng.gen();
        let line = if roll < mul_frac {
            format!("    c{c} = c{c} * {} + c{c2};\n", rng.gen_range(3..31) | 1)
        } else if roll < mul_frac + div_frac {
            format!("    c{c} = c{c2} / (c{c} | 1) + {};\n", rng.gen_range(1..9))
        } else if roll < mul_frac + div_frac + mem_frac {
            if faulty && s_i == 0 {
                // Unmasked index: walks off the 64-entry buffer.
                format!("    buf[i] = c{c} + i;\n")
            } else if s_i % 3 == 2 {
                format!("    buf[(i + {c}) & 63] = c{c2};\n")
            } else {
                format!("    c{c} = buf[i & 63] + c{c};\n")
            }
        } else if roll < mul_frac + div_frac + mem_frac + 0.12 {
            format!("    c{c} = (c{c} ^ c{c2}) + (c{c2} >> 1);\n")
        } else {
            format!("    c{c} = c{c} + c{c2} + {};\n", rng.gen_range(1..7))
        };
        code.push_str(&line);
    }
    code.push_str("    s = s + c0;\n");
    code.push_str("  }\n");
    code.push_str("  return s;\n");
    code.push_str("}\n");

    if malformed {
        // Drop one semicolon: a compile error, scoring zero.
        if let Some(pos) = code.rfind(';') {
            code.remove(pos);
        }
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(cap: f64, temp: f64, scot: bool) -> CGenCtx {
        CGenCtx { capability: cap, temperature: temp, scot }
    }

    #[test]
    fn generated_snippets_usually_compile_and_run() {
        let mut ok = 0;
        for seed in 0..30 {
            let code = generate_snippet(&ctx(0.75, 0.6, true), &[], seed);
            if eda_riscv::measure_c_power(&code, "snippet", &[]).is_ok() {
                ok += 1;
            }
        }
        assert!(ok >= 24, "most snippets score: {ok}/30");
    }

    #[test]
    fn weak_models_fail_more_often() {
        let count_fail = |cap: f64| {
            (0..40)
                .filter(|seed| {
                    let code = generate_snippet(&ctx(cap, 1.2, false), &[], *seed);
                    eda_riscv::measure_c_power(&code, "snippet", &[]).is_err()
                })
                .count()
        };
        let weak = count_fail(0.2);
        let strong = count_fail(0.95);
        assert!(weak > strong, "weak {weak} vs strong {strong}");
    }

    #[test]
    fn examples_anchor_generation() {
        // A mul-heavy example biases future snippets toward multiplies.
        let mul_heavy = generate_snippet(
            &ctx(0.8, 0.1, true),
            &[(5.5, "int snippet() {\n  int c0 = 3;\n  for (int i = 0; i < 4000; i++) {\n    c0 = c0 * 17 + 1;\n    c0 = c0 * 13 + 2;\n    c0 = c0 * 11 + 3;\n    c0 = c0 * 9 + 4;\n  }\n  return c0;\n}\n".to_string())],
            7,
        );
        let plain = generate_snippet(&ctx(0.8, 0.1, true), &[], 7);
        let f_anchored = extract_features(&mul_heavy);
        let f_plain = extract_features(&plain);
        assert!(
            f_anchored.mul_frac >= f_plain.mul_frac,
            "anchored {:.2} vs plain {:.2}",
            f_anchored.mul_frac,
            f_plain.mul_frac
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_snippet(&ctx(0.6, 0.8, false), &[], 11);
        let b = generate_snippet(&ctx(0.6, 0.8, false), &[], 11);
        assert_eq!(a, b);
        assert_ne!(a, generate_snippet(&ctx(0.6, 0.8, false), &[], 12));
    }

    #[test]
    fn scot_improves_expected_power() {
        // Average over seeds: SCoT snippets should draw at least as much
        // power (more chains, more muls) as non-SCoT ones.
        let avg = |scot: bool| {
            let mut total = 0.0;
            let mut n = 0;
            for seed in 0..25 {
                let code = generate_snippet(&ctx(0.8, 0.5, scot), &[], seed);
                if let Ok(r) = eda_riscv::measure_c_power(&code, "snippet", &[]) {
                    total += r.power_w;
                    n += 1;
                }
            }
            total / n.max(1) as f64
        };
        let with = avg(true);
        let without = avg(false);
        assert!(with > without - 0.1, "scot {with:.3} vs plain {without:.3}");
    }

    #[test]
    fn feature_extraction_roundtrip() {
        let code = generate_snippet(&ctx(0.8, 0.3, false), &[], 5);
        let f = extract_features(&code);
        assert!(f.chains >= 1 && f.chains <= 6);
        assert!(f.trip >= 500);
    }
}
