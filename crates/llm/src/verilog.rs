//! Verilog candidate generation by capability-dependent fault injection.
//!
//! The simulated model "writes" a design for a benchmark problem by taking
//! the problem's reference solution and injecting bugs from the classes
//! observed in real LLM-generated RTL (wrong operators, off-by-one widths
//! and indices, missing resets, swapped ternaries, blocking/nonblocking
//! confusion, outright syntax errors). The *expected number* of bugs falls
//! with model capability and rises with problem difficulty and sampling
//! temperature; EDA-tool feedback reduces it further, but only for models
//! whose `feedback_skill` is high — reproducing AutoChip's observation that
//! only the strongest model benefits from feedback.

use eda_hdl::ast::{BinaryOp, Edge, Expr, Item, Module, Sensitivity, Stmt, UnaryOp};
use eda_hdl::{emit_module, parse};
use eda_suite::Problem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation context.
#[derive(Debug, Clone, Copy)]
pub struct VerilogGenCtx {
    /// Model capability in `[0, 1]`.
    pub capability: f64,
    /// How well the model exploits tool feedback, in `[0, 1]`.
    pub feedback_skill: f64,
    /// Sampling temperature in `[0, ~1.5]`.
    pub temperature: f64,
    /// Tool-feedback rounds present in the prompt.
    pub feedback_rounds: u32,
}

/// Expected bug count for a problem under a context.
///
/// Calibration targets (pass@1 ≈ e^-λ plus a small benign-bug tail):
/// the strongest tier lands ≈0.8 on easy and ≈0.45 on hard problems,
/// the weakest ≈0.3 easy / ≈0.03 hard — the regime where AutoChip-style
/// search strategies actually differ, matching the paper's published
/// pass-rate ranges for commercial models on VerilogEval.
pub fn expected_bugs(ctx: &VerilogGenCtx, difficulty_level: u32) -> f64 {
    let base = 2.2 * difficulty_level as f64;
    // Irreducible difficulty floor: even the best models make some
    // mistakes on hard specs (no tier saturates pass@k trivially).
    let skill = 0.12 + 0.88 * (1.0 - ctx.capability).max(0.0);
    let temp = 0.55 + 0.9 * ctx.temperature;
    let feedback_gain = (1.0 - ctx.capability * ctx.feedback_skill)
        .max(0.05)
        .powi(ctx.feedback_rounds as i32);
    base * skill * temp * feedback_gain
}

/// Probability that a candidate has a *syntax* error (vs. functional bugs).
fn syntax_error_prob(ctx: &VerilogGenCtx) -> f64 {
    (0.10 * (1.0 - ctx.capability) + 0.03 * ctx.temperature)
        * (1.0 - 0.8 * ctx.capability * ctx.feedback_skill).powi(ctx.feedback_rounds as i32)
}

/// Generates one candidate solution (Verilog source text).
pub fn generate_candidate(problem: &Problem, ctx: &VerilogGenCtx, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut file = parse(problem.reference).expect("suite references parse");
    let module = file
        .modules
        .iter_mut()
        .find(|m| m.name == problem.module_name)
        .expect("module present");

    // Syntax-error path.
    if rng.gen_bool(syntax_error_prob(ctx).clamp(0.0, 0.9)) {
        return corrupt_syntax(&emit_module(module), &mut rng);
    }

    let lambda = expected_bugs(ctx, problem.difficulty.level());
    // Sample bug count: floor + Bernoulli remainder (cheap Poisson-ish).
    let mut n_bugs = lambda.floor() as u32;
    if rng.gen_bool((lambda - lambda.floor()).clamp(0.0, 1.0)) {
        n_bugs += 1;
    }
    for _ in 0..n_bugs {
        inject_bug(module, &mut rng);
    }
    emit_module(module)
}

fn corrupt_syntax(src: &str, rng: &mut StdRng) -> String {
    let tokens = [";", ")", "end", "endmodule", "="];
    let victim = tokens[rng.gen_range(0..tokens.len())];
    if let Some(pos) = src.rfind(victim) {
        let mut s = String::with_capacity(src.len());
        s.push_str(&src[..pos]);
        s.push_str(&src[pos + victim.len()..]);
        s
    } else {
        // Guaranteed corruption.
        src.replacen("module", "modul", 1)
    }
}

/// All bug classes the injector knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BugKind {
    SwapBinaryOp,
    DropUnaryNot,
    ConstOffByOne,
    TernarySwap,
    WrongEdge,
    NonblockingToBlocking,
    DropResetBranch,
    IndexOffByOne,
}

const ALL_BUGS: [BugKind; 8] = [
    BugKind::SwapBinaryOp,
    BugKind::DropUnaryNot,
    BugKind::ConstOffByOne,
    BugKind::TernarySwap,
    BugKind::WrongEdge,
    BugKind::NonblockingToBlocking,
    BugKind::DropResetBranch,
    BugKind::IndexOffByOne,
];

fn inject_bug(module: &mut Module, rng: &mut StdRng) {
    // Try bug kinds in random order until one applies.
    let mut order: Vec<BugKind> = ALL_BUGS.to_vec();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    for kind in order {
        if try_inject(module, kind, rng) {
            return;
        }
    }
}

fn try_inject(module: &mut Module, kind: BugKind, rng: &mut StdRng) -> bool {
    match kind {
        BugKind::WrongEdge => {
            for item in &mut module.items {
                if let Item::Always { sensitivity: Sensitivity::Edges(edges), .. } = item {
                    if let Some(e) = edges.first_mut() {
                        e.edge = match e.edge {
                            Edge::Pos => Edge::Neg,
                            Edge::Neg => Edge::Pos,
                        };
                        return true;
                    }
                }
            }
            false
        }
        BugKind::NonblockingToBlocking => {
            for item in &mut module.items {
                if let Item::Always { sensitivity: Sensitivity::Edges(_), body, .. } = item {
                    if let Some(s) = find_stmt_mut(body, &mut |s| {
                        matches!(s, Stmt::NonBlocking { .. })
                    }) {
                        if let Stmt::NonBlocking { lhs, rhs, line } = s.clone() {
                            *s = Stmt::Blocking { lhs, rhs, line };
                            return true;
                        }
                    }
                }
            }
            false
        }
        BugKind::DropResetBranch => {
            for item in &mut module.items {
                if let Item::Always { body, .. } = item {
                    if let Some(s) = find_stmt_mut(body, &mut |s| {
                        matches!(s, Stmt::If { else_branch: Some(_), .. })
                    }) {
                        if let Stmt::If { else_branch: Some(e), .. } = s.clone() {
                            *s = (*e).clone();
                            return true;
                        }
                    }
                }
            }
            false
        }
        BugKind::SwapBinaryOp => mutate_some_expr(module, rng, &mut |e, rng| {
            if let Expr::Binary(op, _, _) = e {
                let new = swap_op(*op, rng);
                if new != *op {
                    *op = new;
                    return true;
                }
            }
            false
        }),
        BugKind::DropUnaryNot => mutate_some_expr(module, rng, &mut |e, _| {
            if let Expr::Unary(UnaryOp::Not, inner) = e {
                *e = (**inner).clone();
                return true;
            }
            if let Expr::Unary(UnaryOp::LogicNot, inner) = e {
                *e = (**inner).clone();
                return true;
            }
            false
        }),
        BugKind::ConstOffByOne => mutate_some_expr(module, rng, &mut |e, rng| {
            match e {
                Expr::UnsizedLiteral(v) if *v > 0 => {
                    *v = if rng.gen_bool(0.5) { *v + 1 } else { *v - 1 };
                    true
                }
                Expr::Literal(v) => {
                    if let Some(x) = v.to_u64() {
                        let w = v.width();
                        let nx = if rng.gen_bool(0.5) { x.wrapping_add(1) } else { x.wrapping_sub(1) };
                        *v = eda_hdl::Value::from_u64(w, nx);
                        true
                    } else {
                        false
                    }
                }
                _ => false,
            }
        }),
        BugKind::TernarySwap => mutate_some_expr(module, rng, &mut |e, _| {
            if let Expr::Ternary(_, t, f) = e {
                std::mem::swap(t, f);
                return true;
            }
            false
        }),
        BugKind::IndexOffByOne => mutate_some_expr(module, rng, &mut |e, rng| {
            if let Expr::Index(_, idx) = e {
                if let Expr::UnsizedLiteral(v) = &mut **idx {
                    *v = if *v == 0 || rng.gen_bool(0.5) { *v + 1 } else { *v - 1 };
                    return true;
                }
            }
            if let Expr::PartSelect(_, hi, _lo) = e {
                if let Expr::UnsizedLiteral(v) = &mut **hi {
                    if *v > 0 {
                        *v -= 1;
                        return true;
                    }
                }
            }
            false
        }),
    }
}

/// Picks a wrong-but-plausible replacement operator. Randomized so that
/// two swaps at the same site rarely cancel out (real models don't emit
/// self-annihilating bug pairs).
fn swap_op(op: BinaryOp, rng: &mut StdRng) -> BinaryOp {
    use BinaryOp::*;
    let pick = |rng: &mut StdRng, opts: &[BinaryOp]| opts[rng.gen_range(0..opts.len())];
    match op {
        Add => pick(rng, &[Sub, Or, Xor]),
        Sub => pick(rng, &[Add, Xor]),
        And => pick(rng, &[Or, Xor]),
        Or => pick(rng, &[And, Xor]),
        Xor => pick(rng, &[And, Or]),
        Lt => pick(rng, &[Le, Ge]),
        Le => pick(rng, &[Lt, Gt]),
        Gt => pick(rng, &[Ge, Le]),
        Ge => pick(rng, &[Gt, Lt]),
        Eq => Ne,
        Ne => Eq,
        Shl => Shr,
        Shr => Shl,
        other => other,
    }
}

/// Finds the first statement satisfying `pred` (depth-first), mutable.
fn find_stmt_mut<'a>(
    s: &'a mut Stmt,
    pred: &mut impl FnMut(&Stmt) -> bool,
) -> Option<&'a mut Stmt> {
    if pred(s) {
        return Some(s);
    }
    match s {
        Stmt::Block(stmts) => {
            for st in stmts {
                if let Some(f) = find_stmt_mut(st, pred) {
                    return Some(f);
                }
            }
            None
        }
        Stmt::If { then_branch, else_branch, .. } => {
            if let Some(f) = find_stmt_mut(then_branch, pred) {
                return Some(f);
            }
            match else_branch {
                Some(e) => find_stmt_mut(e, pred),
                None => None,
            }
        }
        Stmt::Case { arms, default, .. } => {
            for a in arms {
                if let Some(f) = find_stmt_mut(&mut a.body, pred) {
                    return Some(f);
                }
            }
            match default {
                Some(d) => find_stmt_mut(d, pred),
                None => None,
            }
        }
        Stmt::For { body, .. } => find_stmt_mut(body, pred),
        _ => None,
    }
}

/// Applies `f` to one randomly-chosen matching expression in the module.
fn mutate_some_expr(
    module: &mut Module,
    rng: &mut StdRng,
    f: &mut impl FnMut(&mut Expr, &mut StdRng) -> bool,
) -> bool {
    // Collect mutable expression pointers is awkward in safe Rust; instead
    // walk twice: count matches, pick an index, then apply at that index.
    let mut count = 0usize;
    visit_module_exprs(module, &mut |e| {
        let mut probe = e.clone();
        let mut probe_rng = StdRng::seed_from_u64(0);
        if f(&mut probe, &mut probe_rng) {
            count += 1;
        }
        false
    });
    if count == 0 {
        return false;
    }
    let target = rng.gen_range(0..count);
    let mut seen = 0usize;
    let mut applied = false;
    let mut apply_rng = StdRng::seed_from_u64(rng.gen());
    visit_module_exprs(module, &mut |e| {
        if applied {
            return false;
        }
        let mut probe = e.clone();
        let mut probe_rng = StdRng::seed_from_u64(0);
        if f(&mut probe, &mut probe_rng) {
            if seen == target {
                f(e, &mut apply_rng);
                applied = true;
                return true;
            }
            seen += 1;
        }
        false
    });
    applied
}

/// Visits every expression in the module; the callback returns `true` to
/// stop descending into children (after mutation).
fn visit_module_exprs(module: &mut Module, f: &mut impl FnMut(&mut Expr) -> bool) {
    for item in &mut module.items {
        match item {
            Item::Assign { rhs, .. } => visit_expr(rhs, f),
            Item::Always { body, .. } | Item::Initial { body, .. } => visit_stmt_exprs(body, f),
            _ => {}
        }
    }
}

fn visit_stmt_exprs(s: &mut Stmt, f: &mut impl FnMut(&mut Expr) -> bool) {
    match s {
        Stmt::Blocking { rhs, .. } | Stmt::NonBlocking { rhs, .. } => visit_expr(rhs, f),
        Stmt::If { cond, then_branch, else_branch, .. } => {
            visit_expr(cond, f);
            visit_stmt_exprs(then_branch, f);
            if let Some(e) = else_branch {
                visit_stmt_exprs(e, f);
            }
        }
        Stmt::Case { subject, arms, default, .. } => {
            visit_expr(subject, f);
            for a in arms {
                visit_stmt_exprs(&mut a.body, f);
            }
            if let Some(d) = default {
                visit_stmt_exprs(d, f);
            }
        }
        Stmt::For { cond, body, .. } => {
            visit_expr(cond, f);
            visit_stmt_exprs(body, f);
        }
        Stmt::Block(stmts) => {
            for st in stmts {
                visit_stmt_exprs(st, f);
            }
        }
        _ => {}
    }
}

fn visit_expr(e: &mut Expr, f: &mut impl FnMut(&mut Expr) -> bool) {
    if f(e) {
        return;
    }
    match e {
        Expr::Index(a, b) | Expr::Binary(_, a, b) | Expr::Replicate(a, b) => {
            visit_expr(a, f);
            visit_expr(b, f);
        }
        Expr::PartSelect(a, b, c) | Expr::Ternary(a, b, c) => {
            visit_expr(a, f);
            visit_expr(b, f);
            visit_expr(c, f);
        }
        Expr::Unary(_, a) => visit_expr(a, f),
        Expr::Concat(parts) => {
            for p in parts {
                visit_expr(p, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_suite::problem;

    fn ctx(cap: f64, temp: f64, rounds: u32) -> VerilogGenCtx {
        VerilogGenCtx {
            capability: cap,
            feedback_skill: cap, // tests: skill tracks capability
            temperature: temp,
            feedback_rounds: rounds,
        }
    }

    #[test]
    fn high_capability_often_correct_on_easy() {
        let p = problem("not_gate").unwrap();
        let tb = p.testbench(8, 1).unwrap();
        let mut correct = 0;
        for seed in 0..40 {
            let src = generate_candidate(&p, &ctx(0.9, 0.3, 0), seed);
            if let Ok(r) = eda_hdl::check_source(&src, p.module_name, &tb) {
                if r.all_passed() {
                    correct += 1;
                }
            }
        }
        assert!(correct >= 18, "strong model solves easy problems: {correct}/40");
    }

    #[test]
    fn capability_orders_pass_rates_on_hard() {
        // Some injected bug classes are benign under the vector protocol
        // (e.g. edge polarity when inputs are stable across the clock), so
        // the robust property is the *ordering* of pass rates by tier —
        // which is what every Section-IV experiment measures.
        let p = problem("seq_detector_101").unwrap();
        let tb = p.testbench(48, 2).unwrap();
        let rate = |cap: f64| {
            (0..30)
                .filter(|seed| {
                    let src = generate_candidate(&p, &ctx(cap, 0.8, 0), *seed);
                    matches!(eda_hdl::check_source(&src, p.module_name, &tb),
                             Ok(r) if r.all_passed())
                })
                .count()
        };
        let weak = rate(0.3);
        let strong = rate(0.92);
        assert!(weak < strong, "weak {weak}/30 vs strong {strong}/30");
        assert!(weak <= 20, "weak model must stay well below ceiling: {weak}/30");
    }

    #[test]
    fn feedback_helps_capable_models_only() {
        let strong_0 = expected_bugs(&ctx(0.9, 0.5, 0), 2);
        let strong_3 = expected_bugs(&ctx(0.9, 0.5, 3), 2);
        let weak_0 = expected_bugs(&ctx(0.35, 0.5, 0), 2);
        let weak_3 = expected_bugs(&ctx(0.35, 0.5, 3), 2);
        let strong_gain = strong_0 / strong_3.max(1e-9);
        let weak_gain = weak_0 / weak_3.max(1e-9);
        assert!(
            strong_gain > 2.0 * weak_gain,
            "strong {strong_gain:.2} vs weak {weak_gain:.2}"
        );
    }

    #[test]
    fn temperature_increases_bug_rate() {
        assert!(expected_bugs(&ctx(0.6, 1.2, 0), 2) > expected_bugs(&ctx(0.6, 0.1, 0), 2));
    }

    #[test]
    fn candidates_deterministic_per_seed() {
        let p = problem("alu8").unwrap();
        let a = generate_candidate(&p, &ctx(0.5, 0.7, 0), 42);
        let b = generate_candidate(&p, &ctx(0.5, 0.7, 0), 42);
        let c = generate_candidate(&p, &ctx(0.5, 0.7, 0), 43);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds diversify candidates");
    }

    #[test]
    fn syntax_errors_happen_for_weak_models() {
        let p = problem("counter4").unwrap();
        let mut syntax_errors = 0;
        for seed in 0..60 {
            let src = generate_candidate(&p, &ctx(0.2, 1.0, 0), seed);
            if eda_hdl::compile(&src, p.module_name).is_err() {
                syntax_errors += 1;
            }
        }
        assert!(syntax_errors >= 2, "some candidates must fail to compile: {syntax_errors}");
    }

    #[test]
    fn injected_bugs_change_behaviour() {
        let p = problem("adder8").unwrap();
        let tb = p.testbench(24, 5).unwrap();
        // Force heavy bug injection.
        let mut broken = 0;
        for seed in 100..130 {
            let src = generate_candidate(&p, &ctx(0.05, 1.4, 0), seed);
            match eda_hdl::check_source(&src, p.module_name, &tb) {
                Ok(r) if !r.all_passed() => broken += 1,
                Err(_) => broken += 1,
                _ => {}
            }
        }
        assert!(broken >= 15, "bug injection must usually break the design: {broken}/30");
    }
}
