//! C program repair generation (paper Fig. 2 stage 2).
//!
//! Given a program, an HLS error kind, and (optionally) a retrieved
//! correction template, the simulated model applies the corresponding AST
//! rewrite. Template-guided repairs succeed with much higher probability
//! than unguided ones — the RAG-ablation effect the repair experiment
//! measures. Some error classes (pointer arithmetic, non-pattern
//! recursion) resist mechanical rewriting and fail, keeping per-stage
//! success rates below 100 % as in practice.

use eda_cmini::{emit_program, parse, BinOp, Block, Expr, Program, Stmt, StmtKind, Type};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Repair context.
#[derive(Debug, Clone, Copy)]
pub struct RepairCtx {
    pub capability: f64,
    /// Whether a retrieved template is present in the prompt.
    pub has_template: bool,
}

/// Attempts to repair `src` for the given error kind (an
/// `eda_cmini::IncompatKind` display tag). Returns the rewritten source;
/// when the roll or the rewrite fails, the original source is returned
/// (the error will persist and the framework's loop will observe it).
pub fn attempt_repair(src: &str, kind: &str, ctx: &RepairCtx, seed: u64) -> String {
    let p_success = (ctx.capability * if ctx.has_template { 1.25 } else { 0.55 }).clamp(0.0, 0.97);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7e9a_12f3);
    if !rng.gen_bool(p_success) {
        return src.to_string();
    }
    let Ok(mut prog) = parse(src) else { return src.to_string() };
    let changed = match kind {
        "dynamic-allocation" => fix_dynamic_allocation(&mut prog),
        "stdio" => fix_stdio(&mut prog),
        "unbounded-loop" | "irregular-exit" => fix_unbounded_loops(&mut prog),
        "recursion" => fix_linear_recursion(&mut prog),
        _ => false,
    };
    if changed {
        emit_program(&prog)
    } else {
        src.to_string()
    }
}

/// Replaces `T *p = (T*)malloc(...)` with a fixed-size array and removes
/// `free(p)` calls.
pub fn fix_dynamic_allocation(prog: &mut Program) -> bool {
    let mut changed = false;
    for f in &mut prog.functions {
        changed |= fix_malloc_block(&mut f.body);
    }
    changed
}

fn is_malloc_call(e: &Expr) -> Option<&[Expr]> {
    match e {
        Expr::Call(name, args) if name == "malloc" || name == "calloc" => Some(args),
        Expr::Cast(_, inner) => is_malloc_call(inner),
        _ => None,
    }
}

/// Worst-case element bound for a malloc size expression.
fn malloc_capacity(args: &[Expr]) -> u64 {
    fn const_factor(e: &Expr) -> Option<u64> {
        match e {
            Expr::IntLit(v) if *v > 0 => Some(*v as u64),
            Expr::SizeOf(_) => Some(1),
            Expr::Binary(BinOp::Mul, a, b) => Some(const_factor(a)? * const_factor(b)?),
            _ => None,
        }
    }
    let total: Option<u64> = match args.len() {
        1 => const_factor(&args[0]),
        2 => match (const_factor(&args[0]), const_factor(&args[1])) {
            (Some(a), Some(b)) => Some(a * b),
            _ => None,
        },
        _ => None,
    };
    total.unwrap_or(256).clamp(1, 4096)
}

fn fix_malloc_block(b: &mut Block) -> bool {
    let mut changed = false;
    let mut freed_names: Vec<String> = Vec::new();
    for s in &mut b.stmts {
        match &mut s.kind {
            StmtKind::Decl { ty, name, init }
                if ty.is_pointer() => {
                    if let Some(expr) = init {
                        if let Some(args) = is_malloc_call(expr) {
                            let cap = malloc_capacity(args);
                            *ty = Type {
                                base: ty.base,
                                unsigned: ty.unsigned,
                                pointers: 0,
                                dims: vec![cap],
                            };
                            *init = None;
                            changed = true;
                            let _ = name;
                        }
                    }
                }
            StmtKind::Expr(Expr::Call(name, args)) if name == "free" => {
                if let Some(Expr::Ident(n)) = args.first() {
                    freed_names.push(n.clone());
                }
            }
            StmtKind::If { then_branch, else_branch, .. } => {
                changed |= fix_malloc_block(then_branch);
                if let Some(e) = else_branch {
                    changed |= fix_malloc_block(e);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => changed |= fix_malloc_block(body),
            StmtKind::Block(inner) => changed |= fix_malloc_block(inner),
            _ => {}
        }
    }
    if changed {
        b.stmts.retain(|s| {
            !matches!(&s.kind, StmtKind::Expr(Expr::Call(name, _)) if name == "free")
        });
    }
    changed
}

/// Deletes `printf`/`putchar` statements.
pub fn fix_stdio(prog: &mut Program) -> bool {
    let mut changed = false;
    for f in &mut prog.functions {
        changed |= strip_stdio_block(&mut f.body);
    }
    changed
}

fn strip_stdio_block(b: &mut Block) -> bool {
    let before = b.stmts.len();
    b.stmts.retain(|s| {
        !matches!(&s.kind,
            StmtKind::Expr(Expr::Call(name, _)) if name == "printf" || name == "putchar")
    });
    let mut changed = b.stmts.len() != before;
    for s in &mut b.stmts {
        match &mut s.kind {
            StmtKind::If { then_branch, else_branch, .. } => {
                changed |= strip_stdio_block(then_branch);
                if let Some(e) = else_branch {
                    changed |= strip_stdio_block(e);
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::DoWhile { body, .. }
            | StmtKind::For { body, .. } => changed |= strip_stdio_block(body),
            StmtKind::Block(inner) => changed |= strip_stdio_block(inner),
            _ => {}
        }
    }
    changed
}

/// Rewrites `while (cond) { ... }` and `while (1) { ...; break; }` loops
/// into bounded `for` loops with an explicit iteration cap.
pub fn fix_unbounded_loops(prog: &mut Program) -> bool {
    let mut next_id = 90_000u32;
    let mut changed = false;
    for f in &mut prog.functions {
        changed |= bound_loops_block(&mut f.body, &mut next_id);
    }
    changed
}

fn bound_loops_block(b: &mut Block, next_id: &mut u32) -> bool {
    let mut changed = false;
    for s in &mut b.stmts {
        let mut replace: Option<StmtKind> = None;
        match &mut s.kind {
            StmtKind::While { cond, body, .. } => {
                let mut inner = body.clone();
                bound_loops_block(&mut inner, next_id);
                // Guard first: `if (!(cond)) break;`
                let mut id = || {
                    *next_id += 1;
                    *next_id
                };
                let guard = Stmt {
                    id: id(),
                    line: s.line,
                    kind: StmtKind::If {
                        cond: Expr::Unary(
                            eda_cmini::UnOp::Not,
                            Box::new(cond.clone()),
                        ),
                        then_branch: Block {
                            stmts: vec![Stmt { id: id(), line: s.line, kind: StmtKind::Break }],
                        },
                        else_branch: None,
                    },
                };
                let mut stmts = vec![guard];
                stmts.extend(inner.stmts);
                let var = format!("bound_it_{}", id());
                replace = Some(StmtKind::For {
                    init: Some(Box::new(Stmt {
                        id: id(),
                        line: s.line,
                        kind: StmtKind::Decl {
                            ty: Type::int(),
                            name: var.clone(),
                            init: Some(Expr::IntLit(0)),
                        },
                    })),
                    cond: Some(Expr::Binary(
                        BinOp::Lt,
                        Box::new(Expr::Ident(var.clone())),
                        Box::new(Expr::IntLit(4096)),
                    )),
                    step: Some(Expr::IncDec {
                        target: Box::new(Expr::Ident(var)),
                        inc: true,
                        prefix: false,
                    }),
                    body: Block { stmts },
                    pragmas: vec![],
                });
                changed = true;
            }
            StmtKind::If { then_branch, else_branch, .. } => {
                changed |= bound_loops_block(then_branch, next_id);
                if let Some(e) = else_branch {
                    changed |= bound_loops_block(e, next_id);
                }
            }
            StmtKind::For { body, .. } | StmtKind::DoWhile { body, .. } => {
                changed |= bound_loops_block(body, next_id);
            }
            StmtKind::Block(inner) => changed |= bound_loops_block(inner, next_id),
            _ => {}
        }
        if let Some(k) = replace {
            s.kind = k;
        }
    }
    changed
}

/// Rewrites the linear-recursion pattern
/// `int f(int n) { if (n <= C) return E0; return f(n - 1) OP E(n); }`
/// into an iterative accumulator loop. Returns `false` (repair failure)
/// when the function does not match the pattern.
pub fn fix_linear_recursion(prog: &mut Program) -> bool {
    let names: Vec<String> = eda_cmini::recursive_functions(prog).into_iter().collect();
    let mut changed = false;
    for name in names {
        let Some(f) = prog.function_mut(&name) else { continue };
        if f.params.len() != 1 || !f.params[0].ty.is_scalar() {
            continue;
        }
        let param = f.params[0].name.clone();
        // Pattern match the body.
        if f.body.stmts.len() != 2 {
            continue;
        }
        let (base_cutoff, base_value) = match &f.body.stmts[0].kind {
            StmtKind::If { cond, then_branch, else_branch: None } => {
                let base_value = match then_branch.stmts.first().map(|s| &s.kind) {
                    Some(StmtKind::Return(Some(Expr::IntLit(v)))) => *v,
                    _ => continue,
                };
                let cutoff = match cond {
                    Expr::Binary(op @ (BinOp::Le | BinOp::Lt | BinOp::Eq), a, b) => {
                        match (&**a, &**b) {
                            (Expr::Ident(n), Expr::IntLit(c)) if *n == param => {
                                if *op == BinOp::Lt {
                                    c - 1
                                } else {
                                    *c
                                }
                            }
                            _ => continue,
                        }
                    }
                    _ => continue,
                };
                (cutoff, base_value)
            }
            _ => continue,
        };
        // `return f(n-1) OP E(n)` or `return E(n) OP f(n-1)`.
        let StmtKind::Return(Some(ret)) = &f.body.stmts[1].kind else { continue };
        let is_self_call = |e: &Expr| -> bool {
            matches!(e, Expr::Call(n, args) if *n == name && args.len() == 1)
        };
        let (op, other) = match ret {
            Expr::Binary(op, a, b) if is_self_call(a) => (*op, (**b).clone()),
            Expr::Binary(op, a, b) if is_self_call(b) && matches!(op, BinOp::Add | BinOp::Mul) => {
                (*op, (**a).clone())
            }
            _ => continue,
        };
        // Build the iterative form.
        let mut id = 80_000u32;
        let mut next = || {
            id += 1;
            id
        };
        let line = f.line;
        let subst = |e: &Expr| -> Expr { substitute_ident(e, &param, &Expr::Ident("i".into())) };
        let body = Block {
            stmts: vec![
                Stmt {
                    id: next(),
                    line,
                    kind: StmtKind::Decl {
                        ty: Type::int(),
                        name: "acc".into(),
                        init: Some(Expr::IntLit(base_value)),
                    },
                },
                Stmt {
                    id: next(),
                    line,
                    kind: StmtKind::For {
                        init: Some(Box::new(Stmt {
                            id: next(),
                            line,
                            kind: StmtKind::Decl {
                                ty: Type::int(),
                                name: "i".into(),
                                init: Some(Expr::IntLit(base_cutoff + 1)),
                            },
                        })),
                        cond: Some(Expr::Binary(
                            BinOp::Le,
                            Box::new(Expr::Ident("i".into())),
                            Box::new(Expr::Ident(param.clone())),
                        )),
                        step: Some(Expr::IncDec {
                            target: Box::new(Expr::Ident("i".into())),
                            inc: true,
                            prefix: false,
                        }),
                        body: Block {
                            stmts: vec![Stmt {
                                id: next(),
                                line,
                                kind: StmtKind::Expr(Expr::Assign {
                                    op: Some(op),
                                    target: Box::new(Expr::Ident("acc".into())),
                                    value: Box::new(subst(&other)),
                                }),
                            }],
                        },
                        pragmas: vec![],
                    },
                },
                Stmt {
                    id: next(),
                    line,
                    kind: StmtKind::Return(Some(Expr::Ident("acc".into()))),
                },
            ],
        };
        f.body = body;
        changed = true;
    }
    changed
}

fn substitute_ident(e: &Expr, name: &str, with: &Expr) -> Expr {
    match e {
        Expr::Ident(n) if n == name => with.clone(),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(substitute_ident(a, name, with)),
            Box::new(substitute_ident(b, name, with)),
        ),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(substitute_ident(a, name, with))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eda_cmini::{hls_compat_scan, Interp};

    fn repaired(src: &str, kind: &str) -> String {
        attempt_repair(src, kind, &RepairCtx { capability: 1.0, has_template: true }, 3)
    }

    #[test]
    fn malloc_repair_preserves_behaviour() {
        let src = "
          int f(int n) {
            int *b = (int*)malloc(16 * sizeof(int));
            for (int i = 0; i < n; i++) b[i] = i * i;
            int s = 0;
            for (int i = 0; i < n; i++) s += b[i];
            free(b);
            return s;
          }";
        let fixed = repaired(src, "dynamic-allocation");
        assert!(!fixed.contains("malloc"), "{fixed}");
        let issues = hls_compat_scan(&parse(&fixed).unwrap());
        assert!(issues.is_empty(), "{issues:?}");
        let before = Interp::new(&parse(src).unwrap()).call_ints("f", &[10]).unwrap();
        let after = Interp::new(&parse(&fixed).unwrap()).call_ints("f", &[10]).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn stdio_removed() {
        let src = r#"int f(int a) { printf("%d", a); return a + 1; }"#;
        let fixed = repaired(src, "stdio");
        assert!(!fixed.contains("printf"));
        assert_eq!(
            Interp::new(&parse(&fixed).unwrap()).call_ints("f", &[4]).unwrap(),
            5
        );
    }

    #[test]
    fn unbounded_while_becomes_bounded_for() {
        let src = "
          int f(int n) {
            int x = n;
            while (x * x < 1000) { x = x + 3; }
            return x;
          }";
        let fixed = repaired(src, "unbounded-loop");
        let prog = parse(&fixed).unwrap();
        assert!(hls_compat_scan(&prog).is_empty(), "{fixed}");
        let before = Interp::new(&parse(src).unwrap()).call_ints("f", &[1]).unwrap();
        let after = Interp::new(&prog).call_ints("f", &[1]).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn while1_break_becomes_bounded() {
        let src = "
          int f(int n) {
            int x = 0;
            while (1) { x++; if (x >= n) break; }
            return x;
          }";
        let fixed = repaired(src, "irregular-exit");
        let prog = parse(&fixed).unwrap();
        assert!(hls_compat_scan(&prog).is_empty(), "{fixed}");
        assert_eq!(Interp::new(&prog).call_ints("f", &[7]).unwrap(), 7);
    }

    #[test]
    fn linear_recursion_becomes_loop() {
        let src = "
          int fact(int n) {
            if (n <= 1) return 1;
            return fact(n - 1) * n;
          }";
        let fixed = repaired(src, "recursion");
        let prog = parse(&fixed).unwrap();
        assert!(
            eda_cmini::recursive_functions(&prog).is_empty(),
            "recursion removed: {fixed}"
        );
        assert_eq!(Interp::new(&prog).call_ints("fact", &[6]).unwrap(), 720);
    }

    #[test]
    fn sum_recursion_becomes_loop() {
        let src = "
          int tri(int n) {
            if (n == 0) return 0;
            return tri(n - 1) + n;
          }";
        let fixed = repaired(src, "recursion");
        let prog = parse(&fixed).unwrap();
        assert!(eda_cmini::recursive_functions(&prog).is_empty());
        assert_eq!(Interp::new(&prog).call_ints("tri", &[10]).unwrap(), 55);
    }

    #[test]
    fn non_pattern_recursion_fails_gracefully() {
        let src = "
          int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
          }";
        let fixed = repaired(src, "recursion");
        // Two self-calls don't match the linear pattern: unchanged.
        assert!(!eda_cmini::recursive_functions(&parse(&fixed).unwrap()).is_empty());
    }

    #[test]
    fn low_capability_without_template_often_fails() {
        let src = r#"int f(int a) { printf("%d", a); return a; }"#;
        let mut failures = 0;
        for seed in 0..30 {
            let out = attempt_repair(
                src,
                "stdio",
                &RepairCtx { capability: 0.4, has_template: false },
                seed,
            );
            if out.contains("printf") {
                failures += 1;
            }
        }
        assert!(failures >= 10, "unguided weak repairs fail often: {failures}/30");
    }
}
