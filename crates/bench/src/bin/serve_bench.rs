//! `serve_bench` — open-loop load generator for the real-time serving
//! mode (EXPERIMENTS §E15).
//!
//! Drives the `serve::traffic` scenarios (steady / diurnal / burst /
//! tenant-churn) at a configurable offered QPS against
//! `serve_realtime`, then reports measured throughput, shed rates, and
//! per-priority-class p50/p99 wall latency (quantiles from `eda_obs`
//! log₂ histograms). A second phase runs the adaptive-admission
//! experiment: a saturating Batch stream with an Interactive stream on
//! top, with and without `AdaptiveAdmission`, showing Batch shed early
//! to hold the Interactive p99 SLO.
//!
//! Flags: `--quick` (CI smoke: tiny traces, seconds of wall time),
//! `--scenario <tag|all>`, `--qps <f64>`, `--jobs <n>`, `--workers <n>`,
//! `--no-adaptive`. Knobs: `EDA_SERVE_MODE` (`virtual` runs the
//! discrete-event scheduler on the same trace instead),
//! `EDA_SERVE_TARGET_QPS` (overrides `--qps`), `EDA_BENCH_QUICK`,
//! and `EDA_BENCH_WRITE=1` to (re)write `results/exp_serve_rt.json`.

use eda_bench::{banner, format_table, write_json};
use eda_llm::{ModelSpec, SimulatedLlm};
use eda_obs::Hist;
use eda_serve::{
    generate_scenario, serve_realtime, serve_trace_with, AdaptiveAdmission, FlowJob, FlowSpec,
    JobOutcome, Priority, RealTimeConfig, RtReport, Scenario, ServeConfig, ServeMode,
    TenantConfig, TrafficConfig,
};
use serde::Serialize;

#[derive(Debug)]
struct Args {
    quick: bool,
    scenarios: Vec<Scenario>,
    qps: f64,
    jobs: usize,
    workers: usize,
    adaptive: bool,
}

fn parse_args() -> Args {
    let mut a = Args {
        quick: false,
        scenarios: Scenario::ALL.to_vec(),
        qps: 0.0, // 0 = auto-calibrate to ~2x measured capacity
        jobs: 0,  // 0 = mode default
        workers: 4,
        adaptive: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let next = |i: &mut usize| -> String {
            *i += 1;
            argv.get(*i).cloned().unwrap_or_else(|| {
                eprintln!("missing value after {}", argv[*i - 1]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => a.quick = true,
            "--no-adaptive" => a.adaptive = false,
            "--scenario" => {
                let v = next(&mut i);
                a.scenarios = if v == "all" {
                    Scenario::ALL.to_vec()
                } else {
                    match Scenario::parse(&v) {
                        Some(s) => vec![s],
                        None => {
                            eprintln!("unknown scenario `{v}` (steady|diurnal|burst|tenant-churn|all)");
                            std::process::exit(2);
                        }
                    }
                };
            }
            "--qps" => a.qps = next(&mut i).parse().unwrap_or_else(|_| {
                eprintln!("--qps expects a number");
                std::process::exit(2);
            }),
            "--jobs" => a.jobs = next(&mut i).parse().unwrap_or_else(|_| {
                eprintln!("--jobs expects an integer");
                std::process::exit(2);
            }),
            "--workers" => a.workers = next(&mut i).parse().unwrap_or_else(|_| {
                eprintln!("--workers expects an integer");
                std::process::exit(2);
            }),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if eda_exec::parse_bool_knob("EDA_BENCH_QUICK").unwrap_or(None).unwrap_or(false) {
        a.quick = true;
    }
    if let Some(q) = eda_exec::parse_knob_in::<f64>(eda_serve::SERVE_TARGET_QPS_ENV, 0.01, 1e6)
        .unwrap_or_else(|e| panic!("{e}"))
    {
        a.qps = q;
    }
    a
}

/// A cheap, distinct-seeded interactive-class flow (a few ms of wall
/// work: one candidate, depth 1, tiny testbench).
fn cheap_flow(seed: u64) -> FlowSpec {
    FlowSpec::AutoChip { problem: "mux2".into(), k: 1, depth: 1, tb_vectors: 8, seed }
}

/// A heavy flow for the Batch head-of-line experiment. SLT generation
/// always runs its full virtual-hours budget (a strong model cannot
/// finish it early the way it one-shots a small AutoChip problem), so
/// its wall cost is stable at tens of ms — enough to visibly block an
/// Interactive job behind a running Batch job on a saturated worker.
fn heavy_flow(seed: u64) -> FlowSpec {
    FlowSpec::Slt { virtual_hours: 0.05, seed }
}

/// Single-tenant config with generous caps: the bench measures the
/// scheduler and workers, not per-tenant shedding.
fn wide_open(coalesce: bool) -> ServeConfig {
    ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 1, 4096)],
        max_backlog: 8192,
        coalesce,
        ..Default::default()
    }
}

/// Measures mean wall service of a flow by running a few jobs back to
/// back on one worker with no offered-load gap.
fn calibrate_service_us(model: &SimulatedLlm, flow_of: fn(u64) -> FlowSpec, n: usize) -> u64 {
    let jobs: Vec<FlowJob> = (0..n as u64)
        .map(|i| FlowJob {
            id: i,
            tenant: "alpha".into(),
            priority: Priority::Standard,
            arrival_us: 0,
            deadline_us: 0,
            flow: flow_of(1000 + i),
        })
        .collect();
    let rt = RealTimeConfig { workers: 1, adaptive: None };
    let r = serve_realtime(model, &jobs, &wide_open(false), &rt);
    let served: Vec<u64> = r
        .jobs
        .iter()
        .filter_map(|j| match j.outcome {
            JobOutcome::Completed { service_us, .. } => Some(service_us),
            _ => None,
        })
        .collect();
    (served.iter().sum::<u64>() / served.len().max(1) as u64).max(100)
}

#[derive(Serialize)]
struct ClassRow {
    class: String,
    completed: u64,
    p50_us: u64,
    p99_us: u64,
}

#[derive(Serialize)]
struct ScenarioResult {
    scenario: String,
    offered_qps: f64,
    jobs: usize,
    completed: u64,
    shed: u64,
    expired: u64,
    throughput_per_s: f64,
    wall_elapsed_us: u64,
    classes: Vec<ClassRow>,
}

/// Per-class p50/p99 through `eda_obs::Hist` (log₂-bucket quantiles —
/// the same histogram the obs layer aggregates in virtual runs).
fn class_rows(r: &RtReport) -> Vec<ClassRow> {
    Priority::ALL
        .iter()
        .map(|&prio| {
            let mut h = Hist::new();
            let mut completed = 0u64;
            for rec in &r.jobs {
                if rec.priority != prio {
                    continue;
                }
                if let JobOutcome::Completed { finish_us, .. } = rec.outcome {
                    h.observe(finish_us.saturating_sub(rec.arrival_us));
                    completed += 1;
                }
            }
            ClassRow {
                class: prio.class_name().to_string(),
                completed,
                p50_us: h.quantile_us(0.50),
                p99_us: h.quantile_us(0.99),
            }
        })
        .collect()
}

fn run_scenarios(args: &Args, model: &SimulatedLlm, qps: f64) -> Vec<ScenarioResult> {
    banner("E15.1 scenario sweep (real-time, open loop)");
    let jobs_n = if args.jobs > 0 {
        args.jobs
    } else if args.quick {
        16
    } else {
        72
    };
    let mut results = Vec::new();
    for &s in &args.scenarios {
        let mut cfg = TrafficConfig {
            jobs: jobs_n,
            mean_interarrival_us: ((1e6 / qps) as u64).max(1),
            duplicate_rate: 0.35,
            deadline_us: (2_000_000, 5_000_000),
            seed: 17,
            ..Default::default()
        };
        cfg.tenants = vec![
            ("alpha".to_string(), 3.0),
            ("beta".to_string(), 2.0),
            ("gamma".to_string(), 1.0),
        ];
        let mut trace = generate_scenario(s, &cfg);
        if args.quick {
            // Keep every job cheap so the CI smoke stays in seconds.
            for (i, j) in trace.iter_mut().enumerate() {
                j.flow = cheap_flow(5000 + i as u64);
            }
        }
        let rt = RealTimeConfig { workers: args.workers, adaptive: None };
        let serve_cfg = ServeConfig { max_backlog: 256, ..Default::default() };
        let r = serve_realtime(model, &trace, &serve_cfg, &rt);
        let shed = r.stats.rejected_queue_full
            + r.stats.rejected_overloaded
            + r.stats.rejected_unknown_tenant;
        results.push(ScenarioResult {
            scenario: s.tag().to_string(),
            offered_qps: qps,
            jobs: trace.len(),
            completed: r.stats.completed,
            shed,
            expired: r.stats.expired,
            throughput_per_s: r.throughput_per_s,
            wall_elapsed_us: r.wall_elapsed_us,
            classes: class_rows(&r),
        });
    }
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            let c = |name: &str| r.classes.iter().find(|x| x.class == name);
            vec![
                r.scenario.clone(),
                format!("{:.1}", r.offered_qps),
                r.completed.to_string(),
                r.shed.to_string(),
                r.expired.to_string(),
                format!("{:.1}", r.throughput_per_s),
                c("Interactive").map_or("-".into(), |x| format!("{}/{}", x.p50_us, x.p99_us)),
                c("Standard").map_or("-".into(), |x| format!("{}/{}", x.p50_us, x.p99_us)),
                c("Batch").map_or("-".into(), |x| format!("{}/{}", x.p50_us, x.p99_us)),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["scenario", "qps", "done", "shed", "exp", "jobs/s", "I p50/p99us", "S p50/p99us", "B p50/p99us"],
            &rows
        )
    );
    results
}

#[derive(Serialize)]
struct AdaptiveRun {
    adaptive: bool,
    interactive_p99_us: u64,
    interactive_p99_steady_us: u64,
    batch_completed: u64,
    shed_adaptive: u64,
    throughput_per_s: f64,
}

#[derive(Serialize)]
struct AdaptiveResult {
    slo_us: u64,
    window: usize,
    off: AdaptiveRun,
    on: AdaptiveRun,
}

/// Interactive e2e p99, overall and over the steady-state tail (jobs
/// finishing after 40% of the wall run — excludes the pre-adaptation
/// warmup the controller needs to observe its first window).
fn interactive_p99(r: &RtReport) -> (u64, u64) {
    let cut = r.wall_elapsed_us * 2 / 5;
    let (mut all, mut steady) = (Vec::new(), Vec::new());
    for rec in &r.jobs {
        if rec.priority != Priority::Interactive {
            continue;
        }
        if let JobOutcome::Completed { finish_us, .. } = rec.outcome {
            let e2e = finish_us.saturating_sub(rec.arrival_us);
            all.push(e2e);
            if finish_us >= cut {
                steady.push(e2e);
            }
        }
    }
    let p99 = |mut v: Vec<u64>| -> u64 {
        if v.is_empty() {
            return 0;
        }
        v.sort_unstable();
        let rank = ((v.len() * 99).div_ceil(100)).max(1);
        v[rank - 1]
    };
    (p99(all), p99(steady))
}

/// The adaptive-admission experiment: heavy Batch saturating the
/// workers with a light Interactive stream on top. Without adaptive
/// admission, every Interactive arrival risks head-of-line blocking
/// behind a running Batch job; with it, Batch is shed once the
/// Interactive p99 window drifts past the SLO, and the Interactive tail
/// recovers to its own service time.
fn run_adaptive(args: &Args, model: &SimulatedLlm) -> AdaptiveResult {
    banner("E15.2 adaptive admission under Batch overload");
    let s_int = calibrate_service_us(model, cheap_flow, if args.quick { 4 } else { 8 });
    let s_batch = calibrate_service_us(model, heavy_flow, if args.quick { 3 } else { 6 });
    println!("calibration: interactive ~{s_int}us, batch ~{s_batch}us per job");

    let workers = 2usize;
    // Batch offered at 2x the 2-worker capacity; 4 Interactive jobs per
    // batch period keep the Interactive load light on its own.
    let batch_gap = (s_batch / (2 * workers as u64)).max(200);
    let int_gap = (s_batch / 8).max(100);
    let periods = if args.quick { 10 } else { 30 };
    let mut jobs: Vec<FlowJob> = Vec::new();
    let mut id = 0u64;
    for p in 0..periods {
        for b in 0..2u64 {
            jobs.push(FlowJob {
                id,
                tenant: "alpha".into(),
                priority: Priority::Batch,
                arrival_us: p as u64 * 2 * batch_gap + b * batch_gap,
                deadline_us: 0,
                flow: heavy_flow(9000 + id),
            });
            id += 1;
        }
        for k in 0..4u64 {
            jobs.push(FlowJob {
                id,
                tenant: "alpha".into(),
                priority: Priority::Interactive,
                arrival_us: p as u64 * 2 * batch_gap + k * int_gap,
                deadline_us: 0,
                flow: cheap_flow(40_000 + id),
            });
            id += 1;
        }
    }
    // SLO: well under one batch service (the head-of-line worst case),
    // well above the interactive service floor.
    let slo_us = (s_batch / 3).max(s_int * 4).max(2_000);
    let window = 16usize;
    let cfg = wide_open(false);

    let run = |adaptive: bool| -> AdaptiveRun {
        let rt = RealTimeConfig {
            workers,
            adaptive: adaptive.then_some(AdaptiveAdmission {
                interactive_p99_slo_us: slo_us,
                window,
            }),
        };
        let r = serve_realtime(model, &jobs, &cfg, &rt);
        let (p99_all, p99_steady) = interactive_p99(&r);
        let batch_completed = r
            .jobs
            .iter()
            .filter(|j| {
                j.priority == Priority::Batch
                    && matches!(j.outcome, JobOutcome::Completed { .. })
            })
            .count() as u64;
        AdaptiveRun {
            adaptive,
            interactive_p99_us: p99_all,
            interactive_p99_steady_us: p99_steady,
            batch_completed,
            shed_adaptive: r.shed_adaptive,
            throughput_per_s: r.throughput_per_s,
        }
    };
    let off = run(false);
    let on = run(true);
    println!(
        "{}",
        format_table(
            &["adaptive", "I p99 us", "I p99 steady us", "batch done", "batch shed", "jobs/s"],
            &[
                vec![
                    "off".into(),
                    off.interactive_p99_us.to_string(),
                    off.interactive_p99_steady_us.to_string(),
                    off.batch_completed.to_string(),
                    off.shed_adaptive.to_string(),
                    format!("{:.1}", off.throughput_per_s),
                ],
                vec![
                    "on".into(),
                    on.interactive_p99_us.to_string(),
                    on.interactive_p99_steady_us.to_string(),
                    on.batch_completed.to_string(),
                    on.shed_adaptive.to_string(),
                    format!("{:.1}", on.throughput_per_s),
                ],
            ]
        )
    );
    println!(
        "SLO {slo_us}us: steady-state Interactive p99 {} -> {}us, batch shed {}",
        off.interactive_p99_steady_us, on.interactive_p99_steady_us, on.shed_adaptive
    );
    AdaptiveResult { slo_us, window, off, on }
}

#[derive(Serialize)]
struct E15Report {
    experiment: String,
    mode: String,
    quick: bool,
    workers: usize,
    scenarios: Vec<ScenarioResult>,
    adaptive: Option<AdaptiveResult>,
}

fn main() {
    let args = parse_args();
    let model = SimulatedLlm::new(ModelSpec::ultra());
    let mode = eda_serve::mode_from_env().unwrap_or_else(|e| panic!("{e}"));

    if mode == ServeMode::Virtual {
        // Virtual mode through the same knob: the deterministic
        // discrete-event scheduler on the steady trace, for comparison.
        banner("serve_bench (EDA_SERVE_MODE=virtual)");
        let cfg = TrafficConfig { jobs: 24, seed: 17, ..Default::default() };
        let trace = generate_scenario(Scenario::Steady, &cfg);
        let r = serve_trace_with(
            &model,
            &trace,
            &ServeConfig::default(),
            &eda_exec::Engine::from_env(),
        );
        println!(
            "virtual: completed {} of {} submitted, {:.1} jobs/virtual-hour, p99 wait {}us",
            r.stats.completed, r.stats.submitted, r.stats.throughput_per_hour, r.stats.p99_wait_us
        );
        return;
    }

    // Offered QPS: explicit flag/knob, else ~2x measured single-worker
    // capacity of the cheap flow scaled to the worker count.
    let qps = if args.qps > 0.0 {
        args.qps
    } else {
        let s_int = calibrate_service_us(&model, cheap_flow, if args.quick { 4 } else { 8 });
        2.0 * args.workers as f64 * 1e6 / s_int as f64
    };

    let scenarios = run_scenarios(&args, &model, qps);
    let adaptive = args.adaptive.then(|| run_adaptive(&args, &model));

    // Smoke assertions (the CI `--quick` contract): nonzero measured
    // throughput and a well-formed per-class report for every scenario.
    for s in &scenarios {
        assert!(s.completed > 0, "scenario {} completed no jobs", s.scenario);
        assert!(s.throughput_per_s > 0.0, "scenario {} reports zero throughput", s.scenario);
        assert_eq!(s.classes.len(), 3, "scenario {} class rows malformed", s.scenario);
        let done: u64 = s.classes.iter().map(|c| c.completed).sum();
        assert_eq!(done, s.completed, "scenario {} class rows disagree with stats", s.scenario);
    }
    if let Some(ad) = &adaptive {
        assert!(
            ad.on.shed_adaptive > 0,
            "adaptive admission shed no Batch under 2x overload"
        );
    }

    let report = E15Report {
        experiment: "E15 real-time serving (serve_bench)".to_string(),
        mode: "realtime".to_string(),
        quick: args.quick,
        workers: args.workers,
        scenarios,
        adaptive,
    };
    if eda_exec::parse_bool_knob("EDA_BENCH_WRITE").unwrap_or(None).unwrap_or(false) {
        write_json("exp_serve_rt", &report);
    }
    println!("serve_bench: ok");
}
