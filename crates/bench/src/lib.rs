//! # eda-bench — experiment harnesses and shared reporting utilities
//!
//! Each `benches/exp_*.rs` target regenerates one experiment from the
//! paper's evaluation content (see DESIGN.md's experiment index E1–E9):
//! run `cargo bench --bench exp_autochip` etc., or `cargo bench` for all.
//! Results print as aligned tables and are also dumped to
//! `results/<experiment>.json` at the workspace root so EXPERIMENTS.md
//! numbers stay regenerable artifacts.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders an aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        write!(line, "{h:<w$}  ").unwrap();
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
    out.push_str(&"-".repeat(total.min(120)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            write!(line, "{c:<w$}  ").unwrap();
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Workspace-root `results/` directory.
pub fn results_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates
    p.pop(); // workspace root
    p.push("results");
    p
}

/// Writes an experiment result as pretty JSON to `results/<name>.json`.
/// Failures are reported to stderr but never abort an experiment.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[results -> {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: serialize {name}: {e}"),
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = format_table(
            &["model", "pass"],
            &[
                vec!["sim-ultra-4o".into(), "0.93".into()],
                vec!["x".into(), "0.1".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("model"));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn mean_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn results_dir_points_into_workspace() {
        assert!(results_dir().ends_with("results"));
    }
}
