//! E6 — HLSTester: behavioral-discrepancy testing efficiency
//! (paper Fig. 3).
//!
//! Over the discrepancy corpus, compares three configurations under the
//! same hardware-simulation budget:
//! * full pipeline (spectra-guided LLM reasoning + redundancy filter),
//! * no redundancy filter,
//! * random testing (no LLM reasoning, no filter).
//!
//! Paper-shaped expectation: the full pipeline finds at least as many
//! discrepancy-triggering inputs while spending fewer hardware
//! simulations (the filter "skips repeated hardware simulations").

use eda_bench::{banner, format_table, write_json};
use eda_hlstester::{discrepancy_corpus, run_hlstester, HlsTesterConfig};
use eda_llm::{ModelSpec, SimulatedLlm};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    budget: usize,
    config: String,
    cases_detected: usize,
    total_cases: usize,
    triggering_inputs: usize,
    hw_sims: usize,
    hw_skipped: usize,
}

fn main() {
    banner("E6: HLSTester — discrepancies found vs hardware simulations (Fig. 3)");
    let model = SimulatedLlm::new(ModelSpec::pro());
    let cases: Vec<_> = discrepancy_corpus()
        .into_iter()
        .filter(|c| c.id != "clean-saturate")
        .collect();
    let seeds = [1u64, 2, 3];
    let variants: [(&str, bool, bool); 3] = [
        ("full (LLM + filter)", true, true),
        ("no redundancy filter", true, false),
        ("random testing", false, false),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    // Sweep the hardware-simulation budget: guidance and filtering matter
    // most when hardware runs are scarce.
    for budget in [8usize, 16, 40] {
        for (name, llm, filter) in variants {
            let mut detected = 0usize;
            let mut inputs = 0usize;
            let mut sims = 0usize;
            let mut skipped = 0usize;
            let mut total = 0usize;
            for case in &cases {
                for &seed in &seeds {
                    let r = run_hlstester(
                        &model,
                        case.source,
                        case.func,
                        &HlsTesterConfig {
                            llm_reasoning: llm,
                            redundancy_filter: filter,
                            hw_sim_budget: budget,
                            seed,
                            ..Default::default()
                        },
                    )
                    .expect("corpus case synthesizes");
                    total += 1;
                    detected += (!r.discrepancies.is_empty()) as usize;
                    inputs += r.triggering_inputs;
                    sims += r.hw_sims_run;
                    skipped += r.hw_sims_skipped;
                }
            }
            rows.push(vec![
                budget.to_string(),
                name.to_string(),
                format!("{detected}/{total}"),
                inputs.to_string(),
                sims.to_string(),
                skipped.to_string(),
            ]);
            json.push(Row {
                budget,
                config: name.to_string(),
                cases_detected: detected,
                total_cases: total,
                triggering_inputs: inputs,
                hw_sims: sims,
                hw_skipped: skipped,
            });
        }
    }
    println!(
        "{}",
        format_table(
            &["budget", "configuration", "detected", "triggering inputs", "hw sims", "skipped"],
            &rows
        )
    );
    if let (Some(full), Some(rand)) = (
        json.iter().find(|r| r.budget == 8 && r.config.starts_with("full")),
        json.iter().find(|r| r.budget == 8 && r.config.starts_with("random")),
    ) {
        println!(
            "shape check @budget 8: full detects {}/{} vs random {}/{}",
            full.cases_detected, full.total_cases, rand.cases_detected, rand.total_cases
        );
    }
    write_json("exp_hlstester", &json);
}
