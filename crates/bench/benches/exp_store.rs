//! E13 — Persistent store: duplicate rate × cache size → hit rate,
//! latency, and cost curves.
//!
//! A serving deployment sees heavily duplicated work: the same problems
//! resubmitted with the same seeds (reruns, CI, fleets of similar
//! jobs). This experiment replays a schedule of AutoChip runs whose
//! *duplicate rate* (fraction of runs repeating an earlier
//! problem/seed pair) is swept against three store size budgets, three
//! ways each:
//!
//! * **baseline** — no store installed;
//! * **cold**     — a fresh store populated during the pass (duplicates
//!   *within* the schedule already hit);
//! * **warm**     — the same schedule replayed against the populated
//!   store (a process restart with the cache intact).
//!
//! Reported per cell: simulator evaluations and raw transport sends
//! (the two cost drivers), the store hit rate, evictions under the
//! tight budget, virtual LLM cost, and wall-clock. The headline
//! acceptance bar is asserted at the bottom: at duplicate rate 0.6
//! within a bounded budget, warm-run eval + transport calls shrink at
//! least 2× versus the cold pass.
//!
//! `EDA_BENCH_QUICK=1` trims the sweep for CI smoke runs.

use eda_autochip::{run_autochip, AutoChipConfig};
use eda_bench::{banner, format_table, write_json};
use eda_exec::backing;
use eda_llm::{ModelSpec, SimulatedLlm};
use eda_store::{EvictionPolicy, Store, StoreConfig};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;

#[derive(Serialize)]
struct Row {
    duplicate_rate: f64,
    store_budget: String,
    runs: usize,
    baseline_evals: u64,
    baseline_transport_sends: u64,
    cold_evals: u64,
    cold_transport_sends: u64,
    warm_evals: u64,
    warm_transport_sends: u64,
    warm_hit_rate: f64,
    evictions: u64,
    virtual_hours: f64,
    cold_wall_ms: u64,
    warm_wall_ms: u64,
}

const PROBLEMS: [&str; 4] = ["mux2", "alu8", "counter4", "lfsr8"];

/// Deterministic schedule of (problem, seed) jobs: each position is a
/// repeat of an earlier job with probability `dup_rate`, else fresh.
fn schedule(dup_rate: f64, runs: usize) -> Vec<(&'static str, u64)> {
    let mut jobs: Vec<(&'static str, u64)> = Vec::with_capacity(runs);
    let mut state: u64 = 0x9e37_79b9 ^ (dup_rate * 1e6) as u64;
    let mut draw = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for i in 0..runs {
        if !jobs.is_empty() && draw() < dup_rate {
            let pick = (draw() * jobs.len() as f64) as usize % jobs.len();
            jobs.push(jobs[pick]);
        } else {
            jobs.push((PROBLEMS[i % PROBLEMS.len()], 100 + i as u64));
        }
    }
    jobs
}

/// Runs the schedule; returns (simulator evaluations, transport sends,
/// virtual us, wall ms). Evaluations are `exec.cache_misses` — candidate
/// scorings that actually ran the simulator. (`tasks_run` would also
/// count candidate-*generation* tasks, which run regardless of any
/// cache.) Flow outcomes are identical in every arm (the invisibility
/// property, pinned by `tests/store.rs`); only the work counts differ.
fn run_schedule(jobs: &[(&'static str, u64)]) -> (u64, u64, u64, u64) {
    let model = SimulatedLlm::new(ModelSpec::ultra());
    let started = std::time::Instant::now();
    let (mut evals, mut sends, mut vus) = (0u64, 0u64, 0u64);
    for &(pid, seed) in jobs {
        let problem = eda_suite::problem(pid).expect("known problem");
        let cfg = AutoChipConfig {
            k_candidates: 2,
            max_depth: 2,
            temperature: 0.8,
            seed,
            ..Default::default()
        };
        let r = run_autochip(&model, &problem, &cfg).expect("suite testbench");
        evals += r.exec.cache_misses;
        sends += r.llm.transport_sends;
        vus += r.llm.virtual_time_us;
    }
    (evals, sends, vus, started.elapsed().as_millis() as u64)
}

fn open_store(dir: &Path, max_bytes: u64) -> Arc<Store> {
    let cfg = StoreConfig {
        dir: dir.to_path_buf(),
        max_bytes,
        policy: EvictionPolicy::Lru,
    };
    Arc::new(Store::open(cfg).expect("store opens").0)
}

fn main() {
    banner("E13: persistent store — duplicate rate × cache size");
    let quick = eda_exec::parse_bool_knob("EDA_BENCH_QUICK")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(false);
    let dup_rates: &[f64] = if quick { &[0.0, 0.6] } else { &[0.0, 0.3, 0.6, 0.9] };
    let runs = if quick { 8 } else { 16 };
    // Budgets: tight enough that the distinct working set (~30-50KB at
    // low duplicate rates) churns, comfortable, and unbounded.
    let budgets: &[(&str, u64)] =
        if quick { &[("64KiB", 64 << 10), ("unbounded", 0)] } else {
            &[("4KiB", 4 << 10), ("256KiB", 256 << 10), ("unbounded", 0)]
        };

    let root = std::env::temp_dir().join(format!("eda-exp-store-{}", std::process::id()));
    let mut rows: Vec<Row> = Vec::new();
    let mut table = Vec::new();

    for &dup in dup_rates {
        let jobs = schedule(dup, runs);
        backing::uninstall();
        let (base_evals, base_sends, _, _) = run_schedule(&jobs);

        for &(label, max_bytes) in budgets {
            let dir = root.join(format!("d{}-{}", (dup * 100.0) as u32, label));
            let _ = std::fs::remove_dir_all(&dir);

            let store = open_store(&dir, max_bytes);
            backing::install(store.clone());
            let (cold_evals, cold_sends, _, cold_ms) = run_schedule(&jobs);
            let cold_stats = store.stats();
            let (warm_evals, warm_sends, vus, warm_ms) = run_schedule(&jobs);
            let warm_stats = store.stats().since(&cold_stats);
            backing::uninstall();

            let warm_hit_rate =
                warm_stats.hits as f64 / (warm_stats.hits + warm_stats.misses).max(1) as f64;
            table.push(vec![
                format!("{dup:.1}"),
                label.to_string(),
                format!("{base_evals}/{base_sends}"),
                format!("{cold_evals}/{cold_sends}"),
                format!("{warm_evals}/{warm_sends}"),
                format!("{:.2}", warm_hit_rate),
                format!("{}", store.stats().evictions),
                format!("{cold_ms}/{warm_ms}"),
            ]);
            rows.push(Row {
                duplicate_rate: dup,
                store_budget: label.to_string(),
                runs,
                baseline_evals: base_evals,
                baseline_transport_sends: base_sends,
                cold_evals,
                cold_transport_sends: cold_sends,
                warm_evals,
                warm_transport_sends: warm_sends,
                warm_hit_rate,
                evictions: store.stats().evictions,
                virtual_hours: vus as f64 / 3.6e9,
                cold_wall_ms: cold_ms,
                warm_wall_ms: warm_ms,
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    let _ = std::fs::remove_dir_all(&root);

    println!("cell format: simulator-evals/transport-sends (baseline, cold, warm)\n");
    println!(
        "{}",
        format_table(
            &["dup", "budget", "baseline", "cold", "warm", "hit", "evict", "wall cold/warm ms"],
            &table
        )
    );

    // Acceptance bar: at duplicate rate 0.6 within a bounded budget the
    // warm pass must do at least 2x less eval + transport work.
    for r in rows.iter().filter(|r| r.duplicate_rate == 0.6 && r.store_budget != "4KiB") {
        let cold = (r.cold_evals + r.cold_transport_sends) as f64;
        let warm = (r.warm_evals + r.warm_transport_sends).max(1) as f64;
        assert!(
            cold / warm >= 2.0,
            "E13 acceptance: warm eval+transport work must shrink >=2x at dup 0.6 ({} budget): cold {cold} warm {warm}",
            r.store_budget
        );
    }
    write_json("exp_store", &rows);
}
