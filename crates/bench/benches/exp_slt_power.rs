//! E3 — SLT power optimization: LLM loop vs. genetic programming
//! (paper Section V + Fig. 5).
//!
//! Reproduced claims:
//! * the 24-virtual-hour LLM loop produces ≈2000 snippets (paper: 2021);
//! * GP runs 39 virtual hours and reaches a *higher* best power;
//! * the LLM plateaus early while GP keeps improving past 24 h;
//! * the fine-tuned model outperforms the off-the-shelf one.
//!
//! Absolute watts come from the calibrated OOO power model (BOOM-class
//! range); the comparison shape is the reproduced result.

use eda_bench::{banner, format_table, write_json};
use eda_llm::{ModelSpec, SimulatedLlm};
use eda_sltgen::{run_gp, run_slt_llm, GpConfig, SltConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    approach: String,
    virtual_hours: f64,
    evaluations: usize,
    zero_scores: usize,
    best_power_w: f64,
    history: Vec<(f64, f64)>,
}

fn checkpoints(history: &[(f64, f64)], at: &[f64]) -> Vec<f64> {
    at.iter()
        .map(|h| {
            history
                .iter()
                .take_while(|(t, _)| t <= h)
                .map(|(_, b)| *b)
                .fold(0.0, f64::max)
        })
        .collect()
}

fn main() {
    banner("E3: SLT power hunt — LLM (24 vh) vs GP (39 vh)");

    let llm = SimulatedLlm::new(ModelSpec::code_llama_ft());
    let llm_run = run_slt_llm(&llm, &SltConfig { virtual_hours: 24.0, seed: 1, ..Default::default() });
    let raw = SimulatedLlm::new(ModelSpec::code_llama_raw());
    let raw_run = run_slt_llm(&raw, &SltConfig { virtual_hours: 24.0, seed: 1, ..Default::default() });
    let gp_run = run_gp(&GpConfig { virtual_hours: 39.0, seed: 1, ..Default::default() });

    let rows = vec![
        vec![
            "LLM fine-tuned (CL-34B-ft)".to_string(),
            "24.0".to_string(),
            llm_run.run.evaluations.to_string(),
            llm_run.run.zero_scores.to_string(),
            format!("{:.3}", llm_run.run.best_power_w),
        ],
        vec![
            "LLM off-the-shelf (CL-34B)".to_string(),
            "24.0".to_string(),
            raw_run.run.evaluations.to_string(),
            raw_run.run.zero_scores.to_string(),
            format!("{:.3}", raw_run.run.best_power_w),
        ],
        vec![
            "GP (assembly)".to_string(),
            "39.0".to_string(),
            gp_run.evaluations.to_string(),
            gp_run.zero_scores.to_string(),
            format!("{:.3}", gp_run.best_power_w),
        ],
    ];
    println!(
        "{}",
        format_table(
            &["approach", "virtual h", "snippets", "zero-score", "best power (W)"],
            &rows
        )
    );

    // Power-vs-time series (the Fig. 5 loop's observable behaviour).
    let marks = [1.0, 2.0, 4.0, 8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 36.0, 39.0];
    let llm_cp = checkpoints(&llm_run.run.history, &marks);
    let gp_cp = checkpoints(&gp_run.history, &marks);
    let series: Vec<Vec<String>> = marks
        .iter()
        .zip(llm_cp.iter().zip(&gp_cp))
        .map(|(h, (l, g))| {
            vec![
                format!("{h:>4.0}"),
                if *h <= 24.0 { format!("{l:.3}") } else { "-".into() },
                format!("{g:.3}"),
            ]
        })
        .collect();
    println!("{}", format_table(&["hour", "LLM best (W)", "GP best (W)"], &series));

    let delta = gp_run.best_power_w - llm_run.run.best_power_w;
    println!(
        "paper: LLM 2021 snippets best 5.042 W; GP (39 h) best 5.682 W; delta 0.640 W"
    );
    println!(
        "ours : LLM {} snippets best {:.3} W; GP best {:.3} W; delta {:.3} W",
        llm_run.run.evaluations, llm_run.run.best_power_w, gp_run.best_power_w, delta
    );
    // Plateau check: LLM improvement in the last 8 hours vs first 8.
    let llm_early = checkpoints(&llm_run.run.history, &[8.0])[0];
    let llm_late = llm_run.run.best_power_w - checkpoints(&llm_run.run.history, &[16.0])[0];
    println!(
        "plateau check: LLM gained {:.3} W by hour 8, only {:.3} W after hour 16",
        llm_early, llm_late
    );
    // GP keeps improving after 24h?
    let gp_at_24 = checkpoints(&gp_run.history, &[24.0])[0];
    println!(
        "GP after 24 h: {:.3} W -> {:.3} W at 39 h (still improving: {})",
        gp_at_24,
        gp_run.best_power_w,
        gp_run.best_power_w > gp_at_24 + 1e-6
    );

    let out = vec![
        Summary {
            approach: "llm-finetuned".into(),
            virtual_hours: 24.0,
            evaluations: llm_run.run.evaluations,
            zero_scores: llm_run.run.zero_scores,
            best_power_w: llm_run.run.best_power_w,
            history: llm_run.run.history.clone(),
        },
        Summary {
            approach: "llm-off-the-shelf".into(),
            virtual_hours: 24.0,
            evaluations: raw_run.run.evaluations,
            zero_scores: raw_run.run.zero_scores,
            best_power_w: raw_run.run.best_power_w,
            history: raw_run.run.history.clone(),
        },
        Summary {
            approach: "gp-assembly".into(),
            virtual_hours: 39.0,
            evaluations: gp_run.evaluations,
            zero_scores: gp_run.zero_scores,
            best_power_w: gp_run.best_power_w,
            history: gp_run.history.clone(),
        },
    ];
    write_json("exp_slt_power", &out);
}
