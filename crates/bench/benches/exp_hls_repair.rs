//! E5 — HLS-Repair pipeline (paper Fig. 2) with RAG ablation.
//!
//! Per-stage success over the broken-program corpus: programs whose
//! repaired form passes the HLS front end (stage 2), and of those, the
//! fraction verified functionally equivalent to the original C
//! (stage 3). Retrieval-augmented prompts versus unguided repair is the
//! headline ablation ("retrieved correction templates ... effectively
//! guide the LLM towards accurate C program repairs").

use eda_bench::{banner, format_table, write_json};
use eda_llm::{ModelSpec, SimulatedLlm};
use eda_repair::{corpus, run_repair, RepairConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    rag: bool,
    programs: usize,
    compiles: usize,
    equivalent: usize,
    mean_rounds: f64,
}

fn main() {
    banner("E5: HLS program repair — per-stage success and RAG ablation (Fig. 2)");
    let programs = corpus();
    let broken: Vec<_> = programs.iter().filter(|p| !p.seeded_kinds.is_empty()).collect();
    let seeds = [1u64, 2, 3];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for spec in [ModelSpec::coder(), ModelSpec::ultra()] {
        for use_rag in [true, false] {
            let model = SimulatedLlm::new(spec.clone());
            let mut compiles = 0usize;
            let mut equivalent = 0usize;
            let mut rounds = 0usize;
            let mut total = 0usize;
            for p in &broken {
                for &seed in &seeds {
                    let r = run_repair(
                        &model,
                        p.source,
                        p.func,
                        &RepairConfig { use_rag, seed, ..Default::default() },
                    );
                    total += 1;
                    compiles += r.final_compiles as usize;
                    equivalent += matches!(r.equivalent, Some(true)) as usize;
                    rounds += r.rounds.len();
                }
            }
            rows.push(vec![
                spec.name.clone(),
                if use_rag { "yes" } else { "no" }.to_string(),
                format!("{compiles}/{total}"),
                format!("{equivalent}/{total}"),
                format!("{:.1}", rounds as f64 / total as f64),
            ]);
            json.push(Row {
                model: spec.name.clone(),
                rag: use_rag,
                programs: total,
                compiles,
                equivalent,
                mean_rounds: rounds as f64 / total as f64,
            });
        }
    }
    println!(
        "{}",
        format_table(
            &["model", "RAG", "stage2 compiles", "stage3 equivalent", "mean rounds"],
            &rows
        )
    );
    // Shape check: RAG beats no-RAG for both tiers.
    for pair in json.chunks(2) {
        if let [with, without] = pair {
            println!(
                "shape check [{}]: RAG {}/{} vs no-RAG {}/{}",
                with.model, with.compiles, with.programs, without.compiles, without.programs
            );
        }
    }
    write_json("exp_hls_repair", &json);
}
