//! E16 — cluster cache topology: what sharding costs, what a shared
//! store buys back.
//!
//! The single-node serving layer coalesces duplicate LLM work across
//! jobs (E11) and a persistent store extends that across runs (E13).
//! Sharding a cluster *partitions* those caches: two shards running the
//! same flow each pay the transport bill. This experiment sweeps the
//! duplicate rate over four topologies of a 4-shard cluster:
//!
//! 1. **baseline** — 1 shard: all coalescing benefits intact (the E11
//!    configuration, served through the cluster driver).
//! 2. **sharded**  — 4 shards, per-shard coalescing, per-shard stores:
//!    every cross-shard duplicate is paid again.
//! 3. **shared**   — 4 shards, per-shard coalescing over one shared
//!    completion tier: cross-shard duplicates collapse to one call.
//! 4. **global**   — 4 shards behind one cluster-wide coalescing layer:
//!    the upper bound (topology identical to baseline's cache view).
//!
//! The headline metric is transport requests (`cluster_llm.requests`).
//! **Recovery** = (sharded − shared) / (sharded − baseline): the share
//! of sharding's duplicate-work loss that the shared store wins back.
//! The run asserts recovery ≥ 0.5 at duplicate rate 0.6 (the ISSUE's
//! acceptance bar) and that virtual job outcomes are identical across
//! all four topologies — the cache layout is invisible to results.
//!
//! `EDA_BENCH_QUICK=1` (or `--quick`) trims the sweep for CI smoke.

use eda_bench::{banner, format_table, write_json};
use eda_cluster::{serve_cluster_with, ClusterConfig, CoalesceScope, StoreMode};
use eda_exec::Engine;
use eda_llm::{ModelSpec, SimulatedLlm};
use eda_serve::{generate_trace, ServeConfig, TenantConfig, TrafficConfig};
use serde::Serialize;

#[derive(Serialize)]
struct TopologyRow {
    duplicate_rate: f64,
    topology: &'static str,
    shards: usize,
    transport_requests: u64,
    coalesce_hits: u64,
    tier_hits: u64,
    completed: u64,
    outcomes_digest: u64,
}

#[derive(Serialize)]
struct RecoveryRow {
    duplicate_rate: f64,
    baseline_requests: u64,
    sharded_requests: u64,
    shared_requests: u64,
    global_requests: u64,
    /// Extra transport calls sharding added over the 1-shard baseline.
    sharding_loss: u64,
    /// Fraction of that loss the shared tier recovered.
    recovery: f64,
}

#[derive(Serialize)]
struct Json {
    topologies: Vec<TopologyRow>,
    recovery: Vec<RecoveryRow>,
}

/// FNV-1a over the serialized outcomes: cheap equality digest.
fn digest(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn topo_cfg(shards: usize, scope: CoalesceScope, store: StoreMode) -> ClusterConfig {
    ClusterConfig {
        shards,
        coalesce_scope: scope,
        store,
        base: ServeConfig {
            tenants: vec![
                TenantConfig::new("alpha", 3, 64),
                TenantConfig::new("beta", 2, 64),
                TenantConfig::new("gamma", 2, 64),
                TenantConfig::new("delta", 1, 64),
            ],
            workers: 2,
            max_backlog: 512,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn main() {
    let quick = eda_exec::parse_bool_knob("EDA_BENCH_QUICK")
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(false)
        || std::env::args().any(|a| a == "--quick");
    let engine = Engine::from_env();
    let model = SimulatedLlm::new(ModelSpec::ultra());

    banner("E16: cluster cache topology — duplicate rate × store/coalesce layout");
    let dup_rates: &[f64] = if quick { &[0.6] } else { &[0.0, 0.3, 0.6] };
    let jobs_n = if quick { 24 } else { 32 };

    let topologies: [(&'static str, usize, CoalesceScope, StoreMode); 4] = [
        ("baseline-1shard", 1, CoalesceScope::Shard, StoreMode::Sharded),
        ("sharded", 4, CoalesceScope::Shard, StoreMode::Sharded),
        ("shared-store", 4, CoalesceScope::Shard, StoreMode::Shared),
        ("global-coalesce", 4, CoalesceScope::Global, StoreMode::Shared),
    ];

    let mut topo_rows: Vec<TopologyRow> = Vec::new();
    let mut recovery_rows: Vec<RecoveryRow> = Vec::new();
    let mut table = Vec::new();

    for &dup in dup_rates {
        let trace = generate_trace(&TrafficConfig {
            jobs: jobs_n,
            duplicate_rate: dup,
            mean_interarrival_us: 900_000,
            seed: 29,
            tenants: vec![
                ("alpha".to_string(), 3.0),
                ("beta".to_string(), 2.0),
                ("gamma".to_string(), 2.0),
                ("delta".to_string(), 1.0),
            ],
            ..Default::default()
        });

        let mut requests_by_topo = [0u64; 4];
        let mut digests = Vec::new();
        for (t, &(name, shards, scope, store)) in topologies.iter().enumerate() {
            let cfg = topo_cfg(shards, scope, store);
            let r = serve_cluster_with(&model, &trace, &cfg, &engine);
            assert_eq!(
                r.router.lost_jobs, 0,
                "{name}@dup={dup}: the cluster must never lose a job"
            );
            let outcomes = serde_json::to_string(&r.merged.jobs).expect("serialize outcomes");
            let d = digest(&outcomes);
            digests.push(d);
            requests_by_topo[t] = r.cluster_llm.requests;
            topo_rows.push(TopologyRow {
                duplicate_rate: dup,
                topology: name,
                shards,
                transport_requests: r.cluster_llm.requests,
                coalesce_hits: r.coalesce.hits,
                tier_hits: r.tier.map_or(0, |t| t.hits),
                completed: r.merged.stats.completed,
                outcomes_digest: d,
            });
            table.push(vec![
                format!("{dup:.1}"),
                name.to_string(),
                shards.to_string(),
                r.cluster_llm.requests.to_string(),
                r.coalesce.hits.to_string(),
                r.tier.map_or(0, |t| t.hits).to_string(),
                r.merged.stats.completed.to_string(),
            ]);
        }
        // Cache topology must be invisible to outcomes at a fixed shard
        // count (the 1-shard baseline legitimately differs: fewer total
        // worker slots change waits, not results).
        assert!(
            digests[1..].iter().all(|&d| d == digests[1]),
            "dup={dup}: cache topology changed virtual outcomes: {digests:?}"
        );

        let [baseline, sharded, shared, global] = requests_by_topo;
        let loss = sharded.saturating_sub(baseline);
        let recovered = sharded.saturating_sub(shared);
        let recovery =
            if loss == 0 { 1.0 } else { (recovered.min(loss)) as f64 / loss as f64 };
        recovery_rows.push(RecoveryRow {
            duplicate_rate: dup,
            baseline_requests: baseline,
            sharded_requests: sharded,
            shared_requests: shared,
            global_requests: global,
            sharding_loss: loss,
            recovery,
        });
    }

    println!(
        "{}",
        format_table(
            &["dup", "topology", "shards", "transport", "coalesce hits", "tier hits", "done"],
            &table
        )
    );

    banner("E16 recovery: share of sharding's duplicate-work loss won back");
    let mut rec_table = Vec::new();
    for row in &recovery_rows {
        rec_table.push(vec![
            format!("{:.1}", row.duplicate_rate),
            row.baseline_requests.to_string(),
            row.sharded_requests.to_string(),
            row.shared_requests.to_string(),
            row.global_requests.to_string(),
            row.sharding_loss.to_string(),
            format!("{:.0}%", row.recovery * 100.0),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["dup", "1-shard", "sharded", "shared", "global", "loss", "recovery"],
            &rec_table
        )
    );

    // Acceptance: at the duplicate-heavy end, sharding must actually
    // cost transport work, and the shared tier must recover at least
    // half of it.
    let heavy = recovery_rows
        .iter()
        .find(|r| (r.duplicate_rate - 0.6).abs() < 1e-9)
        .expect("dup=0.6 arm present");
    assert!(
        heavy.sharding_loss > 0,
        "dup=0.6: sharding showed no duplicate-work loss — the experiment has no signal"
    );
    assert!(
        heavy.recovery >= 0.5,
        "dup=0.6: shared store recovered only {:.0}% of sharding's loss (bar: 50%)",
        heavy.recovery * 100.0
    );

    write_json("exp_cluster", &Json { topologies: topo_rows, recovery: recovery_rows });
}
