//! E9 — pragma-space PPA optimization (paper Fig. 2 stage 4).
//!
//! LLM-guided pragma search versus unguided random search over the same
//! iteration budget, on three HLS kernels. The objective is the usual
//! latency × area product; every accepted move must preserve functional
//! equivalence (behaviour-breaking pipeline pragmas are rejected by the
//! built-in co-simulation gate).

use eda_bench::{banner, format_table, write_json};
use eda_repair::optimize_ppa;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    kernel: String,
    strategy: String,
    initial_objective: f64,
    best_objective: f64,
    improvement_pct: f64,
    accepted_moves: usize,
    /// Mean iteration index at which the final best was reached (search
    /// efficiency: lower = found the optimum sooner).
    mean_iters_to_best: f64,
}

const KERNELS: [(&str, &str, &str); 3] = [
    (
        "dot32",
        "dot",
        "int dot(int a[32], int b[32]) {
           int s = 0;
           for (int i = 0; i < 32; i++) s += a[i] * b[i];
           return s;
         }",
    ),
    (
        "saxpy64",
        "saxpy",
        "void saxpy(int x[64], int y[64], int a) {
           for (int i = 0; i < 64; i++) y[i] = a * x[i] + y[i];
         }",
    ),
    (
        "conv3",
        "conv",
        "void conv(int x[32], int y[32]) {
           for (int i = 2; i < 32; i++) {
             y[i] = x[i] * 3 + x[i - 1] * 5 + x[i - 2] * 2;
           }
         }",
    ),
];

fn main() {
    banner("E9: pragma-space PPA optimization — guided vs random");
    let iterations = 12;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (id, func, src) in KERNELS {
        for (strategy, guided) in [("llm-guided", true), ("random", false)] {
            let mut best_impr = 0.0f64;
            let mut accepted = 0usize;
            let mut init = 0.0;
            let mut best = 0.0;
            let mut iters_to_best = Vec::new();
            for seed in 1..=3u64 {
                let r = optimize_ppa(src, func, iterations, guided, seed);
                let impr = if r.initial_objective.is_finite() && r.initial_objective > 0.0 {
                    (r.initial_objective - r.best_objective) / r.initial_objective * 100.0
                } else {
                    0.0
                };
                iters_to_best.push(
                    r.steps
                        .iter()
                        .filter(|s| s.accepted)
                        .map(|s| s.iteration + 1)
                        .max()
                        .unwrap_or(iterations) as f64,
                );
                if impr >= best_impr {
                    best_impr = impr;
                    init = r.initial_objective;
                    best = r.best_objective;
                    accepted = r.steps.iter().filter(|s| s.accepted).count();
                }
            }
            let mean_iters = iters_to_best.iter().sum::<f64>() / iters_to_best.len() as f64;
            rows.push(vec![
                id.to_string(),
                strategy.to_string(),
                format!("{init:.1}"),
                format!("{best:.1}"),
                format!("{best_impr:.1}%"),
                accepted.to_string(),
                format!("{mean_iters:.1}"),
            ]);
            json.push(Row {
                kernel: id.to_string(),
                strategy: strategy.to_string(),
                initial_objective: init,
                best_objective: best,
                improvement_pct: best_impr,
                accepted_moves: accepted,
                mean_iters_to_best: mean_iters,
            });
        }
    }
    println!(
        "{}",
        format_table(
            &["kernel", "strategy", "initial lat*area", "best lat*area", "improvement", "accepted", "iters-to-best"],
            &rows
        )
    );
    write_json("exp_ppa_opt", &json);
}
