//! E7 — VRank-style self-consistency ranking (paper Section II, [14]).
//!
//! For several problems and sampling temperatures, compares three
//! selection strategies on k sampled candidates:
//! * pass@1 of the *self-consistency* pick (largest behavioural cluster),
//! * pass@1 of a random pick (first candidate),
//! * pass@k (any candidate correct — the ceiling).
//!
//! Paper-shaped expectation: consistency ranking recovers much of the
//! pass@k headroom over random picking, especially at higher temperature
//! where candidates diversify.

use eda_bench::{banner, format_table, write_json};
use eda_llm::{ModelSpec, SimulatedLlm};
use eda_rank::{judge_selection, rank_candidates, RankConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    temperature: f64,
    consistency_pass1: f64,
    random_pass1: f64,
    pass_at_k: f64,
    runs: usize,
}

fn main() {
    banner("E7: self-consistency ranking of Verilog candidates (VRank)");
    let model = SimulatedLlm::new(ModelSpec::coder());
    let problems = ["parity8", "gray_encoder4", "alu8", "min_max8", "counter4", "popcount8"];
    let seeds = [1u64, 2, 3, 4];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for temperature in [0.4, 0.8, 1.2] {
        let mut cons = 0usize;
        let mut rand_pick = 0usize;
        let mut any = 0usize;
        let mut runs = 0usize;
        for pid in &problems {
            let problem = eda_suite::problem(pid).expect("known problem");
            for &seed in &seeds {
                let out = rank_candidates(
                    &model,
                    &problem,
                    &RankConfig { k: 16, temperature, seed, ..Default::default() },
                )
                .expect("suite testbench");
                let q = judge_selection(&out, &problem, 48, seed + 900).expect("judge");
                runs += 1;
                cons += q.consistency_pick_correct as usize;
                rand_pick += q.random_pick_correct as usize;
                any += q.any_correct as usize;
            }
        }
        rows.push(vec![
            format!("{temperature:.1}"),
            format!("{:.2}", cons as f64 / runs as f64),
            format!("{:.2}", rand_pick as f64 / runs as f64),
            format!("{:.2}", any as f64 / runs as f64),
        ]);
        json.push(Row {
            temperature,
            consistency_pass1: cons as f64 / runs as f64,
            random_pass1: rand_pick as f64 / runs as f64,
            pass_at_k: any as f64 / runs as f64,
            runs,
        });
    }
    println!(
        "{}",
        format_table(
            &["temp", "consistency pass@1", "random pass@1", "pass@k (ceiling)"],
            &rows
        )
    );
    write_json("exp_vrank", &json);
}
