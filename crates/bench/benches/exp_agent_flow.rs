//! E8 — the unified EDA agent end to end (paper Fig. 6 over Fig. 1).
//!
//! Runs the full spec → RTL → lint → verify → synthesis → PPA flow for
//! every benchmark problem and reports the stage funnel plus gate-level
//! PPA for the synthesizable designs — the "comprehensive synthesis, full
//! automation" the vision section argues for.

use eda_bench::{banner, format_table, write_json};
use eda_core::{Agent, AgentConfig, Stage, StageStatus};
use eda_llm::{ModelSpec, SimulatedLlm};
use serde::Serialize;

#[derive(Serialize)]
struct FlowRow {
    problem: String,
    success: bool,
    verify: String,
    synthesis: String,
    cells: Option<usize>,
    area: Option<f64>,
    delay: Option<f64>,
}

fn status_tag(s: &StageStatus) -> String {
    match s {
        StageStatus::Passed => "ok".into(),
        StageStatus::Warned(n) => format!("warn({n})"),
        StageStatus::Failed(_) => "FAIL".into(),
        StageStatus::Skipped(_) => "skip".into(),
    }
}

fn main() {
    banner("E8: unified agent — full-flow funnel over the problem suite");
    let agent = Agent::new(SimulatedLlm::new(ModelSpec::ultra()), AgentConfig::default());
    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut funnel = [0usize; 4]; // generated, verified, synthesized, ppa
    let problems = eda_suite::all_problems();
    let total = problems.len();
    for p in &problems {
        let r = agent.run_flow_on(p);
        let get = |stage: Stage| {
            r.stages
                .iter()
                .find(|s| s.stage == stage)
                .map(|s| status_tag(&s.status))
                .unwrap_or_else(|| "-".into())
        };
        if get(Stage::SpecToRtl) == "ok" {
            funnel[0] += 1;
        }
        if get(Stage::Verify) == "ok" {
            funnel[1] += 1;
        }
        if get(Stage::Synthesis) == "ok" {
            funnel[2] += 1;
        }
        if get(Stage::PpaReport) == "ok" {
            funnel[3] += 1;
        }
        rows.push(vec![
            p.id.to_string(),
            if r.success { "yes" } else { "NO" }.to_string(),
            get(Stage::Verify),
            get(Stage::Synthesis),
            r.cells.map(|c| c.to_string()).unwrap_or_else(|| "-".into()),
            r.area.map(|a| format!("{a:.0}")).unwrap_or_else(|| "-".into()),
            r.delay.map(|d| format!("{d:.1}")).unwrap_or_else(|| "-".into()),
        ]);
        json.push(FlowRow {
            problem: p.id.to_string(),
            success: r.success,
            verify: get(Stage::Verify),
            synthesis: get(Stage::Synthesis),
            cells: r.cells,
            area: r.area,
            delay: r.delay,
        });
    }
    println!(
        "{}",
        format_table(
            &["problem", "success", "verify", "synth", "cells", "area", "delay"],
            &rows
        )
    );
    println!(
        "funnel: {total} specs -> {} RTL generated -> {} verified -> {} synthesized -> {} PPA",
        funnel[0], funnel[1], funnel[2], funnel[3]
    );
    write_json("exp_agent_flow", &json);
}
