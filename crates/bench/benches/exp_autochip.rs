//! E1 — AutoChip (paper Fig. 4 + Section IV prose).
//!
//! Pass rates for four model tiers under two equal-budget strategies:
//! *feedback* (k=3 candidates × depth 4) versus *sampling* (k=12 × depth
//! 1). Paper-shaped expectation: only the most capable model benefits
//! significantly from iterating on EDA-tool feedback; weaker tiers do as
//! well or better just sampling more candidates.

use eda_autochip::{run_autochip, AutoChipConfig};
use eda_bench::{banner, format_table, mean, write_json};
use eda_llm::{model_zoo, SimulatedLlm};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    feedback_pass: f64,
    sampling_pass: f64,
    feedback_gain: f64,
}

fn main() {
    banner("E1: AutoChip — feedback depth vs. candidate sampling (Fig. 4)");
    let problems = [
        "priority_encoder8", "alu8", "updown_counter4", "lfsr8", "edge_detector",
        "seq_detector_101", "traffic_light", "sorter4", "divider4", "pwm4",
    ];
    let seeds = [1u64, 2, 3];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for spec in model_zoo() {
        let model = SimulatedLlm::new(spec.clone());
        let mut feedback_scores = Vec::new();
        let mut sampling_scores = Vec::new();
        for pid in &problems {
            let problem = eda_suite::problem(pid).expect("known problem");
            for &seed in &seeds {
                let fb = run_autochip(
                    &model,
                    &problem,
                    &AutoChipConfig { k_candidates: 2, max_depth: 4, temperature: 1.0, seed, ..Default::default() },
                )
                .expect("suite testbench");
                let flat = run_autochip(
                    &model,
                    &problem,
                    &AutoChipConfig { k_candidates: 8, max_depth: 1, temperature: 1.0, seed, ..Default::default() },
                )
                .expect("suite testbench");
                feedback_scores.push(fb.solved as u8 as f64);
                sampling_scores.push(flat.solved as u8 as f64);
            }
        }
        let f = mean(&feedback_scores);
        let s = mean(&sampling_scores);
        rows.push(vec![
            spec.name.clone(),
            format!("{f:.2}"),
            format!("{s:.2}"),
            format!("{:+.2}", f - s),
        ]);
        json.push(Row {
            model: spec.name,
            feedback_pass: f,
            sampling_pass: s,
            feedback_gain: f - s,
        });
    }
    println!(
        "{}",
        format_table(
            &["model", "pass(feedback k=2,d=4)", "pass(sampling k=8,d=1)", "gain"],
            &rows
        )
    );
    println!(
        "shape check: strongest tier gains {:+.2}, weakest gains {:+.2}",
        json.last().map(|r| r.feedback_gain).unwrap_or(0.0),
        json.first().map(|r| r.feedback_gain).unwrap_or(0.0),
    );
    write_json("exp_autochip", &json);
}
