//! E1 — AutoChip (paper Fig. 4 + Section IV prose).
//!
//! Pass rates for four model tiers under two equal-budget strategies:
//! *feedback* (k=3 candidates × depth 4) versus *sampling* (k=12 × depth
//! 1). Paper-shaped expectation: only the most capable model benefits
//! significantly from iterating on EDA-tool feedback; weaker tiers do as
//! well or better just sampling more candidates.

use eda_autochip::{run_autochip, run_autochip_with, AutoChipConfig};
use eda_bench::{banner, format_table, mean, write_json};
use eda_exec::Engine;
use eda_llm::{model_zoo, SimulatedLlm};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    model: String,
    feedback_pass: f64,
    sampling_pass: f64,
    feedback_gain: f64,
}

fn main() {
    banner("E1: AutoChip — feedback depth vs. candidate sampling (Fig. 4)");
    let problems = [
        "priority_encoder8", "alu8", "updown_counter4", "lfsr8", "edge_detector",
        "seq_detector_101", "traffic_light", "sorter4", "divider4", "pwm4",
    ];
    let seeds = [1u64, 2, 3];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for spec in model_zoo() {
        let model = SimulatedLlm::new(spec.clone());
        let mut feedback_scores = Vec::new();
        let mut sampling_scores = Vec::new();
        for pid in &problems {
            let problem = eda_suite::problem(pid).expect("known problem");
            for &seed in &seeds {
                let fb = run_autochip(
                    &model,
                    &problem,
                    &AutoChipConfig { k_candidates: 2, max_depth: 4, temperature: 1.0, seed, ..Default::default() },
                )
                .expect("suite testbench");
                let flat = run_autochip(
                    &model,
                    &problem,
                    &AutoChipConfig { k_candidates: 8, max_depth: 1, temperature: 1.0, seed, ..Default::default() },
                )
                .expect("suite testbench");
                feedback_scores.push(fb.solved as u8 as f64);
                sampling_scores.push(flat.solved as u8 as f64);
            }
        }
        let f = mean(&feedback_scores);
        let s = mean(&sampling_scores);
        rows.push(vec![
            spec.name.clone(),
            format!("{f:.2}"),
            format!("{s:.2}"),
            format!("{:+.2}", f - s),
        ]);
        json.push(Row {
            model: spec.name,
            feedback_pass: f,
            sampling_pass: s,
            feedback_gain: f - s,
        });
    }
    println!(
        "{}",
        format_table(
            &["model", "pass(feedback k=2,d=4)", "pass(sampling k=8,d=1)", "gain"],
            &rows
        )
    );
    println!(
        "shape check: strongest tier gains {:+.2}, weakest gains {:+.2}",
        json.last().map(|r| r.feedback_gain).unwrap_or(0.0),
        json.first().map(|r| r.feedback_gain).unwrap_or(0.0),
    );
    write_json("exp_autochip", &json);
    engine_comparison();
}

/// Time the same candidate-evaluation workload on the sequential and the
/// work-stealing engine. Scores must be bit-identical; only wall-clock and
/// the (timing-excluded) thread count may differ.
fn engine_comparison() {
    banner("E1b: evaluation engine — sequential vs. work-stealing wall-clock");
    let spec = model_zoo().into_iter().last().expect("model zoo is non-empty");
    let model = SimulatedLlm::new(spec);
    let problems = ["alu8", "sorter4", "divider4", "lfsr8"];
    let cfg = AutoChipConfig { k_candidates: 8, max_depth: 2, temperature: 1.0, seed: 7, ..Default::default() };

    let mut timings = Vec::new();
    let mut outcomes: Vec<Vec<(bool, f64, u64)>> = Vec::new();
    for (label, engine) in [
        ("sequential", Engine::sequential()),
        ("parallel", Engine::from_env()),
    ] {
        let start = Instant::now();
        let mut runs = Vec::new();
        for pid in &problems {
            let problem = eda_suite::problem(pid).expect("known problem");
            let r = run_autochip_with(&model, &problem, &cfg, &engine).expect("suite testbench");
            runs.push((r.solved, r.best_score, r.exec.cache_hits));
        }
        let elapsed = start.elapsed();
        timings.push((label, engine.threads(), elapsed));
        outcomes.push(runs);
    }
    assert_eq!(outcomes[0], outcomes[1], "engines must agree on every outcome");
    let cache_hits: u64 = outcomes[0].iter().map(|(_, _, h)| h).sum();
    for (label, threads, elapsed) in &timings {
        println!("  {label:<10} threads={threads:<2} wall={:>8.2?}", elapsed);
    }
    println!("  eval-cache hits across problems: {cache_hits}");
    let (seq, par) = (timings[0].2, timings[1].2);
    if timings[1].1 > 1 {
        println!(
            "  speedup: {:.2}x ({seq:.2?} -> {par:.2?})",
            seq.as_secs_f64() / par.as_secs_f64().max(1e-9),
        );
    } else {
        println!("  single hardware thread available; engines are equivalent");
    }
}
