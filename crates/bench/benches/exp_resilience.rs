//! E10 — Resilience: pass rate vs. LLM fault rate per model tier.
//!
//! Sweeps the transport fault rate from 0.0 to 0.5 and reruns the
//! AutoChip flow for each model tier twice per rate: once through the
//! full `ResilientClient` stack (retries + backoff + hedging +
//! degradation to the next-cheaper tier) and once *bare* — same fault
//! injection but zero retries and no fallback, so every transport error
//! surfaces as a garbage candidate. Expected shape: the bare arm erodes
//! roughly linearly with the per-attempt error rate, while the
//! resilient arm holds near its fault-free pass rate (the retry budget
//! absorbs transient errors; degradation keeps availability), paying
//! only in retries and virtual hours. At rate 0.0 both arms are a
//! pass-through and must match the direct-path baseline exactly.

use eda_autochip::{run_autochip, AutoChipConfig};
use eda_bench::{banner, format_table, mean, write_json};
use eda_llm::{model_zoo, LlmReport, ModelSpec, ResilienceConfig, SimulatedLlm};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    fault_rate: f64,
    pass_resilient: f64,
    pass_bare: f64,
    retries_per_request: f64,
    faults_injected: u64,
    fallback_share: f64,
    exhausted: u64,
    virtual_hours: f64,
}

const FAULT_RATES: [f64; 6] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];

/// Same fault injection, no recovery: zero retries, no hedging, no
/// cheaper-tier fallback.
fn bare(rate: f64, seed: u64) -> ResilienceConfig {
    let mut cfg = ResilienceConfig::with_fault_rate(rate, seed);
    cfg.policy.max_retries = 0;
    cfg.policy.hedge_after_s = None;
    cfg.fallback = false;
    cfg
}

fn sweep(
    model: &SimulatedLlm,
    spec: &ModelSpec,
    problems: &[&str],
    seeds: &[u64],
    rate: f64,
    resilient: bool,
) -> (f64, LlmReport) {
    let mut passes = Vec::new();
    let mut llm = LlmReport::default();
    for pid in problems {
        let problem = eda_suite::problem(pid).expect("known problem");
        for &seed in seeds {
            // Fault seed varies per (tier, problem, run seed) so each
            // cell sees an independent fault pattern — but the SAME
            // pattern in both arms, which differ only in recovery.
            let fault_seed = seed ^ fnv(&spec.name) ^ fnv(pid);
            // A tight candidate budget (k=2 × depth 2) so individual
            // lost/corrupted completions actually move the pass rate —
            // with large k, candidate redundancy masks the transport.
            let cfg = AutoChipConfig {
                k_candidates: 2,
                max_depth: 2,
                temperature: 0.8,
                seed,
                resilience: if resilient {
                    ResilienceConfig::with_fault_rate(rate, fault_seed)
                } else {
                    bare(rate, fault_seed)
                },
                ..Default::default()
            };
            let r = run_autochip(model, &problem, &cfg).expect("suite testbench");
            passes.push(r.solved as u8 as f64);
            llm.merge(&r.llm);
        }
    }
    (mean(&passes), llm)
}

fn main() {
    banner("E10: resilience — pass rate vs. transport fault rate (per tier)");
    let problems = [
        "mux2", "alu8", "counter4", "lfsr8", "edge_detector", "priority_encoder8",
        "seq_detector_101", "traffic_light",
    ];
    let seeds = [1u64, 2, 3];
    let mut json = Vec::new();
    let mut table = Vec::new();

    for spec in model_zoo() {
        let model = SimulatedLlm::new(spec.clone());
        let mut row = vec![spec.name.clone()];
        for &rate in &FAULT_RATES {
            let (pass, llm) = sweep(&model, &spec, &problems, &seeds, rate, true);
            let (pass_bare, _) = sweep(&model, &spec, &problems, &seeds, rate, false);
            row.push(format!("{pass:.2}/{pass_bare:.2}"));
            json.push(Row {
                model: spec.name.clone(),
                fault_rate: rate,
                pass_resilient: pass,
                pass_bare,
                retries_per_request: llm.retries as f64 / llm.requests.max(1) as f64,
                faults_injected: llm.faults.total(),
                fallback_share: llm.fallback_completions as f64 / llm.requests.max(1) as f64,
                exhausted: llm.exhausted,
                virtual_hours: llm.virtual_time_us as f64 / 3.6e9,
            });
        }
        table.push(row);
    }

    println!("cell format: resilient-stack pass / bare (no-retry) pass\n");
    println!(
        "{}",
        format_table(
            &["model", "p=0.0", "p=0.1", "p=0.2", "p=0.3", "p=0.4", "p=0.5"],
            &table
        )
    );

    // Detail line for the CI-exercised rate: how hard the stack worked.
    banner("E10 detail at fault rate 0.3");
    let detail: Vec<Vec<String>> = json
        .iter()
        .filter(|r| r.fault_rate == 0.3)
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.2}", r.pass_resilient),
                format!("{:.2}", r.retries_per_request),
                format!("{}", r.faults_injected),
                format!("{:.2}", r.fallback_share),
                format!("{}", r.exhausted),
                format!("{:.2}", r.virtual_hours),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["model", "pass", "retries/req", "faults", "fallback", "exhausted", "vhours"],
            &detail
        )
    );
    write_json("exp_resilience", &json);
}

/// FNV-1a over a string (fault-seed material).
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}
