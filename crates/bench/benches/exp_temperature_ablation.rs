//! E4 — temperature-adaptation ablation (paper Section V mechanism).
//!
//! Three schedules over the same budget and seeds:
//! * adaptive temperature + Levenshtein diversity (the paper's loop),
//! * adaptive temperature without the diversity rule,
//! * fixed temperature.
//!
//! Paper-shaped expectation: dropping the Levenshtein rule lets the pool
//! collapse onto near-duplicates ("the LLM will converge towards very
//! similar snippets and become stuck in a local optimum"), visible as
//! lower pool diversity and no better final power.

use eda_bench::{banner, format_table, mean, write_json};
use eda_llm::{ModelSpec, SimulatedLlm};
use eda_sltgen::{run_slt_llm, SltConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    schedule: String,
    mean_best_w: f64,
    mean_diversity: f64,
    mean_final_temp: f64,
}

fn main() {
    banner("E4: temperature adaptation + Levenshtein diversity ablation");
    let model = SimulatedLlm::new(ModelSpec::code_llama_ft());
    let seeds = [1u64, 2, 3, 4];
    let variants: [(&str, bool, bool); 3] = [
        ("adaptive + diversity (paper)", true, true),
        ("adaptive, no diversity", true, false),
        ("fixed temperature", false, true),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, adaptive, diversity) in variants {
        let mut bests = Vec::new();
        let mut divs = Vec::new();
        let mut temps = Vec::new();
        for &seed in &seeds {
            let run = run_slt_llm(
                &model,
                &SltConfig {
                    virtual_hours: 6.0,
                    adaptive_temperature: adaptive,
                    diversity_pressure: diversity,
                    seed,
                    ..Default::default()
                },
            );
            bests.push(run.run.best_power_w);
            divs.push(run.pool_diversity);
            temps.push(run.final_temperature);
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", mean(&bests)),
            format!("{:.3}", mean(&divs)),
            format!("{:.2}", mean(&temps)),
        ]);
        json.push(Row {
            schedule: name.to_string(),
            mean_best_w: mean(&bests),
            mean_diversity: mean(&divs),
            mean_final_temp: mean(&temps),
        });
    }
    println!(
        "{}",
        format_table(
            &["schedule", "mean best (W)", "pool diversity", "final temp"],
            &rows
        )
    );
    println!(
        "shape check: no-diversity pool diversity {:.3} vs paper schedule {:.3}",
        json[1].mean_diversity, json[0].mean_diversity
    );
    write_json("exp_temperature_ablation", &json);
}
