//! E2 — the structured conversational flow (paper Section IV, ref [10]).
//!
//! Eight simple benchmark designs driven through the one-candidate-per-
//! round conversational loop with automatic tool feedback; a simulated
//! human steps in only when the loop stalls. Paper-shaped expectation:
//! for the strongest tier, about half of the designs need *no human
//! feedback at all*; weaker tiers escalate far more often.

use eda_autochip::{run_structured_flow, StructuredFlowConfig};
use eda_bench::{banner, format_table, write_json};
use eda_llm::{ModelSpec, SimulatedLlm};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    model: String,
    solved: usize,
    human_free: usize,
    total: usize,
    mean_rounds: f64,
    mean_humans: f64,
}

fn main() {
    banner("E2: structured conversational flow on 8 simple designs");
    let set = eda_suite::structured_flow_set();
    let seeds = [1u64, 2, 3, 4];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for spec in [ModelSpec::basic(), ModelSpec::pro(), ModelSpec::ultra()] {
        let model = SimulatedLlm::new(spec.clone());
        let mut solved = 0usize;
        let mut human_free = 0usize;
        let mut rounds = 0u32;
        let mut humans = 0u32;
        let mut total = 0usize;
        for p in &set {
            for &seed in &seeds {
                let r = run_structured_flow(
                    &model,
                    p,
                    &StructuredFlowConfig { seed, ..Default::default() },
                )
                .expect("suite testbench");
                total += 1;
                solved += r.solved as usize;
                if r.solved && r.human_interventions == 0 {
                    human_free += 1;
                }
                rounds += r.rounds_used;
                humans += r.human_interventions;
            }
        }
        rows.push(vec![
            spec.name.clone(),
            format!("{solved}/{total}"),
            format!("{human_free}/{total}"),
            format!("{:.1}", rounds as f64 / total as f64),
            format!("{:.2}", humans as f64 / total as f64),
        ]);
        json.push(Row {
            model: spec.name,
            solved,
            human_free,
            total,
            mean_rounds: rounds as f64 / total as f64,
            mean_humans: humans as f64 / total as f64,
        });
    }
    println!(
        "{}",
        format_table(
            &["model", "solved", "human-free", "mean rounds", "mean humans"],
            &rows
        )
    );
    if let Some(gpt4_tier) = json.iter().find(|r| r.model.contains("pro")) {
        println!(
            "shape check: GPT-4-analogue tier human-free fraction = {:.2} (paper: ~0.5)",
            gpt4_tier.human_free as f64 / gpt4_tier.total as f64
        );
    }
    write_json("exp_structured_flow", &json);
}
