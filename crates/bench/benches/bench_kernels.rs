//! Criterion micro-benchmarks for the workspace's hot kernels: the HDL
//! event simulator, symbolic synthesis + mapping, BM25 retrieval,
//! Levenshtein distance, the RISC-V OOO power model, and HLS scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_hdl_simulator(c: &mut Criterion) {
    let src = "module lfsr(input clk, rst, output reg [15:0] q);
                 wire fb;
                 assign fb = q[15] ^ q[13] ^ q[12] ^ q[10];
                 always @(posedge clk)
                   if (rst) q <= 16'd1; else q <= {q[14:0], fb};
               endmodule";
    let design = eda_hdl::compile(src, "lfsr").unwrap();
    c.bench_function("hdl_sim_lfsr_1000_cycles", |b| {
        b.iter(|| {
            let mut sim = eda_hdl::Simulator::new(&design);
            sim.poke("rst", eda_hdl::Value::bit(true)).unwrap();
            eda_hdl::clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
            sim.poke("rst", eda_hdl::Value::bit(false)).unwrap();
            eda_hdl::clock_cycles(&mut sim, "clk", 1000, |_, _| Ok(())).unwrap();
            black_box(sim.peek("q").unwrap())
        })
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let src = "module add16(input [15:0] a, b, output [15:0] s, output cout);
                 assign {cout, s} = a + b;
               endmodule";
    let file = eda_hdl::parse(src).unwrap();
    let module = file.module("add16").unwrap().clone();
    c.bench_function("synth_map_add16", |b| {
        b.iter(|| {
            let r = eda_synth::synthesize_and_map(black_box(&module)).unwrap();
            black_box(r.area)
        })
    });
}

fn bench_retrieval(c: &mut Criterion) {
    let mut index = eda_rag::Index::new();
    for i in 0..500 {
        index.add(eda_rag::Document::new(
            format!("d{i}"),
            format!("topic{} keywords loop array memory", i % 17),
            format!("body text about synthesis pass number {i} with pragma and schedule"),
        ));
    }
    c.bench_function("bm25_search_500_docs", |b| {
        b.iter(|| black_box(index.search("loop pragma schedule memory", 5)))
    });
}

fn bench_levenshtein(c: &mut Criterion) {
    let a = "int snippet() { int c0 = 3; for (int i = 0; i < 4000; i++) { c0 = c0 * 17 + 1; } return c0; }";
    let b2 = "int snippet() { int c0 = 5; for (int i = 0; i < 3000; i++) { c0 = c0 * 13 + 2; c0 ^= i; } return c0; }";
    c.bench_function("levenshtein_snippets", |b| {
        b.iter(|| black_box(eda_sltgen::levenshtein(black_box(a), black_box(b2))))
    });
}

fn bench_ooo_model(c: &mut Criterion) {
    let prog = eda_riscv::assemble(
        "
        li t0, 2000
        li t1, 7
        li t2, 13
    loop:
        mul t3, t1, t2
        add t4, t1, t2
        xor t5, t3, t4
        sw t3, 64(zero)
        lw t6, 64(zero)
        addi t0, t0, -1
        bne t0, zero, loop
        ecall
    ",
    )
    .unwrap();
    let trace = eda_riscv::Cpu::new(eda_riscv::CpuConfig::default())
        .run(&prog)
        .unwrap()
        .trace;
    c.bench_function("ooo_analyze_16k_instrs", |b| {
        b.iter(|| {
            black_box(eda_riscv::analyze(
                black_box(&trace),
                eda_riscv::UarchConfig::default(),
                eda_riscv::PowerParams::default(),
            ))
        })
    });
}

fn bench_hls_schedule(c: &mut Criterion) {
    let prog = eda_cmini::parse(
        "int kern(int a[64], int b[64]) {
           int s = 0;
           for (int i = 0; i < 64; i++) {
             s += a[i] * b[i] + (a[i] >> 2) - (b[i] & 15);
           }
           return s;
         }",
    )
    .unwrap();
    let lowered = eda_hls::lower(&prog, "kern").unwrap();
    c.bench_function("hls_schedule_kernel", |b| {
        b.iter(|| {
            black_box(eda_hls::schedule(
                black_box(&lowered),
                eda_hls::Resources::default(),
                eda_hls::Latencies::default(),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_hdl_simulator,
    bench_synthesis,
    bench_retrieval,
    bench_levenshtein,
    bench_ooo_model,
    bench_hls_schedule
);
criterion_main!(benches);
