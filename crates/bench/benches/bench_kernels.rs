//! Criterion micro-benchmarks for the workspace's hot kernels: the HDL
//! event simulator (both engines), memoized elaboration, symbolic
//! synthesis + mapping, BM25 retrieval, Levenshtein distance, the RISC-V
//! OOO power model (both engines), and HLS scheduling — plus the
//! disabled-path cost of `eda-obs` instrumentation, which carries an
//! absolute budget assertion in quick/check modes.
//!
//! Knobs (typed via `eda_exec::parse_bool_knob`):
//! - `EDA_BENCH_QUICK=1`  — short warmup/measurement for CI smoke runs.
//! - `EDA_BENCH_CHECK=1`  — compare against `results/bench_kernels.json`
//!   and exit non-zero if any kernel regressed more than 2x.
//! - `EDA_BENCH_WRITE=1`  — rewrite the threshold baseline.

use criterion::{black_box, Criterion};
use std::time::Duration;

const BASELINE_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/bench_kernels.json");

/// A kernel must run slower than `baseline * REGRESSION_FACTOR` to fail
/// the CI smoke check. 2x absorbs runner noise while still catching
/// order-of-magnitude regressions (e.g. the fast path silently off).
const REGRESSION_FACTOR: f64 = 2.0;

const LFSR_SRC: &str = "module lfsr(input clk, rst, output reg [15:0] q);
     wire fb;
     assign fb = q[15] ^ q[13] ^ q[12] ^ q[10];
     always @(posedge clk)
       if (rst) q <= 16'd1; else q <= {q[14:0], fb};
   endmodule";

/// Wide-vector clocked datapath: 64-bit accumulate/rotate network where
/// the word-parallel `u128` evaluation dominates.
const WIDE_SRC: &str = "module widepath(input clk, rst, input [63:0] k, output reg [63:0] acc);
     wire [63:0] mixed;
     wire [63:0] rot;
     assign rot = {acc[30:0], acc[63:31]};
     assign mixed = (acc ^ k) + (rot & 64'hfedcba9876543210);
     always @(posedge clk)
       if (rst) acc <= 64'd1; else acc <= mixed + (acc >> 7);
   endmodule";

fn run_lfsr(design: &eda_hdl::Design, fast_path: bool) -> eda_hdl::Value {
    let mut sim = eda_hdl::Simulator::new(design);
    sim.set_fast_path(fast_path);
    sim.poke("rst", eda_hdl::Value::bit(true)).unwrap();
    eda_hdl::clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
    sim.poke("rst", eda_hdl::Value::bit(false)).unwrap();
    eda_hdl::clock_cycles(&mut sim, "clk", 1000, |_, _| Ok(())).unwrap();
    sim.peek("q").unwrap()
}

fn run_wide(design: &eda_hdl::Design, fast_path: bool) -> eda_hdl::Value {
    let mut sim = eda_hdl::Simulator::new(design);
    sim.set_fast_path(fast_path);
    sim.poke("rst", eda_hdl::Value::bit(true)).unwrap();
    sim.poke("k", eda_hdl::Value::from_u64(64, 0x9e37_79b9_7f4a_7c15)).unwrap();
    eda_hdl::clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
    sim.poke("rst", eda_hdl::Value::bit(false)).unwrap();
    eda_hdl::clock_cycles(&mut sim, "clk", 512, |_, _| Ok(())).unwrap();
    sim.peek("acc").unwrap()
}

fn bench_hdl_simulator(c: &mut Criterion) {
    let lfsr = eda_hdl::compile(LFSR_SRC, "lfsr").unwrap();
    c.bench_function("hdl_sim_lfsr_1000_cycles", |b| {
        b.iter(|| black_box(run_lfsr(&lfsr, true)))
    });
    c.bench_function("hdl_sim_lfsr_1000_cycles_four_state", |b| {
        b.iter(|| black_box(run_lfsr(&lfsr, false)))
    });
    let wide = eda_hdl::compile(WIDE_SRC, "widepath").unwrap();
    c.bench_function("hdl_sim_wide_datapath_512_cycles", |b| {
        b.iter(|| black_box(run_wide(&wide, true)))
    });
    c.bench_function("hdl_sim_wide_datapath_512_cycles_four_state", |b| {
        b.iter(|| black_box(run_wide(&wide, false)))
    });
}

fn bench_elaboration(c: &mut Criterion) {
    // Steady-state flow behaviour: the same module source compiled over
    // and over (candidate evaluation, testbench construction).
    c.bench_function("hdl_elab_memoized_compile", |b| {
        b.iter(|| black_box(eda_hdl::compile_cached(LFSR_SRC, "lfsr").unwrap()))
    });
    c.bench_function("hdl_elab_uncached_compile", |b| {
        b.iter(|| black_box(eda_hdl::compile(LFSR_SRC, "lfsr").unwrap()))
    });
}

fn bench_synthesis(c: &mut Criterion) {
    let src = "module add16(input [15:0] a, b, output [15:0] s, output cout);
                 assign {cout, s} = a + b;
               endmodule";
    let file = eda_hdl::parse(src).unwrap();
    let module = file.module("add16").unwrap().clone();
    c.bench_function("synth_map_add16", |b| {
        b.iter(|| {
            let r = eda_synth::synthesize_and_map(black_box(&module)).unwrap();
            black_box(r.area)
        })
    });
}

fn bench_retrieval(c: &mut Criterion) {
    let mut index = eda_rag::Index::new();
    for i in 0..500 {
        index.add(eda_rag::Document::new(
            format!("d{i}"),
            format!("topic{} keywords loop array memory", i % 17),
            format!("body text about synthesis pass number {i} with pragma and schedule"),
        ));
    }
    c.bench_function("bm25_search_500_docs", |b| {
        b.iter(|| black_box(index.search("loop pragma schedule memory", 5)))
    });
}

fn bench_levenshtein(c: &mut Criterion) {
    let a = "int snippet() { int c0 = 3; for (int i = 0; i < 4000; i++) { c0 = c0 * 17 + 1; } return c0; }";
    let b2 = "int snippet() { int c0 = 5; for (int i = 0; i < 3000; i++) { c0 = c0 * 13 + 2; c0 ^= i; } return c0; }";
    c.bench_function("levenshtein_snippets", |b| {
        b.iter(|| black_box(eda_sltgen::levenshtein(black_box(a), black_box(b2))))
    });
}

fn bench_ooo_model(c: &mut Criterion) {
    let prog = eda_riscv::assemble(
        "
        li t0, 2000
        li t1, 7
        li t2, 13
    loop:
        mul t3, t1, t2
        add t4, t1, t2
        xor t5, t3, t4
        sw t3, 64(zero)
        lw t6, 64(zero)
        addi t0, t0, -1
        bne t0, zero, loop
        ecall
    ",
    )
    .unwrap();
    let trace = eda_riscv::Cpu::new(eda_riscv::CpuConfig::default())
        .run(&prog)
        .unwrap()
        .trace;
    c.bench_function("ooo_analyze_16k_instrs", |b| {
        b.iter(|| {
            black_box(eda_riscv::analyze(
                black_box(&trace),
                eda_riscv::UarchConfig::default(),
                eda_riscv::PowerParams::default(),
            ))
        })
    });
    c.bench_function("ooo_analyze_16k_instrs_reference", |b| {
        b.iter(|| {
            black_box(eda_riscv::analyze_reference(
                black_box(&trace),
                eda_riscv::UarchConfig::default(),
                eda_riscv::PowerParams::default(),
            ))
        })
    });
}

fn bench_hls_schedule(c: &mut Criterion) {
    let prog = eda_cmini::parse(
        "int kern(int a[64], int b[64]) {
           int s = 0;
           for (int i = 0; i < 64; i++) {
             s += a[i] * b[i] + (a[i] >> 2) - (b[i] & 15);
           }
           return s;
         }",
    )
    .unwrap();
    let lowered = eda_hls::lower(&prog, "kern").unwrap();
    c.bench_function("hls_schedule_kernel", |b| {
        b.iter(|| {
            black_box(eda_hls::schedule(
                black_box(&lowered),
                eda_hls::Resources::default(),
                eda_hls::Latencies::default(),
            ))
        })
    });
}

/// Cost of instrumentation when no `ObsSession` is live: `span!` and the
/// metric helpers must collapse to one relaxed atomic load. These names
/// feed the absolute-budget assertion in `main`.
fn bench_obs_disabled(c: &mut Criterion) {
    assert!(
        !eda_obs::enabled(),
        "obs must be off for the disabled-overhead bench (is EDA_OBS=1 set?)"
    );
    c.bench_function("obs_span_disabled", |b| {
        b.iter(|| {
            let _g = eda_obs::span!("bench", "noop", "i" => black_box(1u64));
        })
    });
    c.bench_function("obs_counter_disabled", |b| {
        b.iter(|| eda_obs::counter_add(black_box("bench.noop"), String::new, 1))
    });
}

fn knob(name: &str) -> bool {
    eda_exec::parse_bool_knob(name)
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(false)
}

fn lookup(results: &[(String, f64)], name: &str) -> f64 {
    results
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, ns)| *ns)
        .unwrap_or_else(|| panic!("kernel `{name}` missing from results"))
}

/// Prints the optimized-vs-reference speedup per engine pair plus the
/// geometric-mean aggregate.
fn report_speedups(results: &[(String, f64)]) {
    const PAIRS: &[(&str, &str, &str)] = &[
        (
            "lfsr event sim",
            "hdl_sim_lfsr_1000_cycles_four_state",
            "hdl_sim_lfsr_1000_cycles",
        ),
        (
            "wide datapath sim",
            "hdl_sim_wide_datapath_512_cycles_four_state",
            "hdl_sim_wide_datapath_512_cycles",
        ),
        (
            "elaboration",
            "hdl_elab_uncached_compile",
            "hdl_elab_memoized_compile",
        ),
        (
            "ooo analysis",
            "ooo_analyze_16k_instrs_reference",
            "ooo_analyze_16k_instrs",
        ),
    ];
    let mut log_sum = 0.0;
    for (label, slow, fast) in PAIRS {
        let ratio = lookup(results, slow) / lookup(results, fast);
        log_sum += ratio.ln();
        println!("speedup: {label:<20} {ratio:.2}x");
    }
    let aggregate = (log_sum / PAIRS.len() as f64).exp();
    println!("speedup: aggregate (geomean) {aggregate:.2}x");
}

fn write_baseline(results: &[(String, f64)]) {
    let mut out = String::from("{\n");
    for (i, (name, ns)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        out.push_str(&format!("  \"{name}\": {ns:.1}{comma}\n"));
    }
    out.push_str("}\n");
    std::fs::write(BASELINE_PATH, out).unwrap();
    println!("wrote baseline to {BASELINE_PATH}");
}

/// Compares against the checked-in baseline; returns the failure count.
fn check_baseline(results: &[(String, f64)]) -> usize {
    let text = std::fs::read_to_string(BASELINE_PATH).unwrap_or_else(|e| {
        panic!("missing baseline {BASELINE_PATH} ({e}); regenerate with EDA_BENCH_WRITE=1")
    });
    let baseline = serde_json::from_str(&text).unwrap();
    let mut failures = 0;
    for (name, ns) in results {
        let Some(base) = baseline.get(name).and_then(|v| v.as_f64()) else {
            println!("check: {name:<44} no baseline (new kernel), skipping");
            continue;
        };
        let ratio = ns / base;
        if ratio > REGRESSION_FACTOR {
            println!("check: {name:<44} FAIL {ratio:.2}x of baseline ({base:.0} ns -> {ns:.0} ns)");
            failures += 1;
        } else {
            println!("check: {name:<44} ok   {ratio:.2}x of baseline");
        }
    }
    failures
}

fn main() {
    let mut c = Criterion::default().configure_from_args();
    if knob("EDA_BENCH_QUICK") {
        c = c
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(80));
    }
    bench_hdl_simulator(&mut c);
    bench_elaboration(&mut c);
    bench_synthesis(&mut c);
    bench_retrieval(&mut c);
    bench_levenshtein(&mut c);
    bench_ooo_model(&mut c);
    bench_hls_schedule(&mut c);
    bench_obs_disabled(&mut c);

    report_speedups(c.results());
    if knob("EDA_BENCH_QUICK") || knob("EDA_BENCH_CHECK") {
        // Absolute budget, not a baseline ratio: the disabled path is a
        // single relaxed atomic load and must stay in the low nanoseconds.
        // 250 ns absorbs any runner, while still catching an accidental
        // allocation or closure evaluation on the off path.
        for name in ["obs_span_disabled", "obs_counter_disabled"] {
            let ns = lookup(c.results(), name);
            assert!(
                ns < 250.0,
                "{name} costs {ns:.1} ns per op with obs off (budget 250 ns)"
            );
            println!("check: {name:<44} ok   {ns:.1} ns/op (budget 250)");
        }
    }
    if knob("EDA_BENCH_WRITE") {
        write_baseline(c.results());
    }
    if knob("EDA_BENCH_CHECK") {
        let failures = check_baseline(c.results());
        if failures > 0 {
            eprintln!("{failures} kernel(s) regressed more than {REGRESSION_FACTOR}x");
            std::process::exit(1);
        }
    }
}
