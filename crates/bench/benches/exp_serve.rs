//! E11 — serving: multi-tenant scheduling + cross-job LLM coalescing.
//!
//! Drives the `eda-serve` layer with seeded synthetic traffic and
//! measures what the paper's flows look like as a *service* rather than
//! a library call:
//!
//! 1. **Coalescing sweep** — the same duplicate-heavy trace with the
//!    cross-job request cache on vs. off. Job outcomes are required to
//!    be identical (coalescing is a pure transport-call optimization);
//!    the hit rate and the saved transport requests are the result.
//! 2. **Load sweep** — arrival rate from light to far past saturation
//!    at a fixed worker count: throughput, p50/p99 virtual wait, and
//!    the shed rate. Below the admission limits the shed rate must be
//!    exactly zero; above them it grows but stays bounded (the
//!    scheduler never queues unboundedly).
//! 3. **Fair-share check** — a saturated two-tenant trace showing the
//!    billed-service split tracking the configured 3:1 weights.

use eda_bench::{banner, format_table, write_json};
use eda_llm::{ModelSpec, SimulatedLlm};
use eda_serve::{
    generate_trace, serve_trace_with, ServeConfig, TenantConfig, TrafficConfig,
};
use eda_exec::Engine;
use serde::Serialize;

#[derive(Serialize)]
struct CoalesceRow {
    duplicate_rate: f64,
    coalesce: bool,
    transport_requests: u64,
    coalesce_hits: u64,
    hit_rate: f64,
    completed: u64,
    outcomes_digest: u64,
}

#[derive(Debug, Serialize)]
struct LoadRow {
    mean_interarrival_s: f64,
    submitted: u64,
    completed: u64,
    shed: u64,
    shed_rate: f64,
    p50_wait_s: f64,
    p99_wait_s: f64,
    throughput_per_hour: f64,
}

#[derive(Serialize)]
struct ShareRow {
    tenant: String,
    weight: u64,
    completed: u64,
    /// Share of billed service among the first half of completions —
    /// the saturated window. (A work-conserving scheduler eventually
    /// runs *everything*, so whole-trace shares always converge to the
    /// submitted mix; weights govern who goes first under contention.)
    saturated_share: f64,
    mean_wait_s: f64,
}

#[derive(Serialize)]
struct Json {
    coalescing: Vec<CoalesceRow>,
    load: Vec<LoadRow>,
    fairness: Vec<ShareRow>,
}

/// FNV-1a over the serialized job outcomes: cheap equality digest.
fn digest(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn main() {
    let engine = Engine::from_env();
    let model = SimulatedLlm::new(ModelSpec::ultra());

    banner("E11.1: cross-job coalescing — duplicate-heavy trace, cache on vs off");
    let mut coalescing = Vec::new();
    let mut table = Vec::new();
    for &dup in &[0.0, 0.3, 0.6] {
        let trace = generate_trace(&TrafficConfig {
            jobs: 24,
            duplicate_rate: dup,
            seed: 17,
            ..Default::default()
        });
        let mut digests = Vec::new();
        for &coalesce in &[true, false] {
            let cfg = ServeConfig { coalesce, ..Default::default() };
            let r = serve_trace_with(&model, &trace, &cfg, &engine);
            let d = digest(&serde_json::to_string(&r.jobs).unwrap());
            digests.push(d);
            table.push(vec![
                format!("{dup:.1}"),
                if coalesce { "on" } else { "off" }.into(),
                format!("{}", r.llm.requests),
                format!("{}", r.coalesce.hits),
                format!("{:.2}", r.coalesce.hit_rate()),
                format!("{}", r.stats.completed),
            ]);
            coalescing.push(CoalesceRow {
                duplicate_rate: dup,
                coalesce,
                transport_requests: r.llm.requests,
                coalesce_hits: r.coalesce.hits,
                hit_rate: r.coalesce.hit_rate(),
                completed: r.stats.completed,
                outcomes_digest: d,
            });
        }
        assert_eq!(
            digests[0], digests[1],
            "coalescing changed a job outcome at duplicate rate {dup}"
        );
    }
    println!(
        "{}",
        format_table(
            &["dup-rate", "coalesce", "transport-reqs", "hits", "hit-rate", "completed"],
            &table
        )
    );
    println!("(identical outcome digests per row pair: coalescing only saves transport calls)\n");

    banner("E11.2: load sweep — throughput, waits, shed rate vs arrival rate");
    let mut load = Vec::new();
    let mut table = Vec::new();
    for &gap_s in &[8.0f64, 4.0, 2.0, 1.0, 0.25, 0.0] {
        let trace = generate_trace(&TrafficConfig {
            jobs: 32,
            mean_interarrival_us: (gap_s * 1e6) as u64,
            duplicate_rate: 0.3,
            seed: 23,
            ..Default::default()
        });
        // Tight admission limits so the sweep actually crosses them:
        // per-tenant queues of 6 and a backlog of 16 against a burst of
        // 32 simultaneous arrivals.
        let cfg = ServeConfig {
            tenants: vec![
                TenantConfig::new("alpha", 3, 6),
                TenantConfig::new("beta", 2, 6),
                TenantConfig::new("gamma", 1, 6),
            ],
            max_backlog: 16,
            ..Default::default()
        };
        let r = serve_trace_with(&model, &trace, &cfg, &engine);
        let shed = r.stats.rejected_queue_full + r.stats.rejected_overloaded + r.stats.expired;
        let row = LoadRow {
            mean_interarrival_s: gap_s,
            submitted: r.stats.submitted,
            completed: r.stats.completed,
            shed,
            shed_rate: shed as f64 / r.stats.submitted.max(1) as f64,
            p50_wait_s: r.stats.p50_wait_us as f64 / 1e6,
            p99_wait_s: r.stats.p99_wait_us as f64 / 1e6,
            throughput_per_hour: r.stats.throughput_per_hour,
        };
        table.push(vec![
            format!("{gap_s:.2}"),
            format!("{}", row.completed),
            format!("{}", row.shed),
            format!("{:.2}", row.shed_rate),
            format!("{:.1}", row.p50_wait_s),
            format!("{:.1}", row.p99_wait_s),
            format!("{:.0}", row.throughput_per_hour),
        ]);
        load.push(row);
    }
    println!(
        "{}",
        format_table(
            &["gap(s)", "completed", "shed", "shed-rate", "p50-wait(s)", "p99-wait(s)", "jobs/h"],
            &table
        )
    );
    let light = &load[0];
    assert_eq!(light.shed, 0, "light load must shed nothing");
    let burst = load.last().unwrap();
    assert!(burst.shed > 0, "a 32-burst against a 16-backlog must shed");
    assert!(
        burst.shed_rate < 1.0 && burst.completed > 0,
        "shedding must stay bounded: {burst:?}",
    );
    println!("(light load sheds zero; shed rate stays bounded past saturation)\n");

    banner("E11.3: weighted fair share — saturated 3:1 tenants");
    let mut fairness = Vec::new();
    let trace = generate_trace(&TrafficConfig {
        jobs: 40,
        tenants: vec![("alpha".into(), 1.0), ("beta".into(), 1.0)],
        mean_interarrival_us: 0,
        duplicate_rate: 0.2,
        seed: 31,
        ..Default::default()
    });
    let cfg = ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 3, 64), TenantConfig::new("beta", 1, 64)],
        workers: 2,
        max_backlog: 128,
        ..Default::default()
    };
    let r = serve_trace_with(&model, &trace, &cfg, &engine);
    // Measure service over the saturated window (first half of the
    // completions, while both tenants still have queued work) plus the
    // mean wait — the two places weighted fairness is visible.
    let by_id: std::collections::HashMap<u64, &eda_serve::JobRecord> =
        r.jobs.iter().map(|j| (j.id, j)).collect();
    let window = &r.completion_order[..r.completion_order.len() / 2];
    let mut service: std::collections::HashMap<&str, u64> = Default::default();
    let mut waits: std::collections::HashMap<&str, (u64, u64)> = Default::default();
    for rec in r.jobs.iter() {
        if let eda_serve::JobOutcome::Completed { wait_us, .. } = rec.outcome {
            let e = waits.entry(rec.tenant.as_str()).or_default();
            e.0 += wait_us;
            e.1 += 1;
        }
    }
    for cid in window {
        let rec = by_id[cid];
        if let eda_serve::JobOutcome::Completed { service_us, .. } = rec.outcome {
            *service.entry(rec.tenant.as_str()).or_default() += service_us;
        }
    }
    let windowed_total: u64 = service.values().sum();
    let mut table = Vec::new();
    for t in &r.tenants {
        let sat_share =
            *service.get(t.name.as_str()).unwrap_or(&0) as f64 / windowed_total.max(1) as f64;
        let (wsum, wn) = waits.get(t.name.as_str()).copied().unwrap_or((0, 0));
        let mean_wait_s = wsum as f64 / wn.max(1) as f64 / 1e6;
        table.push(vec![
            t.name.clone(),
            format!("{}", t.weight),
            format!("{}", t.completed),
            format!("{sat_share:.2}"),
            format!("{mean_wait_s:.1}"),
        ]);
        fairness.push(ShareRow {
            tenant: t.name.clone(),
            weight: t.weight,
            completed: t.completed,
            saturated_share: sat_share,
            mean_wait_s,
        });
    }
    println!(
        "{}",
        format_table(
            &["tenant", "weight", "completed", "saturated-share", "mean-wait(s)"],
            &table
        )
    );
    let alpha = &fairness[0];
    let beta = &fairness[1];
    assert!(
        alpha.saturated_share > beta.saturated_share,
        "weight-3 tenant must dominate the saturated window: {:.2} vs {:.2}",
        alpha.saturated_share,
        beta.saturated_share
    );

    write_json("exp_serve", &Json { coalescing, load, fairness });
}
