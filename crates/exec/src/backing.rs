//! Persistent key-value backing for caches — the seam `eda-store` plugs
//! into.
//!
//! The eval cache ([`crate::EvalCache`]) and the LLM client keep their
//! hot state in process memory; this module defines the *optional* disk
//! layer underneath them. It deliberately holds only the interface — the
//! [`KvBacking`] trait, the typed namespaces, the [`StoreStats`]
//! counters, the [`CacheValue`] codec, and a process-global install slot
//! — so that `eda-exec` stays dependency-free and `eda-store` (which
//! depends on `eda-exec` for env parsing and hashing) can implement it
//! without a crate cycle.
//!
//! **Semantic invisibility.** A backing is a pure cache: a `load` hit
//! must return exactly the bytes a prior `store` of the same
//! `(namespace, version, key)` wrote, or `None`. Every value cached
//! through this seam is a deterministic function of its key material, so
//! a flow run with a backing installed — cold, warm, or with a corrupted
//! store underneath — produces results bit-identical to a run without
//! one. `tests/store.rs` holds that property under fault injection.
//!
//! **Versioning.** `version` carries a content hash of the engine that
//! computed the value (simulator, power model, LLM generator — see
//! [`combine_versions`]). An implementation must never return bytes
//! stored under a different version for the same key: after an engine
//! change the old entries are stale and self-invalidate.

use crate::env::{parse_bool_knob, EnvKnobError};
use serde::Serialize;
use std::sync::{Arc, OnceLock, RwLock};

/// Namespace tag for eval results: `(source hash, testbench hash,
/// simulator version hash) → eval result`.
pub const NS_EVAL: u8 = 0;
/// Namespace tag for completions: `(model, prompt, temperature, seed) →
/// completion`.
pub const NS_COMPLETION: u8 = 1;

/// Knob disabling the installed backing without uninstalling it
/// (`EDA_STORE_ENABLE=0`); parsed once per lookup site construction.
pub const STORE_ENABLE_ENV: &str = "EDA_STORE_ENABLE";

/// Counter snapshot of a persistent store. All counters are sums of
/// per-operation outcomes, so totals are order-independent; merged into
/// flow reports next to `LlmReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct StoreStats {
    /// Loads served from disk.
    pub hits: u64,
    /// Loads that found nothing usable.
    pub misses: u64,
    /// Entries written (after admission).
    pub writes: u64,
    /// Writes rejected by the admission policy (TinyLFU scan guard).
    pub admission_rejects: u64,
    /// Entries evicted to stay inside the size budget.
    pub evictions: u64,
    /// Entries dropped because their version hash was stale.
    pub invalidations: u64,
    /// Entries that failed checksum/shape validation and were
    /// quarantined — detected, never served.
    pub corruptions: u64,
}

impl StoreStats {
    /// Adds `other`'s counters into `self` (cross-run aggregation).
    pub fn merge(&mut self, other: &StoreStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writes += other.writes;
        self.admission_rejects += other.admission_rejects;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.corruptions += other.corruptions;
    }

    /// Counters accrued since `base` was captured (per-run deltas on the
    /// shared process-global store).
    pub fn since(&self, base: &StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            writes: self.writes.saturating_sub(base.writes),
            admission_rejects: self.admission_rejects.saturating_sub(base.admission_rejects),
            evictions: self.evictions.saturating_sub(base.evictions),
            invalidations: self.invalidations.saturating_sub(base.invalidations),
            corruptions: self.corruptions.saturating_sub(base.corruptions),
        }
    }

    /// Total loads (hits + misses).
    pub fn loads(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A persistent content-addressed byte store. Implementations must be
/// safe to share across threads and must satisfy the invisibility and
/// versioning contracts in the module docs.
pub trait KvBacking: Send + Sync {
    /// Returns the payload stored under `(ns, version, key)`, or `None`
    /// on miss, stale version, or detected corruption.
    fn load(&self, ns: u8, version: u64, key: u64) -> Option<Vec<u8>>;
    /// Stores `bytes` under `(ns, version, key)`. Best-effort: admission
    /// policy or I/O failure may drop the write (the cache above simply
    /// recomputes next time).
    fn store(&self, ns: u8, version: u64, key: u64, bytes: &[u8]);
    /// Counter snapshot.
    fn stats(&self) -> StoreStats;
}

fn slot() -> &'static RwLock<Option<Arc<dyn KvBacking>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn KvBacking>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Installs `kv` as the process-global backing. Caches and clients
/// capture it **at construction** ([`crate::EvalCache::persistent`],
/// the LLM client's `new`), so install before building the flow.
/// Replaces any previous backing.
pub fn install(kv: Arc<dyn KvBacking>) {
    *slot().write().expect("backing slot poisoned") = Some(kv);
}

/// Removes the process-global backing (tests and benches; subsequent
/// cache constructions run memory-only).
pub fn uninstall() {
    *slot().write().expect("backing slot poisoned") = None;
}

/// Whether a backing occupies the slot, regardless of
/// `EDA_STORE_ENABLE`. Lets an env bootstrap avoid clobbering a
/// manually installed store.
pub fn is_installed() -> bool {
    slot().read().expect("backing slot poisoned").is_some()
}

/// The currently installed backing, honoring `EDA_STORE_ENABLE=0`.
///
/// # Panics
///
/// On a malformed `EDA_STORE_ENABLE` value, naming the variable.
pub fn installed() -> Option<Arc<dyn KvBacking>> {
    match try_installed() {
        Ok(kv) => kv,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`installed`].
///
/// # Errors
///
/// [`EnvKnobError`] when `EDA_STORE_ENABLE` is set to a non-boolean.
pub fn try_installed() -> Result<Option<Arc<dyn KvBacking>>, EnvKnobError> {
    if !parse_bool_knob(STORE_ENABLE_ENV)?.unwrap_or(true) {
        return Ok(None);
    }
    Ok(slot().read().expect("backing slot poisoned").clone())
}

/// Stats of the installed backing, or zeros when none is installed.
/// Flows snapshot this at entry and report the delta at exit.
pub fn installed_stats() -> StoreStats {
    slot()
        .read()
        .expect("backing slot poisoned")
        .as_ref()
        .map(|kv| kv.stats())
        .unwrap_or_default()
}

/// Folds several engine content hashes into one version hash (e.g. the
/// simulator plus the testbench generator for eval results). Order
/// matters; empty input maps to a fixed non-zero constant.
pub fn combine_versions(parts: &[u64]) -> u64 {
    let mut k = crate::EvalKey::new().word(parts.len() as u64);
    for &p in parts {
        k = k.word(p);
    }
    k.finish()
}

// ---------------------------------------------------------------------------
// CacheValue codec
// ---------------------------------------------------------------------------

/// Byte codec for values an [`crate::EvalCache`] persists. `decode` must
/// be the exact inverse of `encode`; a `None` from `decode` (foreign or
/// truncated bytes) degrades to a cache miss, never a wrong value.
pub trait CacheValue: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(bytes: &[u8]) -> Option<Self>;
}

impl CacheValue for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl CacheValue for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(i64::from_le_bytes(bytes.try_into().ok()?))
    }
}

impl CacheValue for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        Some(f64::from_bits(u64::from_le_bytes(bytes.try_into().ok()?)))
    }
}

impl CacheValue for String {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl CacheValue for (f64, String) {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0.to_bits().to_le_bytes());
        out.extend_from_slice(self.1.as_bytes());
    }
    fn decode(bytes: &[u8]) -> Option<Self> {
        let head: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
        let text = String::from_utf8(bytes[8..].to_vec()).ok()?;
        Some((f64::from_bits(u64::from_le_bytes(head)), text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// In-memory backing used by the unit tests below.
    #[derive(Default)]
    struct MemBacking {
        map: Mutex<HashMap<(u8, u64, u64), Vec<u8>>>,
        stats: Mutex<StoreStats>,
    }

    impl KvBacking for MemBacking {
        fn load(&self, ns: u8, version: u64, key: u64) -> Option<Vec<u8>> {
            let got = self.map.lock().get(&(ns, version, key)).cloned();
            let mut s = self.stats.lock();
            match got {
                Some(v) => {
                    s.hits += 1;
                    Some(v)
                }
                None => {
                    s.misses += 1;
                    None
                }
            }
        }
        fn store(&self, ns: u8, version: u64, key: u64, bytes: &[u8]) {
            self.map.lock().insert((ns, version, key), bytes.to_vec());
            self.stats.lock().writes += 1;
        }
        fn stats(&self) -> StoreStats {
            *self.stats.lock()
        }
    }

    #[test]
    fn codec_roundtrips() {
        fn rt<V: CacheValue + PartialEq + std::fmt::Debug>(v: V) {
            let mut bytes = Vec::new();
            v.encode(&mut bytes);
            assert_eq!(V::decode(&bytes), Some(v));
        }
        rt(0u64);
        rt(u64::MAX);
        rt(-17i64);
        rt(0.15625f64);
        rt(-0.0f64);
        rt(String::from("module m; endmodule"));
        rt(String::new());
        rt((0.875f64, String::from("feedback: mismatch at vector 3")));
        rt((1.0f64, String::new()));
    }

    #[test]
    fn codec_rejects_malformed_bytes() {
        assert_eq!(u64::decode(&[1, 2, 3]), None);
        assert_eq!(f64::decode(&[]), None);
        assert_eq!(<(f64, String)>::decode(&[0; 4]), None);
        assert_eq!(String::decode(&[0xff, 0xfe]), None, "invalid UTF-8 is a miss");
    }

    #[test]
    fn eval_cache_writes_through_and_reloads() {
        let kv = Arc::new(MemBacking::default());
        let version = 7;
        {
            let cache: crate::EvalCache<(f64, String)> =
                crate::EvalCache::with_backing(kv.clone(), version);
            cache.insert(42, (0.5, "fb".into()));
            assert_eq!(kv.stats().writes, 1);
        }
        // A fresh cache (new process run, same store) sees the entry.
        let cache2: crate::EvalCache<(f64, String)> =
            crate::EvalCache::with_backing(kv.clone(), version);
        assert_eq!(cache2.lookup(42), Some((0.5, "fb".into())));
        assert_eq!(cache2.hits(), 1, "a store hit counts as a cache hit");
        // Different version: the store must not serve it.
        let cache3: crate::EvalCache<(f64, String)> = crate::EvalCache::with_backing(kv, version + 1);
        assert_eq!(cache3.lookup(42), None);
    }

    #[test]
    fn install_uninstall_roundtrip() {
        // Serialized with other global-slot users via the env-var-free
        // nature of this test: it restores the empty slot on exit.
        let kv: Arc<dyn KvBacking> = Arc::new(MemBacking::default());
        install(kv);
        assert!(installed().is_some());
        assert_eq!(installed_stats(), StoreStats::default());
        uninstall();
        assert!(installed().is_none());
        assert_eq!(installed_stats(), StoreStats::default());
    }

    #[test]
    fn combine_versions_is_order_and_arity_sensitive() {
        let a = combine_versions(&[1, 2]);
        assert_ne!(a, combine_versions(&[2, 1]));
        assert_ne!(a, combine_versions(&[1, 2, 0]));
        assert_eq!(a, combine_versions(&[1, 2]));
        assert_ne!(combine_versions(&[]), 0);
    }

    #[test]
    fn stats_merge_and_since() {
        let mut a = StoreStats { hits: 2, misses: 1, writes: 3, ..StoreStats::default() };
        let b = StoreStats { hits: 1, corruptions: 4, ..StoreStats::default() };
        a.merge(&b);
        assert_eq!((a.hits, a.misses, a.writes, a.corruptions), (3, 1, 3, 4));
        let d = a.since(&b);
        assert_eq!((d.hits, d.corruptions), (2, 0));
        assert_eq!(a.loads(), 4);
    }
}
