//! Virtual clocks for time-budgeted and fault-injected runs.
//!
//! [`VirtualClock`] models wall-clock budgets without burning real time
//! (the paper compares a 24-hour LLM run against a 39-hour GP run; each
//! evaluation advances virtual time by the measured per-snippet cost of
//! the original setup). [`SharedClock`] is its thread-safe sibling for
//! code that accrues virtual time from engine worker threads: it counts
//! integer microseconds through an atomic, so concurrent advances
//! commute exactly and totals are bit-identical across thread counts
//! (floating-point accumulation would not be associative).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Microseconds per virtual second.
pub const US_PER_S: u64 = 1_000_000;

/// The time source a scheduler event loop reads "now" from.
///
/// Two families implement it:
///
/// * [`ManualClock`] — discrete-event virtual time. The loop *sets* the
///   clock to the next event's timestamp; reads are pure, so the whole
///   schedule is a deterministic function of its inputs.
/// * [`MonotonicClock`] — real wall time from a monotonic origin. Reads
///   advance on their own; [`ClockSource::wait_until`] actually sleeps.
///   Nothing about it is deterministic, which is exactly the point of a
///   real-time serving mode.
///
/// Both report microseconds since their origin, the same unit every
/// virtual quantity in the workspace already uses, so scheduler logic
/// written against this trait (admission, weighted fair queuing,
/// deadlines) is clock-generic.
pub trait ClockSource: Send + Sync {
    /// Microseconds elapsed since the clock's origin.
    fn now_us(&self) -> u64;

    /// Blocks until `now_us() >= deadline_us` (virtual clocks return
    /// immediately — a discrete-event loop jumps instead of waiting).
    fn wait_until(&self, deadline_us: u64);

    /// True for discrete-event (virtual) drivers: reports derived under
    /// such a clock are deterministic; wall-clock reports are not.
    fn is_virtual(&self) -> bool;
}

/// Discrete-event time source: holds whatever the event loop last set.
/// `wait_until` never blocks — advancing is the *loop's* job (it jumps
/// straight to the next event), which is what keeps virtual runs
/// independent of host speed and thread count.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_us: AtomicU64,
}

impl ManualClock {
    /// Starts at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Jumps the clock to `t_us` (monotone: earlier values are ignored,
    /// so racing observers never see time move backwards).
    pub fn set_us(&self, t_us: u64) {
        self.now_us.fetch_max(t_us, Ordering::Relaxed);
    }
}

impl ClockSource for ManualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }

    fn wait_until(&self, deadline_us: u64) {
        // Discrete-event loops jump; they never sleep. Model the jump.
        self.set_us(deadline_us);
    }

    fn is_virtual(&self) -> bool {
        true
    }
}

/// Wall-clock time source: microseconds since construction, read from a
/// monotonic [`Instant`]. `wait_until` parks the calling thread with
/// `sleep`; callers needing an interruptible wait should layer their own
/// parking on top (the serve real-time driver does).
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::start()
    }
}

impl MonotonicClock {
    /// Origin = now.
    pub fn start() -> Self {
        MonotonicClock { origin: Instant::now() }
    }
}

impl ClockSource for MonotonicClock {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    fn wait_until(&self, deadline_us: u64) {
        let now = self.now_us();
        if deadline_us > now {
            std::thread::sleep(std::time::Duration::from_micros(deadline_us - now));
        }
    }

    fn is_virtual(&self) -> bool {
        false
    }
}

/// Converts virtual seconds to whole microseconds (saturating, negatives
/// clamp to zero).
pub fn s_to_us(seconds: f64) -> u64 {
    if seconds <= 0.0 {
        return 0;
    }
    let us = seconds * US_PER_S as f64;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

/// A single-owner virtual clock accumulating seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    seconds: f64,
}

impl VirtualClock {
    /// Starts at zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances by `seconds`.
    pub fn advance(&mut self, seconds: f64) {
        self.seconds += seconds.max(0.0);
    }

    /// Elapsed virtual seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Elapsed virtual hours.
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }
}

/// A thread-safe virtual clock counting whole microseconds.
///
/// Concurrent `advance_us` calls commute (integer atomic adds), so the
/// final reading is independent of thread interleaving — a requirement
/// for flows whose serialized reports must match across engine thread
/// counts.
#[derive(Debug, Default)]
pub struct SharedClock {
    micros: AtomicU64,
}

impl SharedClock {
    /// Starts at zero.
    pub fn new() -> Self {
        SharedClock::default()
    }

    /// Advances by a whole number of virtual microseconds.
    pub fn advance_us(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::Relaxed);
    }

    /// Advances by `seconds` (rounded to microseconds; negatives ignored).
    pub fn advance(&self, seconds: f64) {
        self.advance_us(s_to_us(seconds));
    }

    /// Elapsed virtual microseconds.
    pub fn micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Elapsed virtual seconds.
    pub fn seconds(&self) -> f64 {
        self.micros() as f64 / US_PER_S as f64
    }

    /// Elapsed virtual hours.
    pub fn hours(&self) -> f64 {
        self.seconds() / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(1800.0);
        c.advance(1800.0);
        assert!((c.hours() - 1.0).abs() < 1e-12);
        c.advance(-5.0); // negative advances are ignored
        assert!((c.seconds() - 3600.0).abs() < 1e-12);
    }

    #[test]
    fn shared_clock_counts_micros_exactly() {
        let c = SharedClock::new();
        c.advance_us(500_000);
        c.advance(0.25);
        c.advance(-3.0); // ignored
        assert_eq!(c.micros(), 750_000);
        assert!((c.seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_clock_total_is_order_independent() {
        // Same advances from many threads always sum identically.
        let engine = crate::Engine::with_threads(8);
        let totals: Vec<u64> = (0..3)
            .map(|_| {
                let c = SharedClock::new();
                engine.map_indexed((1..=100u64).collect(), |_, i| c.advance_us(i * 7));
                c.micros()
            })
            .collect();
        assert_eq!(totals[0], (1..=100u64).map(|i| i * 7).sum::<u64>());
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0], totals[2]);
    }

    #[test]
    fn manual_clock_jumps_and_never_goes_backwards() {
        let c = ManualClock::new();
        assert!(c.is_virtual());
        assert_eq!(c.now_us(), 0);
        c.set_us(500);
        assert_eq!(c.now_us(), 500);
        c.set_us(100); // ignored: time is monotone
        assert_eq!(c.now_us(), 500);
        c.wait_until(900); // a virtual wait is a jump, not a sleep
        assert_eq!(c.now_us(), 900);
        c.wait_until(10); // waiting for the past is a no-op
        assert_eq!(c.now_us(), 900);
    }

    #[test]
    fn monotonic_clock_advances_and_waits() {
        let c = MonotonicClock::start();
        assert!(!c.is_virtual());
        let a = c.now_us();
        c.wait_until(a + 2_000); // 2 ms
        let b = c.now_us();
        assert!(b >= a + 2_000, "wait_until must actually wait: {a} -> {b}");
        assert!(c.now_us() >= b, "monotone reads");
    }

    #[test]
    fn s_to_us_clamps_and_rounds() {
        assert_eq!(s_to_us(-1.0), 0);
        assert_eq!(s_to_us(0.0000005), 1); // rounds, not truncates
        assert_eq!(s_to_us(2.5), 2_500_000);
        assert_eq!(s_to_us(f64::MAX), u64::MAX);
    }
}
