//! Virtual clocks for time-budgeted and fault-injected runs.
//!
//! [`VirtualClock`] models wall-clock budgets without burning real time
//! (the paper compares a 24-hour LLM run against a 39-hour GP run; each
//! evaluation advances virtual time by the measured per-snippet cost of
//! the original setup). [`SharedClock`] is its thread-safe sibling for
//! code that accrues virtual time from engine worker threads: it counts
//! integer microseconds through an atomic, so concurrent advances
//! commute exactly and totals are bit-identical across thread counts
//! (floating-point accumulation would not be associative).

use std::sync::atomic::{AtomicU64, Ordering};

/// Microseconds per virtual second.
pub const US_PER_S: u64 = 1_000_000;

/// Converts virtual seconds to whole microseconds (saturating, negatives
/// clamp to zero).
pub fn s_to_us(seconds: f64) -> u64 {
    if seconds <= 0.0 {
        return 0;
    }
    let us = seconds * US_PER_S as f64;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

/// A single-owner virtual clock accumulating seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    seconds: f64,
}

impl VirtualClock {
    /// Starts at zero.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Advances by `seconds`.
    pub fn advance(&mut self, seconds: f64) {
        self.seconds += seconds.max(0.0);
    }

    /// Elapsed virtual seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Elapsed virtual hours.
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }
}

/// A thread-safe virtual clock counting whole microseconds.
///
/// Concurrent `advance_us` calls commute (integer atomic adds), so the
/// final reading is independent of thread interleaving — a requirement
/// for flows whose serialized reports must match across engine thread
/// counts.
#[derive(Debug, Default)]
pub struct SharedClock {
    micros: AtomicU64,
}

impl SharedClock {
    /// Starts at zero.
    pub fn new() -> Self {
        SharedClock::default()
    }

    /// Advances by a whole number of virtual microseconds.
    pub fn advance_us(&self, us: u64) {
        self.micros.fetch_add(us, Ordering::Relaxed);
    }

    /// Advances by `seconds` (rounded to microseconds; negatives ignored).
    pub fn advance(&self, seconds: f64) {
        self.advance_us(s_to_us(seconds));
    }

    /// Elapsed virtual microseconds.
    pub fn micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }

    /// Elapsed virtual seconds.
    pub fn seconds(&self) -> f64 {
        self.micros() as f64 / US_PER_S as f64
    }

    /// Elapsed virtual hours.
    pub fn hours(&self) -> f64 {
        self.seconds() / 3600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(1800.0);
        c.advance(1800.0);
        assert!((c.hours() - 1.0).abs() < 1e-12);
        c.advance(-5.0); // negative advances are ignored
        assert!((c.seconds() - 3600.0).abs() < 1e-12);
    }

    #[test]
    fn shared_clock_counts_micros_exactly() {
        let c = SharedClock::new();
        c.advance_us(500_000);
        c.advance(0.25);
        c.advance(-3.0); // ignored
        assert_eq!(c.micros(), 750_000);
        assert!((c.seconds() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn shared_clock_total_is_order_independent() {
        // Same advances from many threads always sum identically.
        let engine = crate::Engine::with_threads(8);
        let totals: Vec<u64> = (0..3)
            .map(|_| {
                let c = SharedClock::new();
                engine.map_indexed((1..=100u64).collect(), |_, i| c.advance_us(i * 7));
                c.micros()
            })
            .collect();
        assert_eq!(totals[0], (1..=100u64).map(|i| i * 7).sum::<u64>());
        assert_eq!(totals[0], totals[1]);
        assert_eq!(totals[0], totals[2]);
    }

    #[test]
    fn s_to_us_clamps_and_rounds() {
        assert_eq!(s_to_us(-1.0), 0);
        assert_eq!(s_to_us(0.0000005), 1); // rounds, not truncates
        assert_eq!(s_to_us(2.5), 2_500_000);
        assert_eq!(s_to_us(f64::MAX), u64::MAX);
    }
}
