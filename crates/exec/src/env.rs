//! Shared, hardened environment-knob parsing.
//!
//! Every `EDA_*` knob in the workspace (`EDA_EXEC_THREADS`,
//! `EDA_LLM_FAULT_RATE`, `EDA_SERVE_WORKERS`, ...) goes through this one
//! parser, so malformed or out-of-range values are rejected with an
//! error naming the variable and the offending value instead of being
//! silently defaulted (the pre-hardening behaviour) or panicking with an
//! anonymous `unwrap` backtrace. Unset variables are *not* errors: they
//! mean "use the default" and parse to `None`.

use std::fmt;
use std::str::FromStr;

/// A malformed or out-of-range environment knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvKnobError {
    /// The variable that failed to parse (e.g. `EDA_EXEC_THREADS`).
    pub var: String,
    /// The raw value found in the environment.
    pub value: String,
    /// Why it was rejected (expected type or range).
    pub reason: String,
}

impl fmt::Display for EnvKnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid value `{}` for environment variable {}: {}",
            self.value, self.var, self.reason
        )
    }
}

impl std::error::Error for EnvKnobError {}

/// Reads and parses `var`. Unset (or empty after trimming) means "use
/// the default" and returns `Ok(None)`; anything else must parse as `T`.
///
/// # Errors
///
/// [`EnvKnobError`] naming the variable when the value does not parse.
pub fn parse_knob<T: FromStr>(var: &str) -> Result<Option<T>, EnvKnobError> {
    let Ok(raw) = std::env::var(var) else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed.parse::<T>().map(Some).map_err(|_| EnvKnobError {
        var: var.to_string(),
        value: trimmed.to_string(),
        reason: format!("expected a {}", std::any::type_name::<T>()),
    })
}

/// [`parse_knob`] plus an inclusive range check.
///
/// # Errors
///
/// [`EnvKnobError`] naming the variable when the value does not parse or
/// falls outside `[lo, hi]`.
pub fn parse_knob_in<T>(var: &str, lo: T, hi: T) -> Result<Option<T>, EnvKnobError>
where
    T: FromStr + PartialOrd + fmt::Display + Copy,
{
    match parse_knob::<T>(var)? {
        None => Ok(None),
        Some(v) if v < lo || v > hi => Err(EnvKnobError {
            var: var.to_string(),
            value: v.to_string(),
            reason: format!("expected a value in [{lo}, {hi}]"),
        }),
        Some(v) => Ok(Some(v)),
    }
}

/// Boolean knob: accepts `1/0`, `true/false`, `yes/no`, `on/off`
/// (case-insensitive). Unset returns `Ok(None)`.
///
/// # Errors
///
/// [`EnvKnobError`] naming the variable for any other value.
pub fn parse_bool_knob(var: &str) -> Result<Option<bool>, EnvKnobError> {
    let Some(raw) = parse_knob::<String>(var)? else {
        return Ok(None);
    };
    match raw.to_ascii_lowercase().as_str() {
        "1" | "true" | "yes" | "on" => Ok(Some(true)),
        "0" | "false" | "no" | "off" => Ok(Some(false)),
        other => Err(EnvKnobError {
            var: var.to_string(),
            value: other.to_string(),
            reason: "expected one of 1/0, true/false, yes/no, on/off".to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each test uses its own variable name: the test harness runs tests
    // on threads and the process environment is shared.

    #[test]
    fn unset_and_empty_mean_default() {
        assert_eq!(parse_knob::<u32>("EDA_TEST_KNOB_UNSET"), Ok(None));
        std::env::set_var("EDA_TEST_KNOB_EMPTY", "   ");
        assert_eq!(parse_knob::<u32>("EDA_TEST_KNOB_EMPTY"), Ok(None));
        std::env::remove_var("EDA_TEST_KNOB_EMPTY");
    }

    #[test]
    fn well_formed_values_parse_with_whitespace() {
        std::env::set_var("EDA_TEST_KNOB_OK", " 42 ");
        assert_eq!(parse_knob::<u64>("EDA_TEST_KNOB_OK"), Ok(Some(42)));
        std::env::remove_var("EDA_TEST_KNOB_OK");
    }

    #[test]
    fn malformed_values_error_and_name_the_variable() {
        std::env::set_var("EDA_TEST_KNOB_BAD", "three");
        let err = parse_knob::<u32>("EDA_TEST_KNOB_BAD").unwrap_err();
        std::env::remove_var("EDA_TEST_KNOB_BAD");
        assert_eq!(err.var, "EDA_TEST_KNOB_BAD");
        assert_eq!(err.value, "three");
        let msg = err.to_string();
        assert!(msg.contains("EDA_TEST_KNOB_BAD"), "{msg}");
        assert!(msg.contains("three"), "{msg}");
    }

    #[test]
    fn out_of_range_values_error_with_the_range() {
        std::env::set_var("EDA_TEST_KNOB_RANGE", "99");
        let err = parse_knob_in::<u32>("EDA_TEST_KNOB_RANGE", 0, 64).unwrap_err();
        std::env::remove_var("EDA_TEST_KNOB_RANGE");
        assert!(err.to_string().contains("[0, 64]"), "{err}");
        std::env::set_var("EDA_TEST_KNOB_RANGE_OK", "64");
        assert_eq!(parse_knob_in::<u32>("EDA_TEST_KNOB_RANGE_OK", 0, 64), Ok(Some(64)));
        std::env::remove_var("EDA_TEST_KNOB_RANGE_OK");
    }

    #[test]
    fn float_range_rejects_nan_free_bounds() {
        std::env::set_var("EDA_TEST_KNOB_RATE", "0.35");
        assert_eq!(parse_knob_in::<f64>("EDA_TEST_KNOB_RATE", 0.0, 1.0), Ok(Some(0.35)));
        std::env::remove_var("EDA_TEST_KNOB_RATE");
        std::env::set_var("EDA_TEST_KNOB_RATE2", "1.5");
        assert!(parse_knob_in::<f64>("EDA_TEST_KNOB_RATE2", 0.0, 1.0).is_err());
        std::env::remove_var("EDA_TEST_KNOB_RATE2");
    }

    #[test]
    fn bool_knob_accepts_the_usual_spellings() {
        for (raw, want) in [
            ("1", true),
            ("true", true),
            ("YES", true),
            ("on", true),
            ("0", false),
            ("False", false),
            ("no", false),
            ("OFF", false),
        ] {
            std::env::set_var("EDA_TEST_KNOB_BOOL", raw);
            assert_eq!(parse_bool_knob("EDA_TEST_KNOB_BOOL"), Ok(Some(want)), "{raw}");
        }
        std::env::set_var("EDA_TEST_KNOB_BOOL", "maybe");
        assert!(parse_bool_knob("EDA_TEST_KNOB_BOOL").is_err());
        std::env::remove_var("EDA_TEST_KNOB_BOOL");
    }
}
