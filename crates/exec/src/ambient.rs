//! Generic ambient-context propagation across engine worker threads.
//!
//! [`Engine::map_stage`](crate::Engine::map_stage) spawns fresh worker
//! threads per parallel batch, so any thread-local context the caller
//! holds (an observability session, say) would silently vanish inside
//! the closure. This module is the seam that carries it over without
//! `eda-exec` depending on who owns the context: a consumer installs a
//! process-wide [`Propagator`] once — `capture` runs on the submitting
//! thread before fan-out, `adopt` runs first thing on every worker.
//!
//! The payload is an opaque `Arc<dyn Any + Send + Sync>`; the engine
//! never inspects it. With no propagator installed (or `capture`
//! returning `None`) the parallel path pays one `OnceLock` read per
//! batch — nothing per task.

use std::any::Any;
use std::sync::{Arc, OnceLock};

/// Opaque context payload carried from submitter to workers.
pub type Captured = Arc<dyn Any + Send + Sync>;

/// The two halves of a context hand-off.
pub struct Propagator {
    /// Runs on the thread calling `map_stage`, before workers spawn.
    /// Return `None` when there is nothing to carry (the common case).
    pub capture: fn() -> Option<Captured>,
    /// Runs once at the top of every spawned worker thread, with the
    /// submitter's captured payload. Worker threads are batch-scoped,
    /// so no restore step exists — the thread (and its locals) end with
    /// the batch.
    pub adopt: fn(&Captured),
}

static PROPAGATOR: OnceLock<Propagator> = OnceLock::new();

/// Installs the process-wide propagator. The first caller wins;
/// returns `false` (and changes nothing) on later calls.
pub fn install_propagator(p: Propagator) -> bool {
    PROPAGATOR.set(p).is_ok()
}

/// Captures the submitting thread's context, if a propagator wants to.
pub(crate) fn capture() -> Option<Captured> {
    PROPAGATOR.get().and_then(|p| (p.capture)())
}

/// Hands a captured context to the current (worker) thread.
pub(crate) fn adopt(captured: &Option<Captured>) {
    if let (Some(p), Some(c)) = (PROPAGATOR.get(), captured.as_ref()) {
        (p.adopt)(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_install_is_rejected() {
        // Shared process state: whichever test (or consumer crate's
        // test) installs first wins; we only assert the contract that
        // a second install reports failure.
        let noop = || Propagator { capture: || None, adopt: |_| {} };
        let first = install_propagator(noop());
        let second = install_propagator(noop());
        assert!(!second || first, "at most one install can ever succeed");
        assert!(!install_propagator(noop()));
    }
}
