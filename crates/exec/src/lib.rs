//! # eda-exec — parallel candidate-evaluation engine with eval caching
//!
//! LLM-guided EDA flows (AutoChip refinement, SLT power-virus pools,
//! repair sweeps, HLS discrepancy testing) all share one hot shape:
//! a batch of independent candidates per round, each scored by a
//! deterministic simulator. This crate gives every flow the same two
//! primitives:
//!
//! * [`Engine`] — a scoped work-stealing thread pool (crossbeam deques,
//!   one LIFO worker per thread, a global FIFO injector). Results are
//!   collected **by candidate index**, so a parallel batch is
//!   bit-identical to the sequential fallback ([`Engine::sequential`],
//!   also selected by `EDA_EXEC_THREADS=1`).
//! * [`EvalCache`] — a sharded, mutex-guarded memo table keyed by a
//!   FNV-1a [`EvalKey`] over `(source hash, module name, testbench
//!   seed/vectors)`, so duplicate candidates are scored once. Hit/miss
//!   counters are updated in deterministic (sequential bookkeeping)
//!   order, so reports match across thread counts.
//!
//! [`Engine::score_batch`] combines both: within-batch duplicates are
//! deduplicated *before* evaluation (counted as cache hits), unique
//! work fans out across the pool, and results fan back in input order.
//!
//! ```
//! use eda_exec::{Engine, EvalCache, EvalKey};
//!
//! let engine = Engine::from_env();
//! let cache: EvalCache<u64> = EvalCache::new();
//! let items = vec!["a", "b", "a", "c"];
//! let scores = engine.score_batch(
//!     &cache,
//!     &items,
//!     |s| EvalKey::new().text(s).finish(),
//!     |_, s| s.len() as u64,
//! );
//! assert_eq!(scores, vec![1, 1, 1, 1]);
//! assert_eq!(cache.hits(), 1); // the duplicate "a" was never re-scored
//! ```

pub mod ambient;
pub mod backing;
pub mod clock;
pub mod env;

pub use backing::{combine_versions, CacheValue, KvBacking, StoreStats, NS_COMPLETION, NS_EVAL};
pub use clock::{
    s_to_us, ClockSource, ManualClock, MonotonicClock, SharedClock, VirtualClock, US_PER_S,
};
pub use env::{parse_bool_knob, parse_knob, parse_knob_in, EnvKnobError};

use crossbeam::deque::{Injector, Worker};
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Environment variable selecting the worker-thread count.
/// `1` forces the deterministic sequential fallback; `0` or unset means
/// "use available parallelism".
pub const THREADS_ENV: &str = "EDA_EXEC_THREADS";

const MAX_THREADS: usize = 64;
const CACHE_SHARDS: usize = 16;

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

/// Cooperative cancellation flag shared between a flow and whoever is
/// supervising it (the serve scheduler, a deadline watchdog, a caller).
///
/// Cloning shares the flag. Flows poll [`is_cancelled`](Self::is_cancelled)
/// at round boundaries and wind down early, returning whatever partial
/// report they have; cancellation is a request, never an abort.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------------
// EvalKey
// ---------------------------------------------------------------------------

/// FNV-1a key builder for cache entries. Chain [`text`](EvalKey::text) /
/// [`word`](EvalKey::word) calls over every input that influences a
/// candidate's score — source, module name, testbench seed and vectors —
/// then [`finish`](EvalKey::finish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalKey {
    h: u64,
}

impl Default for EvalKey {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalKey {
    pub fn new() -> Self {
        EvalKey { h: 0xcbf2_9ce4_8422_2325 }
    }

    fn mix_byte(mut self, b: u8) -> Self {
        self.h ^= b as u64;
        self.h = self.h.wrapping_mul(0x100_0000_01b3);
        self
    }

    /// Folds a string in, length-prefixed so `("ab","c")` and `("a","bc")`
    /// key differently.
    pub fn text(self, s: &str) -> Self {
        let mut k = self.word(s.len() as u64);
        for b in s.bytes() {
            k = k.mix_byte(b);
        }
        k
    }

    /// Folds one 64-bit word in (seeds, widths, vector values...).
    pub fn word(mut self, w: u64) -> Self {
        for b in w.to_le_bytes() {
            self = self.mix_byte(b);
        }
        self
    }

    /// Folds a slice of words in, length-prefixed (testbench vectors).
    pub fn words(self, ws: &[u64]) -> Self {
        let mut k = self.word(ws.len() as u64);
        for &w in ws {
            k = k.word(w);
        }
        k
    }

    pub fn finish(self) -> u64 {
        // Final avalanche (splitmix64 tail) so near-identical inputs
        // spread across shards.
        let mut z = self.h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------------
// EvalCache
// ---------------------------------------------------------------------------

/// Counter snapshot for an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: u64,
}

/// Sharded memo table for candidate evaluations. Values are cloned out,
/// so keep them cheap (scores, small reports).
///
/// Create one cache **per run** (not a global): counters then serialize
/// deterministically into flow reports. [`EvalCache::persistent`] layers
/// the process-global [`backing::KvBacking`] (when one is installed)
/// underneath: misses fall through to disk and inserts write through, so
/// a warm store turns re-runs' misses into hits without changing any
/// value a flow observes.
#[derive(Debug)]
pub struct EvalCache<V> {
    shards: Vec<Mutex<HashMap<u64, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    backing: Option<BackingHooks<V>>,
}

/// Captured backing plus the value codec, bound at construction so the
/// hot-path methods keep their `V: Clone`-only bounds.
struct BackingHooks<V> {
    kv: Arc<dyn KvBacking>,
    version: u64,
    enc: fn(&V) -> Vec<u8>,
    dec: fn(&[u8]) -> Option<V>,
}

impl<V> std::fmt::Debug for BackingHooks<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackingHooks").field("version", &self.version).finish_non_exhaustive()
    }
}

impl<V> Default for EvalCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> EvalCache<V> {
    pub fn new() -> Self {
        EvalCache {
            shards: (0..CACHE_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            backing: None,
        }
    }

    fn shard(&self, key: u64) -> &Mutex<HashMap<u64, V>> {
        &self.shards[(key as usize) % CACHE_SHARDS]
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats { hits: self.hits(), misses: self.misses(), entries: self.len() as u64 }
    }

    /// Whether a persistent backing is attached.
    pub fn is_persistent(&self) -> bool {
        self.backing.is_some()
    }
}

impl<V: CacheValue> EvalCache<V> {
    /// Cache layered over the process-global persistent backing
    /// ([`backing::install`]) under `version` — the content hash of the
    /// engine producing the values (see [`combine_versions`]). When no
    /// backing is installed (or `EDA_STORE_ENABLE=0`) this is exactly
    /// [`EvalCache::new`].
    pub fn persistent(version: u64) -> Self {
        match backing::installed() {
            Some(kv) => Self::with_backing(kv, version),
            None => Self::new(),
        }
    }

    /// Cache layered over an explicit backing (tests, custom stores).
    pub fn with_backing(kv: Arc<dyn KvBacking>, version: u64) -> Self {
        EvalCache {
            backing: Some(BackingHooks {
                kv,
                version,
                enc: |v| {
                    let mut out = Vec::new();
                    v.encode(&mut out);
                    out
                },
                dec: V::decode,
            }),
            ..Self::new()
        }
    }
}

impl<V: Clone> EvalCache<V> {
    /// Looks a key up, counting a hit or a miss. With a persistent
    /// backing attached, a memory miss falls through to disk; a usable
    /// entry there is promoted into memory and counts as a hit.
    pub fn lookup(&self, key: u64) -> Option<V> {
        let got = self.shard(key).lock().get(&key).cloned();
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                if let Some(v) = self.backing_load(key) {
                    self.shard(key).lock().insert(key, v.clone());
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(v);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn backing_load(&self, key: u64) -> Option<V> {
        let b = self.backing.as_ref()?;
        (b.dec)(&b.kv.load(NS_EVAL, b.version, key)?)
    }

    /// Inserts without touching the counters (pair with [`lookup`](Self::lookup)).
    /// Writes through to the persistent backing when one is attached.
    pub fn insert(&self, key: u64, value: V) {
        if let Some(b) = &self.backing {
            b.kv.store(NS_EVAL, b.version, key, &(b.enc)(&value));
        }
        self.shard(key).lock().insert(key, value);
    }

    /// Memoized evaluation: returns the cached value or computes, stores
    /// and returns it. Safe to call concurrently from worker threads;
    /// two racing computations of the same key both store (last wins,
    /// values for one key must be equal by construction).
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: u64, f: F) -> V {
        if let Some(v) = self.lookup(key) {
            return v;
        }
        let v = f();
        self.insert(key, v.clone());
        v
    }
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Wall-clock of one named batch (not serialized — timing only).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTiming {
    pub stage: String,
    pub tasks: u64,
    pub wall_ns: u64,
}

/// Serializable counter snapshot surfaced in flow reports. Timing and
/// thread-count fields are `#[serde(skip)]` so parallel and sequential
/// runs serialize identically.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct ExecReport {
    /// Evaluations actually executed (cache hits excluded).
    pub tasks_run: u64,
    /// Batches submitted through the engine.
    pub batches: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    #[serde(skip)]
    pub threads: u64,
    #[serde(skip)]
    pub wall_ns: u64,
    #[serde(skip)]
    pub stages: Vec<StageTiming>,
}

impl ExecReport {
    /// Snapshot of an engine plus a cache's counters.
    pub fn collect<V>(engine: &Engine, cache: &EvalCache<V>) -> Self {
        let mut r = engine.report();
        let s = cache.stats();
        r.cache_hits = s.hits;
        r.cache_misses = s.misses;
        r
    }

    /// Counters accrued since `base` was captured with
    /// [`Engine::report`]. Flows take a baseline at entry and report the
    /// delta at exit, so a caller reusing one engine across several runs
    /// still gets per-run numbers (the cache is per-run already).
    pub fn since<V>(engine: &Engine, cache: &EvalCache<V>, base: &ExecReport) -> Self {
        let mut r = Self::collect(engine, cache);
        r.tasks_run = r.tasks_run.saturating_sub(base.tasks_run);
        r.batches = r.batches.saturating_sub(base.batches);
        r.wall_ns = r.wall_ns.saturating_sub(base.wall_ns);
        let skip = base.stages.len().min(r.stages.len());
        r.stages.drain(..skip);
        r
    }
}

/// Work-stealing evaluation engine. Construct once per run and thread it
/// through the flow; see [`Engine::from_env`] for the standard knob.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    tasks_run: AtomicU64,
    batches: AtomicU64,
    wall_ns: AtomicU64,
    stages: Mutex<Vec<StageTiming>>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Engine {
    fn with_thread_count(threads: usize) -> Self {
        Engine {
            threads: threads.clamp(1, MAX_THREADS),
            tasks_run: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            wall_ns: AtomicU64::new(0),
            stages: Mutex::new(Vec::new()),
        }
    }

    /// Pool sized from `EDA_EXEC_THREADS`, falling back to available
    /// parallelism. `EDA_EXEC_THREADS=1` selects the sequential path.
    ///
    /// # Panics
    ///
    /// On a malformed or out-of-range `EDA_EXEC_THREADS`, with a message
    /// naming the variable; use [`Engine::try_from_env`] to handle the
    /// error instead.
    pub fn from_env() -> Self {
        match Self::try_from_env() {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible form of [`Engine::from_env`]: `EDA_EXEC_THREADS` unset or
    /// `0` means available parallelism, `1..=64` is an explicit count,
    /// and anything else is an [`EnvKnobError`] naming the variable.
    pub fn try_from_env() -> Result<Self, EnvKnobError> {
        let requested = env::parse_knob_in::<usize>(THREADS_ENV, 0, MAX_THREADS)?.unwrap_or(0);
        if requested > 0 {
            return Ok(Self::with_thread_count(requested));
        }
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Ok(Self::with_thread_count(avail))
    }

    /// Deterministic single-thread fallback (no worker threads spawned).
    pub fn sequential() -> Self {
        Self::with_thread_count(1)
    }

    /// Pool with an explicit thread count (clamped to `1..=64`).
    pub fn with_threads(threads: usize) -> Self {
        Self::with_thread_count(threads)
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Counter snapshot (cache fields zero — see [`ExecReport::collect`]).
    pub fn report(&self) -> ExecReport {
        ExecReport {
            tasks_run: self.tasks_run.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            cache_hits: 0,
            cache_misses: 0,
            threads: self.threads as u64,
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            stages: self.stages.lock().clone(),
        }
    }

    /// Maps `f` over `items`, returning results in input order. The
    /// parallel path distributes `(index, item)` tasks through a global
    /// injector to LIFO workers and writes each result into its input
    /// slot, so output is identical to the sequential path.
    pub fn map_indexed<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.map_stage("batch", items, f)
    }

    /// [`map_indexed`](Self::map_indexed) with a stage label recorded in
    /// the per-stage wall-clock table.
    pub fn map_stage<T, R, F>(&self, stage: &str, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        let start = Instant::now();
        let workers = self.threads.min(n.max(1));
        let out: Vec<R> = if workers <= 1 {
            items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect()
        } else {
            let injector = Injector::new();
            for task in items.into_iter().enumerate() {
                injector.push(task);
            }
            let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
            // Carry the submitter's ambient context (observability etc.)
            // onto the batch-scoped worker threads.
            let captured = ambient::capture();
            crossbeam::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|_| {
                        ambient::adopt(&captured);
                        let local: Worker<(usize, T)> = Worker::new_lifo();
                        loop {
                            let task = local
                                .pop()
                                .or_else(|| injector.steal_batch_and_pop(&local).success());
                            match task {
                                Some((i, t)) => {
                                    let r = f(i, t);
                                    *slots[i].lock() = Some(r);
                                }
                                None => break,
                            }
                        }
                    });
                }
            })
            .expect("exec worker panicked");
            slots
                .into_iter()
                .map(|m| m.into_inner().expect("exec: unfilled result slot"))
                .collect()
        };
        let wall = start.elapsed().as_nanos() as u64;
        self.tasks_run.fetch_add(n as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.wall_ns.fetch_add(wall, Ordering::Relaxed);
        self.stages.lock().push(StageTiming {
            stage: stage.to_string(),
            tasks: n as u64,
            wall_ns: wall,
        });
        out
    }

    /// Batch scoring with cache + within-batch deduplication.
    ///
    /// Each item is keyed by `key_of`; items whose key is already cached
    /// — or already claimed by an earlier item in the same batch — are
    /// never evaluated (both count as cache hits; the hit counter is
    /// bumped in input order, before any evaluation, so counts are
    /// independent of thread scheduling). Unique items run through the
    /// pool and fan back out to every index sharing their key.
    pub fn score_batch<T, V, K, F>(
        &self,
        cache: &EvalCache<V>,
        items: &[T],
        key_of: K,
        eval: F,
    ) -> Vec<V>
    where
        T: Sync,
        V: Clone + Send,
        K: Fn(&T) -> u64,
        F: Fn(usize, &T) -> V + Sync,
    {
        self.score_batch_stage("score", cache, items, key_of, eval)
    }

    /// [`score_batch`](Self::score_batch) with a stage label.
    pub fn score_batch_stage<T, V, K, F>(
        &self,
        stage: &str,
        cache: &EvalCache<V>,
        items: &[T],
        key_of: K,
        eval: F,
    ) -> Vec<V>
    where
        T: Sync,
        V: Clone + Send,
        K: Fn(&T) -> u64,
        F: Fn(usize, &T) -> V + Sync,
    {
        let keys: Vec<u64> = items.iter().map(&key_of).collect();
        // Sequential bookkeeping pass: resolve each index to a cached
        // value, a duplicate of an earlier index, or fresh work.
        let mut resolved: Vec<Option<V>> = Vec::with_capacity(items.len());
        let mut first_claim: HashMap<u64, usize> = HashMap::new();
        let mut fresh: Vec<usize> = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            match first_claim.entry(key) {
                Entry::Occupied(_) => {
                    // Within-batch duplicate: scored once, shared here.
                    cache.hits.fetch_add(1, Ordering::Relaxed);
                    resolved.push(None);
                }
                Entry::Vacant(slot) => {
                    if let Some(v) = cache.lookup(key) {
                        resolved.push(Some(v));
                    } else {
                        slot.insert(i);
                        fresh.push(i);
                        resolved.push(None);
                    }
                }
            }
        }
        // Evaluate only the fresh indices, in parallel.
        let fresh_values = self.map_stage(stage, fresh.clone(), |_, i| eval(i, &items[i]));
        let mut by_key: HashMap<u64, V> = HashMap::with_capacity(fresh.len());
        for (i, v) in fresh.into_iter().zip(fresh_values) {
            cache.insert(keys[i], v.clone());
            by_key.insert(keys[i], v);
        }
        resolved
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(v) => v,
                None => by_key
                    .get(&keys[i])
                    .cloned()
                    .expect("exec: fresh evaluation missing for key"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_indexed_preserves_order() {
        for engine in [Engine::sequential(), Engine::with_threads(8)] {
            let items: Vec<u64> = (0..100).collect();
            let out = engine.map_indexed(items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let work = |_, x: u64| x.wrapping_mul(0x9e37_79b9).rotate_left(13) ^ 0xabcd;
        let items: Vec<u64> = (0..500).map(|i| i * 7 + 3).collect();
        let seq = Engine::sequential().map_indexed(items.clone(), work);
        let par = Engine::with_threads(6).map_indexed(items, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn counters_track_batches_and_tasks() {
        let e = Engine::with_threads(4);
        e.map_stage("a", vec![1, 2, 3], |_, x| x);
        e.map_stage("b", vec![4, 5], |_, x| x);
        let r = e.report();
        assert_eq!(r.tasks_run, 5);
        assert_eq!(r.batches, 2);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.stages[0].stage, "a");
        assert_eq!(r.stages[0].tasks, 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        let e = Engine::with_threads(4);
        let out: Vec<u64> = e.map_indexed(Vec::<u64>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn eval_key_sensitive_to_every_component() {
        let base = EvalKey::new().text("module m").text("m").word(7).finish();
        assert_ne!(base, EvalKey::new().text("module n").text("m").word(7).finish());
        assert_ne!(base, EvalKey::new().text("module m").text("n").word(7).finish());
        assert_ne!(base, EvalKey::new().text("module m").text("m").word(8).finish());
        // Length prefixing: shifting a byte across a boundary changes the key.
        assert_ne!(
            EvalKey::new().text("ab").text("c").finish(),
            EvalKey::new().text("a").text("bc").finish()
        );
        // And the same inputs always key identically.
        assert_eq!(base, EvalKey::new().text("module m").text("m").word(7).finish());
    }

    #[test]
    fn eval_key_distinguishes_testbench_vectors() {
        let a = EvalKey::new().text("src").words(&[1, 2, 3]).finish();
        let b = EvalKey::new().text("src").words(&[1, 2, 4]).finish();
        let c = EvalKey::new().text("src").words(&[1, 2]).finish();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn cache_hit_miss_accounting() {
        let c: EvalCache<u32> = EvalCache::new();
        assert_eq!(c.lookup(42), None);
        c.insert(42, 7);
        assert_eq!(c.lookup(42), Some(7));
        assert_eq!(c.lookup(43), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        let mut calls = 0;
        let v = c.get_or_insert_with(42, || {
            calls += 1;
            0
        });
        assert_eq!(v, 7);
        assert_eq!(calls, 0, "cached key must not re-evaluate");
    }

    #[test]
    fn concurrent_insert_get_is_consistent() {
        let c: EvalCache<u64> = EvalCache::new();
        let e = Engine::with_threads(8);
        // 400 tasks over 50 distinct keys, all racing get_or_insert_with.
        let evals = AtomicU64::new(0);
        let out = e.map_indexed((0..400u64).collect(), |_, i| {
            let key = i % 50;
            c.get_or_insert_with(key, || {
                evals.fetch_add(1, Ordering::Relaxed);
                key * 3
            })
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64 % 50) * 3);
        }
        assert_eq!(c.len(), 50);
        assert_eq!(c.hits() + c.misses(), 400);
        // Racing duplicate evaluations are allowed but bounded by misses.
        assert!(evals.load(Ordering::Relaxed) >= 50);
        assert_eq!(evals.load(Ordering::Relaxed), c.misses());
    }

    #[test]
    fn score_batch_dedups_and_fans_out() {
        let c: EvalCache<u64> = EvalCache::new();
        let e = Engine::with_threads(4);
        let evals = AtomicU64::new(0);
        let items = vec!["x", "y", "x", "z", "y", "x"];
        let out = e.score_batch(
            &c,
            &items,
            |s| EvalKey::new().text(s).finish(),
            |_, s| {
                evals.fetch_add(1, Ordering::Relaxed);
                s.len() as u64 + s.bytes().map(u64::from).sum::<u64>()
            },
        );
        assert_eq!(out.len(), 6);
        assert_eq!(out[0], out[2]);
        assert_eq!(out[0], out[5]);
        assert_eq!(out[1], out[4]);
        assert_eq!(evals.load(Ordering::Relaxed), 3, "three distinct candidates");
        assert_eq!(c.hits(), 3, "three within-batch duplicates");
        assert_eq!(c.misses(), 3);
        // A second identical batch is served fully from cache.
        let again = e.score_batch(&c, &items, |s| EvalKey::new().text(s).finish(), |_, s| {
            evals.fetch_add(1, Ordering::Relaxed);
            s.len() as u64
        });
        assert_eq!(again, out);
        assert_eq!(evals.load(Ordering::Relaxed), 3);
        assert_eq!(c.hits(), 9);
    }

    #[test]
    fn score_batch_counters_match_across_modes() {
        let items: Vec<u32> = vec![1, 2, 1, 3, 2, 1, 4];
        let run = |engine: Engine| {
            let c: EvalCache<u32> = EvalCache::new();
            let out = engine.score_batch(&c, &items, |&x| x as u64, |_, &x| x * 10);
            (out, c.hits(), c.misses())
        };
        let (seq, seq_h, seq_m) = run(Engine::sequential());
        let (par, par_h, par_m) = run(Engine::with_threads(8));
        assert_eq!(seq, par);
        assert_eq!((seq_h, seq_m), (par_h, par_m));
        assert_eq!((seq_h, seq_m), (3, 4));
    }

    #[test]
    fn exec_report_serializes_without_timing_fields() {
        let e = Engine::with_threads(3);
        e.map_indexed(vec![1, 2], |_, x| x);
        let mut s = serde::Serializer::new(false);
        e.report().serialize(&mut s);
        let json = s.into_string();
        assert!(json.contains("\"tasks_run\":2"));
        assert!(!json.contains("wall_ns"), "timing must not serialize: {json}");
        assert!(!json.contains("threads"), "thread count must not serialize: {json}");
    }

    #[test]
    fn since_reports_per_run_deltas_on_a_reused_engine() {
        // A caller may thread one engine through several flow runs; each
        // run must still report only its own counters.
        let e = Engine::with_threads(4);
        let mut reports = Vec::new();
        for _ in 0..2 {
            let cache: EvalCache<u64> = EvalCache::new();
            let base = e.report();
            e.score_batch(&cache, &[1u64, 2, 2, 3], |x| *x, |_, x| x * 10);
            reports.push(ExecReport::since(&e, &cache, &base));
        }
        // Serialized form (counters only — timing is skipped) must match
        // exactly between the two runs; raw wall-clock may differ.
        let json: Vec<String> = reports
            .iter()
            .map(|r| {
                let mut s = serde::Serializer::new(false);
                r.serialize(&mut s);
                s.into_string()
            })
            .collect();
        assert_eq!(json[0], json[1]);
        assert_eq!(reports[0].tasks_run, 3);
        assert_eq!(reports[0].batches, 1);
        assert_eq!(reports[0].cache_hits, 1);
        assert_eq!(reports[0].cache_misses, 3);
        assert_eq!(reports[0].stages.len(), 1);
    }

    #[test]
    fn env_knob_forces_sequential() {
        // One test owns THREADS_ENV end to end (the process environment
        // is shared across test threads): parsed value 1 => sequential
        // engine; malformed and out-of-range values => typed errors.
        std::env::set_var(THREADS_ENV, "1");
        let e = Engine::from_env();
        assert!(!e.is_parallel());
        assert_eq!(e.threads(), 1);

        std::env::set_var(THREADS_ENV, "lots");
        let err = Engine::try_from_env().unwrap_err();
        assert_eq!(err.var, THREADS_ENV);
        assert!(err.to_string().contains(THREADS_ENV), "{err}");

        std::env::set_var(THREADS_ENV, "65");
        assert!(Engine::try_from_env().is_err(), "out-of-range thread count must be rejected");

        std::env::remove_var(THREADS_ENV);
        assert!(Engine::try_from_env().is_ok());
    }

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!t.is_cancelled());
        u.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(u.is_cancelled());
    }
}
