//! Property-based tests over core data structures and invariants,
//! spanning crates through the facade.

use llm4eda::{cmini, exec, hdl, hls, riscv, sltgen, synth};
use proptest::prelude::*;

/// The mini-C width-wrap invariant, shared between the random property
/// below and the explicit regression-corpus replay (the corpus entries
/// in `property_tests.proptest-regressions` replay through this exact
/// body, so a saved counterexample can never silently stop being
/// exercised).
fn check_cmini_wrap_idempotent(v: i64, bits: u32, unsigned: bool) {
    let once = cmini::wrap(v, bits, unsigned);
    assert_eq!(cmini::wrap(once, bits, unsigned), once, "wrap must be idempotent");
    let once = once as i128;
    if unsigned {
        assert!(once >= 0 && once < (1i128 << bits), "unsigned wrap out of range: {once}");
    } else {
        assert!(
            once >= -(1i128 << (bits - 1)) && once < (1i128 << (bits - 1)),
            "signed wrap out of range: {once}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// HDL Value arithmetic agrees with native wrapping arithmetic.
    #[test]
    fn value_add_matches_u64(a in any::<u64>(), b in any::<u64>(), w in 1u32..=64) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let va = hdl::Value::from_u64(w, a & mask);
        let vb = hdl::Value::from_u64(w, b & mask);
        let sum = va.add(&vb);
        prop_assert_eq!(sum.to_u64(), Some((a & mask).wrapping_add(b & mask) & mask));
    }

    /// Slice/concat round-trips for any split point.
    #[test]
    fn value_slice_concat_roundtrip(v in any::<u64>(), w in 2u32..=64, cut in 1u32..63) {
        let cut = cut.min(w - 1);
        let val = hdl::Value::from_u64(w, v);
        let hi = val.slice(w - 1, cut);
        let lo = val.slice(cut - 1, 0);
        prop_assert_eq!(hi.concat(&lo).to_u64(), val.to_u64());
    }

    /// X never silently becomes defined through bitwise ops with X inputs
    /// on both sides.
    #[test]
    fn x_is_sticky_for_xor(w in 1u32..=64) {
        let x = hdl::Value::all_x(w);
        prop_assert!(x.xor(&x).has_x());
        prop_assert!(x.add(&x).has_x());
    }

    /// The mini-C width wrap is idempotent and bounded.
    #[test]
    fn cmini_wrap_idempotent(v in any::<i64>(), bits in 1u32..=63, unsigned in any::<bool>()) {
        check_cmini_wrap_idempotent(v, bits, unsigned);
    }

    /// Levenshtein is a metric: symmetric, zero iff equal, triangle holds.
    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,24}", b in "[a-z]{0,24}", c in "[a-z]{0,24}") {
        let ab = sltgen::levenshtein(&a, &b);
        let ba = sltgen::levenshtein(&b, &a);
        prop_assert_eq!(ab, ba);
        prop_assert_eq!(ab == 0, a == b);
        let bc = sltgen::levenshtein(&b, &c);
        let ac = sltgen::levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    /// AIG and() is commutative and idempotent under structural hashing.
    #[test]
    fn aig_and_commutes(seed in any::<bool>()) {
        let mut g = synth::Aig::new();
        let a = g.input("a");
        let b = g.input("b");
        let (x, y) = if seed { (a, b) } else { (b, a) };
        let n1 = g.and(x, y);
        let n2 = g.and(y, x);
        prop_assert_eq!(n1, n2);
        prop_assert_eq!(g.and(n1, n1), n1);
    }

    /// C arithmetic agrees between the interpreter, the HLS FSMD, and the
    /// compiled RISC-V binary on a random expression-grid program.
    #[test]
    fn three_backends_agree(a in 0i64..1000, b in 1i64..1000, k in 1i64..16) {
        let src = format!(
            "int f(int a, int b) {{
               int acc = 0;
               for (int i = 0; i < {k}; i++) {{
                 acc += (a + i) * (b - i) + (a >> 1) - (b & 7);
               }}
               return acc;
             }}"
        );
        let prog = cmini::parse(&src).unwrap();
        let cpu = cmini::Interp::new(&prog).call_ints("f", &[a, b]).unwrap();
        // FSMD.
        let proj = hls::HlsProject::compile(&prog, "f", hls::HlsOptions::default()).unwrap();
        let hw = proj.run(&[a, b], &mut []).unwrap();
        prop_assert_eq!(hw.ret, Some(cpu));
        // RISC-V (32-bit model: compare in wrapped i32 space).
        let compiled = riscv::compile_c(&prog, "f").unwrap();
        let mut cpu32 = riscv::Cpu::new(riscv::CpuConfig::default());
        for (loc, v) in compiled.params.iter().zip(&[a, b]) {
            match loc {
                riscv::ParamLoc::Reg(r) => cpu32.regs[*r as usize] = *v as u32,
                riscv::ParamLoc::Mem(addr) => cpu32.store_word(*addr, *v as u32).unwrap(),
            }
        }
        let rv = cpu32.run(&compiled.instrs).unwrap().a0;
        prop_assert_eq!(rv as i32, cpu as i32);
    }

    /// Every suite testbench is internally consistent for any seed.
    #[test]
    fn suite_testbenches_self_consistent(seed in 0u64..500) {
        let p = eda_suite::problem("alu8").unwrap();
        let tb = p.testbench(12, seed).unwrap();
        let report = hdl::check_source(p.reference, p.module_name, &tb).unwrap();
        prop_assert!(report.all_passed());
    }

    /// The assembler round-trips through disassembly for ALU programs.
    #[test]
    fn assembler_accepts_own_alu_output(n in 1usize..20) {
        let body: String = (0..n)
            .map(|i| format!("addi t{}, zero, {}\n", i % 3, i + 1))
            .collect();
        let src = format!("{body}ecall\n");
        let prog = riscv::assemble(&src).unwrap();
        prop_assert_eq!(prog.len(), n + 1);
    }

    /// Parallel batch scoring on the engine equals a plain sequential map:
    /// same scores, same order, for any batch (duplicates included).
    #[test]
    fn parallel_batch_scoring_matches_sequential_map(
        items in proptest::collection::vec(0u64..32, 0..=40),
        threads in 1usize..8,
    ) {
        let score = |x: &u64| (x.wrapping_mul(0x9e37_79b9) ^ (x >> 3)) as i64 - 7;
        let expected: Vec<i64> = items.iter().map(score).collect();

        let engine = exec::Engine::with_threads(threads);
        let cache: exec::EvalCache<i64> = exec::EvalCache::new();
        let got = engine.score_batch(
            &cache,
            &items,
            |x| exec::EvalKey::new().word(*x).finish(),
            |_, x| score(x),
        );
        prop_assert_eq!(&got, &expected);

        // Within-batch duplicates are scored once; every hit + miss
        // accounts for exactly one input.
        let distinct = items.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        prop_assert_eq!(cache.misses(), distinct);
        prop_assert_eq!(cache.hits() + cache.misses(), items.len() as u64);

        // A second pass over the same batch is served purely from cache
        // and still matches.
        let again = engine.score_batch(
            &cache,
            &items,
            |x| exec::EvalKey::new().word(*x).finish(),
            |_, x| score(x),
        );
        prop_assert_eq!(&again, &expected);
        prop_assert_eq!(cache.misses(), distinct);
    }
}

/// Replays every saved counterexample in
/// `property_tests.proptest-regressions` against the property it was
/// minimized from. The vendored proptest stand-in generates from fresh
/// seeds only and never reads the regression file, so without this test
/// the checked-in corpus was dead weight: a reintroduced bug that only
/// fires on a saved case would pass CI. Each `# shrinks to ...` comment
/// is parsed back into concrete arguments; an entry with no matching
/// handler fails loudly so new corpus lines must be wired up here.
#[test]
fn regression_corpus_replays() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/property_tests.proptest-regressions");
    let corpus = std::fs::read_to_string(path).expect("regression corpus is checked in");
    let mut replayed = 0u32;
    for line in corpus.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        assert!(line.starts_with("cc "), "unrecognized corpus line: {line}");
        let shrunk = line
            .split_once("# shrinks to ")
            .unwrap_or_else(|| panic!("corpus line without a shrinks-to comment: {line}"))
            .1;
        // "v = 0, bits = 63, unsigned = true" -> name/value pairs.
        let vars: std::collections::HashMap<&str, &str> = shrunk
            .split(", ")
            .filter_map(|kv| kv.split_once(" = "))
            .map(|(k, v)| (k.trim(), v.trim()))
            .collect();
        let arg = |name: &str| -> &str {
            vars.get(name).unwrap_or_else(|| panic!("corpus entry lacks `{name}`: {line}"))
        };
        match () {
            _ if vars.contains_key("v") && vars.contains_key("bits") => {
                check_cmini_wrap_idempotent(
                    arg("v").parse().expect("v parses"),
                    arg("bits").parse().expect("bits parses"),
                    arg("unsigned").parse().expect("unsigned parses"),
                );
            }
            _ => panic!("no replay handler for regression entry: {line}"),
        }
        replayed += 1;
    }
    assert!(replayed >= 1, "the corpus must replay at least its known entry");
}
