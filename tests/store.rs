//! Crash, corruption, and property suite for the persistent store.
//!
//! Three layers of proof that `eda-store` is *semantically invisible*:
//!
//! 1. **Policy properties** — the bounded store is compared against an
//!    in-memory LRU oracle under random op sequences: it never exceeds
//!    its byte budget, LRU evicts exactly the least-recently-used
//!    entries, and TinyLFU admission keeps hot keys resident through
//!    one-shot scans.
//! 2. **Crash recovery** — a scripted write workload is killed at
//!    *every* filesystem-operation index via the seed-driven
//!    [`store::FaultyFs`]; each truncated store is reopened and must
//!    load cleanly, serving only values that were actually stored
//!    (atomic tmp+rename means no torn final entries — ever).
//! 3. **Flow invisibility** — a full AutoChip run with the store off,
//!    cold, warm, and corrupted-then-recovered produces identical
//!    semantic results (sources, scores, rounds, virtual time), with
//!    warm runs doing strictly less simulator and transport work.
//!
//! Tests that install the process-global backing serialize on a guard
//! mutex — the global slot and the `EDA_STORE_ENABLE` knob are
//! process-wide state.

use llm4eda::{autochip, exec, llm, store, suite};

use exec::backing;
use exec::backing::{NS_COMPLETION, NS_EVAL};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use store::{EvictionPolicy, FaultyFs, FsFaultConfig, RealFs, Store, StoreConfig, HEADER_LEN};

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "eda-store-suite-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Serializes tests that touch the process-global backing slot.
fn global_guard() -> MutexGuard<'static, ()> {
    static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
    match GUARD.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Installs a store globally for a scope; uninstalls on drop (also on
/// panic, so one failing test cannot leak its store into another).
struct Installed;

impl Installed {
    fn new(s: Arc<Store>) -> Self {
        backing::install(s);
        Installed
    }
}

impl Drop for Installed {
    fn drop(&mut self) {
        backing::uninstall();
    }
}

fn bounded(dir: PathBuf, max_bytes: u64, policy: EvictionPolicy) -> Store {
    Store::open(StoreConfig { dir, max_bytes, policy }).expect("store opens").0
}

// ---------------------------------------------------------------------------
// 1. Policy properties vs an in-memory oracle
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The bounded LRU store tracks a reference LRU oracle exactly:
    /// same residents, same byte ceiling, hits exactly where the oracle
    /// predicts them.
    #[test]
    fn lru_store_matches_inmemory_oracle(raw in proptest::collection::vec(any::<u32>(), 1..=80)) {
        const CAP_ENTRIES: u64 = 4;
        let entry_size = (HEADER_LEN + 8) as u64;
        let dir = unique_dir("oracle");
        let s = bounded(dir.clone(), CAP_ENTRIES * entry_size, EvictionPolicy::Lru);
        // Oracle: front = least recently used.
        let mut oracle: Vec<u64> = Vec::new();
        for r in raw {
            let key = (r >> 1) as u64 % 12;
            if r & 1 == 0 {
                s.store_entry(NS_EVAL, 1, key, &key.to_le_bytes());
                oracle.retain(|&k| k != key);
                oracle.push(key);
                if oracle.len() as u64 > CAP_ENTRIES {
                    oracle.remove(0); // LRU victim
                }
            } else {
                let got = s.load_entry(NS_EVAL, 1, key);
                let expect_hit = oracle.contains(&key);
                prop_assert_eq!(got.is_some(), expect_hit, "load of {} disagrees with oracle", key);
                if expect_hit {
                    prop_assert_eq!(got.unwrap(), key.to_le_bytes().to_vec());
                    oracle.retain(|&k| k != key);
                    oracle.push(key);
                }
            }
            prop_assert!(s.bytes() <= CAP_ENTRIES * entry_size, "budget exceeded: {}", s.bytes());
        }
        let mut expected = oracle.clone();
        expected.sort_unstable();
        prop_assert_eq!(s.resident_keys(NS_EVAL), expected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Neither policy ever exceeds the byte budget, for any op sequence
    /// and any mix of payload sizes — the headline `EDA_STORE_MAX_BYTES`
    /// contract.
    #[test]
    fn bounded_store_never_exceeds_budget(
        raw in proptest::collection::vec(any::<u32>(), 1..=60),
        tinylfu in any::<bool>(),
    ) {
        let policy = if tinylfu { EvictionPolicy::TinyLfu } else { EvictionPolicy::Lru };
        let max_bytes = 4 * (HEADER_LEN as u64 + 64);
        let dir = unique_dir("budget");
        let s = bounded(dir.clone(), max_bytes, policy);
        for r in raw {
            let key = (r >> 1) as u64 % 10;
            let len = ((r >> 5) % 64) as usize;
            if r & 1 == 0 {
                s.store_entry(NS_EVAL, 1, key, &vec![key as u8; len]);
            } else {
                let _ = s.load_entry(NS_EVAL, 1, key);
            }
            prop_assert!(s.bytes() <= max_bytes, "budget exceeded: {} > {}", s.bytes(), max_bytes);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// TinyLFU scan resistance: a hot working set that has actually been
    /// requested survives a one-shot scan of arbitrary cold keys, which
    /// all bounce off frequency admission.
    #[test]
    fn tinylfu_hot_set_survives_cold_scans(scan_base in 1000u64..100_000, scan_len in 8u64..64) {
        let entry_size = (HEADER_LEN + 8) as u64;
        let dir = unique_dir("scan");
        let s = bounded(dir.clone(), 4 * entry_size, EvictionPolicy::TinyLfu);
        for key in 0..4u64 {
            s.store_entry(NS_EVAL, 1, key, &key.to_le_bytes());
        }
        for _ in 0..4 {
            for key in 0..4u64 {
                prop_assert!(s.load_entry(NS_EVAL, 1, key).is_some());
            }
        }
        for key in scan_base..scan_base + scan_len {
            s.store_entry(NS_EVAL, 1, key, &key.to_le_bytes());
        }
        prop_assert_eq!(s.resident_keys(NS_EVAL), vec![0, 1, 2, 3]);
        prop_assert_eq!(s.stats().evictions, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// 2. Crash recovery: kill the store at every write point
// ---------------------------------------------------------------------------

/// The scripted workload: interleaved fresh writes and overwrites in
/// both namespaces. Returns, per `(ns, key)`, every payload that was
/// ever stored under it (crash consistency = a load serves one of these
/// or nothing).
fn crash_script(s: &Store) -> HashMap<(u8, u64), Vec<Vec<u8>>> {
    let mut legal: HashMap<(u8, u64), Vec<Vec<u8>>> = HashMap::new();
    let mut put = |ns: u8, key: u64, payload: &[u8]| {
        s.store_entry(ns, 7, key, payload);
        legal.entry((ns, key)).or_default().push(payload.to_vec());
    };
    put(NS_EVAL, 1, b"alpha");
    put(NS_EVAL, 2, b"beta");
    put(NS_COMPLETION, 1, b"completion-one");
    put(NS_EVAL, 1, b"alpha-rewritten"); // overwrite
    put(NS_COMPLETION, 9, b"");
    put(NS_EVAL, 3, b"gamma-payload-with-some-length");
    legal
}

#[test]
fn crash_at_every_write_point_recovers_cleanly() {
    // Count the filesystem ops a clean run performs.
    let clean_dir = unique_dir("crash-clean");
    let fs = Arc::new(FaultyFs::new(RealFs, FsFaultConfig::none()));
    let (clean, _) =
        Store::open_with_fs(StoreConfig::new(&clean_dir), fs.clone()).expect("clean open");
    crash_script(&clean);
    let total_ops = fs.ops();
    assert!(total_ops >= 12, "script must exercise many write points, got {total_ops}");
    drop(clean);
    let _ = std::fs::remove_dir_all(&clean_dir);

    // Kill the store at every single op index, then reopen and audit.
    for crash_at in 0..total_ops {
        let dir = unique_dir("crash");
        let fs = Arc::new(FaultyFs::new(RealFs, FsFaultConfig::crash_at(crash_at, 3)));
        let Ok((s, _)) = Store::open_with_fs(StoreConfig::new(&dir), fs) else {
            // Crashed during directory setup: nothing was promised.
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        };
        let legal = crash_script(&s);
        drop(s);

        let (reopened, report) =
            Store::open(StoreConfig::new(&dir)).expect("reopen after crash");
        // Atomic tmp+rename: a crash can strand temp files but can
        // never leave a torn entry under a final name.
        assert_eq!(
            report.quarantined, 0,
            "crash at op {crash_at} left a damaged final entry (loaded {}, tmp {})",
            report.loaded, report.removed_tmp
        );
        // Every surviving entry serves a value that was actually stored
        // under its key; nothing invented, nothing torn.
        for (&(ns, key), values) in &legal {
            if let Some(got) = reopened.load_entry(ns, 7, key) {
                assert!(
                    values.contains(&got),
                    "crash at op {crash_at}: ({ns},{key}) served a never-stored value {got:?}"
                );
            }
        }
        assert_eq!(reopened.stats().corruptions, 0, "crash at op {crash_at}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_and_bitflipped_writes_are_never_served() {
    // Seed-driven silent damage on ~40% of writes: loads must either
    // serve the exact stored value or miss — never damaged bytes.
    for seed in 0..8u64 {
        let dir = unique_dir("torn");
        let fs = Arc::new(FaultyFs::new(RealFs, FsFaultConfig::corrupting(0.4, seed)));
        let (s, _) = Store::open_with_fs(StoreConfig::new(&dir), fs).expect("open");
        let mut served = 0u32;
        for key in 0..30u64 {
            let payload = vec![key as u8; 16 + key as usize];
            s.store_entry(NS_EVAL, 1, key, &payload);
            // A None is detected damage: quarantined, recompute.
            if let Some(got) = s.load_entry(NS_EVAL, 1, key) {
                assert_eq!(got, payload, "seed {seed} key {key}: damaged bytes served");
                served += 1;
            }
        }
        let stats = s.stats();
        assert!(served > 0, "seed {seed}: some writes must survive");
        assert!(
            stats.corruptions > 0,
            "seed {seed}: 40% damage rate must be detected at least once"
        );
        // Damaged entries went to quarantine for forensics.
        let quarantined = std::fs::read_dir(dir.join("quarantine")).unwrap().count();
        assert_eq!(quarantined as u64, stats.corruptions, "seed {seed}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// 3. Flow invisibility: off / cold / warm / corrupted are identical
// ---------------------------------------------------------------------------

fn flow_cfg(resilience: llm::ResilienceConfig) -> autochip::AutoChipConfig {
    autochip::AutoChipConfig {
        k_candidates: 3,
        max_depth: 2,
        temperature: 1.0,
        seed: 11,
        resilience,
        ..Default::default()
    }
}

fn run_flow(cfg: &autochip::AutoChipConfig) -> autochip::AutoChipResult {
    let model = llm::SimulatedLlm::new(llm::ModelSpec::ultra());
    let problem = suite::problem("alu8").unwrap();
    autochip::run_autochip_with(&model, &problem, cfg, &exec::Engine::sequential())
        .expect("suite testbench builds")
}

/// The semantic fingerprint of a run: everything the store must never
/// change. Deliberately excludes cache/transport counters (those are
/// exactly what a warm store shrinks) but *includes* virtual time —
/// store hits bill the original cost, so even the clock is invisible.
fn semantic(r: &autochip::AutoChipResult) -> String {
    serde_json::to_string(&(
        (&r.problem, &r.model, &r.best_source, r.best_score),
        (r.solved, &r.rounds, r.candidates_evaluated, r.llm.virtual_time_us),
    ))
    .expect("result serializes")
}

/// Flips one payload bit in every entry file under `dir`.
fn corrupt_all_entries(dir: &Path) -> u64 {
    let mut damaged = 0;
    for ns in ["eval", "llm"] {
        let Ok(read) = std::fs::read_dir(dir.join(ns)) else { continue };
        for entry in read.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "ent") {
                let mut bytes = std::fs::read(&path).unwrap();
                let last = bytes.len() - 1;
                bytes[last] ^= 0x20;
                std::fs::write(&path, &bytes).unwrap();
                damaged += 1;
            }
        }
    }
    damaged
}

#[test]
fn flow_is_bit_identical_off_cold_warm_and_corrupted() {
    let _guard = global_guard();
    let cfg = flow_cfg(llm::ResilienceConfig::off());

    backing::uninstall();
    let baseline = run_flow(&cfg);
    assert_eq!(baseline.store, backing::StoreStats::default(), "no store => zero counters");

    let dir = unique_dir("invisible");
    let (s, _) = Store::open(StoreConfig::new(&dir)).unwrap();
    let installed = Installed::new(Arc::new(s));

    let cold = run_flow(&cfg);
    assert_eq!(semantic(&cold), semantic(&baseline), "cold store changed the flow");
    assert!(cold.store.writes > 0, "cold run must populate the store: {:?}", cold.store);
    assert_eq!(cold.store.hits, 0, "nothing to hit on a cold store");

    let warm = run_flow(&cfg);
    assert_eq!(semantic(&warm), semantic(&baseline), "warm store changed the flow");
    assert!(warm.store.hits > 0, "warm run must hit: {:?}", warm.store);
    assert!(
        warm.exec.tasks_run < cold.exec.tasks_run,
        "warm run must skip simulator work ({} vs {})",
        warm.exec.tasks_run,
        cold.exec.tasks_run
    );
    assert!(
        warm.llm.transport_sends < cold.llm.transport_sends,
        "warm run must skip transport sends ({} vs {})",
        warm.llm.transport_sends,
        cold.llm.transport_sends
    );

    // Corrupt every entry on disk; reopen (quarantining the damage) and
    // rerun: identical results, recomputed from scratch.
    drop(installed);
    let damaged = corrupt_all_entries(&dir);
    assert!(damaged > 0, "the flow must have persisted entries to corrupt");
    let (s2, _report) = Store::open(StoreConfig::new(&dir)).unwrap();
    let installed = Installed::new(Arc::new(s2));
    let recovered = run_flow(&cfg);
    assert_eq!(semantic(&recovered), semantic(&baseline), "corruption leaked into the flow");
    assert!(recovered.store.writes > 0, "recovered run must repopulate");
    drop(installed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flow_invisibility_holds_under_transport_faults() {
    let _guard = global_guard();
    // Injected LLM faults: retries, degradation, fault-dependent texts.
    // The store must still be invisible — and a warm run must bill the
    // exact same virtual time the cold (faulted) run did.
    let cfg = flow_cfg(llm::ResilienceConfig::with_fault_rate(0.3, 42));

    backing::uninstall();
    let baseline = run_flow(&cfg);

    let dir = unique_dir("faulted");
    let (s, _) = Store::open(StoreConfig::new(&dir)).unwrap();
    let installed = Installed::new(Arc::new(s));
    let cold = run_flow(&cfg);
    let warm = run_flow(&cfg);
    assert_eq!(semantic(&cold), semantic(&baseline), "cold+faults changed the flow");
    assert_eq!(semantic(&warm), semantic(&baseline), "warm+faults changed the flow");
    assert!(warm.llm.store_hits > 0, "{:?}", warm.llm);
    drop(installed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cross_run_determinism_cold_runs_identical_warm_strictly_cheaper() {
    let _guard = global_guard();
    let cfg = flow_cfg(llm::ResilienceConfig::off());

    // Two cold runs against two fresh stores: the FULL serialized
    // result — counters included — must be byte-identical.
    let dir_a = unique_dir("cold-a");
    let dir_b = unique_dir("cold-b");
    let (sa, _) = Store::open(StoreConfig::new(&dir_a)).unwrap();
    let installed = Installed::new(Arc::new(sa));
    let cold_a = run_flow(&cfg);
    drop(installed);
    let (sb, _) = Store::open(StoreConfig::new(&dir_b)).unwrap();
    let installed = Installed::new(Arc::new(sb));
    let cold_b = run_flow(&cfg);
    assert_eq!(
        serde_json::to_string(&cold_a).unwrap(),
        serde_json::to_string(&cold_b).unwrap(),
        "two cold runs must serialize byte-identically"
    );

    // Cold + warm on the same store: same semantics, strictly less work.
    let warm_b = run_flow(&cfg);
    drop(installed);
    assert_eq!(semantic(&warm_b), semantic(&cold_b));
    assert!(warm_b.exec.tasks_run < cold_b.exec.tasks_run);
    assert!(warm_b.llm.transport_sends < cold_b.llm.transport_sends);
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn store_enable_knob_bypasses_an_installed_store() {
    let _guard = global_guard();
    let dir = unique_dir("knob");
    let (s, _) = Store::open(StoreConfig::new(&dir)).unwrap();
    let installed = Installed::new(Arc::new(s));

    let cache: exec::EvalCache<u64> = exec::EvalCache::persistent(1);
    assert!(cache.is_persistent(), "installed store must be picked up");

    std::env::set_var(backing::STORE_ENABLE_ENV, "0");
    let cache: exec::EvalCache<u64> = exec::EvalCache::persistent(1);
    let off = !cache.is_persistent();
    std::env::remove_var(backing::STORE_ENABLE_ENV);
    assert!(off, "EDA_STORE_ENABLE=0 must bypass the store");

    drop(installed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sltgen_flow_is_invisible_and_warm_skips_measurement() {
    let _guard = global_guard();
    let model = llm::SimulatedLlm::new(llm::ModelSpec::code_llama_ft());
    let cfg = llm4eda::sltgen::SltConfig {
        virtual_hours: 0.8,
        ..llm4eda::sltgen::SltConfig::default()
    };
    let run = |engine: &exec::Engine| llm4eda::sltgen::run_slt_llm_with(&model, &cfg, engine);

    backing::uninstall();
    let baseline = run(&exec::Engine::sequential());

    let dir = unique_dir("sltgen");
    let (s, _) = Store::open(StoreConfig::new(&dir)).unwrap();
    let installed = Installed::new(Arc::new(s));
    let cold = run(&exec::Engine::sequential());
    let warm = run(&exec::Engine::sequential());
    drop(installed);

    let fingerprint = |r: &llm4eda::sltgen::SltRun| {
        serde_json::to_string(&(&r.run, r.final_temperature, r.pool_diversity, r.pool_best))
            .unwrap()
    };
    assert_eq!(fingerprint(&cold), fingerprint(&baseline), "cold store changed sltgen");
    assert_eq!(fingerprint(&warm), fingerprint(&baseline), "warm store changed sltgen");
    assert!(warm.store.hits > 0, "{:?}", warm.store);
    assert!(
        warm.exec.tasks_run < cold.exec.tasks_run,
        "warm sltgen must skip power measurements ({} vs {})",
        warm.exec.tasks_run,
        cold.exec.tasks_run
    );
    let _ = std::fs::remove_dir_all(&dir);
}
