//! Differential fuzzing of the simulator fast paths.
//!
//! A seeded generator produces random HDL designs (combinational and
//! clocked, mixed widths, with a deliberate X-injection arm) and random
//! stimulus. Every design is run twice — once with the two-state fast path
//! disabled (the reference four-state engine) and once with it enabled —
//! and the waveforms must match on *every* signal at *every* step, along
//! with final state and simulator statistics. A separate arm drives the
//! out-of-order timing model with random programs and asserts the
//! optimized engine reproduces the pre-optimization model's cycle counts
//! and retirement order bit-exactly.

use llm4eda::hdl;
use llm4eda::riscv;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Widths chosen to straddle word boundaries (1 bit, sub-word, 64-bit
/// word edge, and >64 so both `u64` lanes of a `Value` are live).
const WIDTHS: &[u32] = &[1, 2, 3, 5, 8, 13, 17, 24, 32, 48, 63, 64, 65, 100];

struct GenDesign {
    src: String,
    /// Input ports to drive (name, width); excludes clk/rst.
    inputs: Vec<(String, u32)>,
    /// Every named signal to compare between engines.
    signals: Vec<(String, u32)>,
    clocked: bool,
}

fn pick_width(rng: &mut StdRng) -> u32 {
    WIDTHS[rng.gen_range(0..WIDTHS.len())]
}

/// Random expression over `names`, as Verilog source. `allow_x` permits
/// X/Z literals (the four-state arm).
fn gen_expr(rng: &mut StdRng, names: &[(String, u32)], depth: u32, allow_x: bool) -> String {
    if depth == 0 || rng.gen_bool(0.25) {
        return gen_leaf(rng, names, allow_x);
    }
    match rng.gen_range(0..10u32) {
        0..=4 => {
            const OPS: &[&str] = &[
                "+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", ">>>", "==", "!=", "<", "<=",
                ">", ">=", "&&", "||",
            ];
            let op = OPS[rng.gen_range(0..OPS.len())];
            format!(
                "({} {op} {})",
                gen_expr(rng, names, depth - 1, allow_x),
                gen_expr(rng, names, depth - 1, allow_x)
            )
        }
        5 => {
            let op = ["~", "!", "-"][rng.gen_range(0..3)];
            format!("({op}{})", gen_expr(rng, names, depth - 1, allow_x))
        }
        6 => format!(
            "({} ? {} : {})",
            gen_expr(rng, names, depth - 1, allow_x),
            gen_expr(rng, names, depth - 1, allow_x),
            gen_expr(rng, names, depth - 1, allow_x)
        ),
        7 => {
            // Bit- or part-select on a random named signal (in range).
            let (n, w) = &names[rng.gen_range(0..names.len())];
            let hi = rng.gen_range(0..*w);
            if rng.gen_bool(0.5) {
                format!("{n}[{hi}]")
            } else {
                let lo = rng.gen_range(0..=hi);
                format!("{n}[{hi}:{lo}]")
            }
        }
        8 => format!(
            "{{{}, {}}}",
            gen_expr(rng, names, depth - 1, allow_x),
            gen_expr(rng, names, depth - 1, allow_x)
        ),
        _ => gen_leaf(rng, names, allow_x),
    }
}

fn gen_leaf(rng: &mut StdRng, names: &[(String, u32)], allow_x: bool) -> String {
    match rng.gen_range(0..10u32) {
        0..=4 => names[rng.gen_range(0..names.len())].0.clone(),
        5..=6 => {
            let w = [1u32, 4, 8, 16, 32][rng.gen_range(0..5)];
            let v = rng.gen::<u64>() & if w >= 64 { u64::MAX } else { (1 << w) - 1 };
            format!("{w}'d{v}")
        }
        7 if allow_x => {
            // Based binary literal with x/z digits (z collapses to x in
            // this four-state-lite value model).
            let w = rng.gen_range(2..10u32);
            let digits: String = (0..w)
                .map(|_| ['0', '1', 'x', 'z'][rng.gen_range(0..4)])
                .collect();
            format!("{w}'b{digits}")
        }
        _ => {
            // Reduction of a named signal.
            let (n, _) = &names[rng.gen_range(0..names.len())];
            let op = ["&", "|", "^"][rng.gen_range(0..3)];
            format!("({op}{n})")
        }
    }
}

/// Random combinational design: a few inputs, a chain of wires each
/// assigned an expression over everything declared before it.
fn gen_comb(rng: &mut StdRng, allow_x: bool) -> GenDesign {
    let n_in = rng.gen_range(2..=4usize);
    let n_wire = rng.gen_range(3..=8usize);
    let mut names: Vec<(String, u32)> = (0..n_in)
        .map(|i| (format!("i{i}"), pick_width(rng)))
        .collect();
    let ports: Vec<String> = names
        .iter()
        .map(|(n, w)| format!("input [{}:0] {n}", w - 1))
        .collect();
    let mut body = String::new();
    for k in 0..n_wire {
        let w = pick_width(rng);
        let name = format!("w{k}");
        let expr = gen_expr(rng, &names, 3, allow_x);
        body.push_str(&format!("  wire [{}:0] {name};\n  assign {name} = {expr};\n", w - 1));
        names.push((name, w));
    }
    let src = format!("module dut({});\n{body}endmodule\n", ports.join(", "));
    GenDesign {
        src,
        inputs: names[..n_in].to_vec(),
        signals: names,
        clocked: false,
    }
}

/// Random clocked design: registers with reset, nonblocking updates from
/// expressions over registers and inputs, plus comb decode wires.
fn gen_clocked(rng: &mut StdRng, allow_x: bool) -> GenDesign {
    let n_in = rng.gen_range(1..=3usize);
    let n_reg = rng.gen_range(2..=4usize);
    let n_wire = rng.gen_range(1..=3usize);
    let inputs: Vec<(String, u32)> = (0..n_in)
        .map(|i| (format!("i{i}"), pick_width(rng)))
        .collect();
    let regs: Vec<(String, u32)> = (0..n_reg)
        .map(|i| (format!("r{i}"), pick_width(rng)))
        .collect();
    let mut ports: Vec<String> = vec!["input clk".into(), "input rst".into()];
    ports.extend(inputs.iter().map(|(n, w)| format!("input [{}:0] {n}", w - 1)));
    let mut body = String::new();
    for (n, w) in &regs {
        body.push_str(&format!("  reg [{}:0] {n};\n", w - 1));
    }
    let mut env: Vec<(String, u32)> = inputs.clone();
    env.extend(regs.iter().cloned());
    for (n, w) in &regs {
        let init = rng.gen::<u64>() & if *w >= 64 { u64::MAX } else { (1 << w) - 1 };
        let next = gen_expr(rng, &env, 2, allow_x);
        body.push_str(&format!(
            "  always @(posedge clk) begin\n    if (rst) {n} <= {w}'d{init}; else {n} <= {next};\n  end\n"
        ));
    }
    let mut names = env.clone();
    for k in 0..n_wire {
        let w = pick_width(rng);
        let name = format!("w{k}");
        let expr = gen_expr(rng, &names, 2, allow_x);
        body.push_str(&format!("  wire [{}:0] {name};\n  assign {name} = {expr};\n", w - 1));
        names.push((name, w));
    }
    let src = format!("module dut({});\n{body}endmodule\n", ports.join(", "));
    GenDesign { src, inputs, signals: names, clocked: true }
}

fn random_value(rng: &mut StdRng, w: u32, allow_x: bool) -> hdl::Value {
    if allow_x && rng.gen_bool(0.25) {
        // All-X or partially-X stimulus.
        let mut v = hdl::Value::all_x(w);
        for bit in 0..w {
            if rng.gen_bool(0.5) {
                v = v.with_bit(bit, Some(rng.gen_bool(0.5)));
            }
        }
        v
    } else {
        let hi = rng.gen::<u64>() as u128;
        let lo = rng.gen::<u64>() as u128;
        hdl::Value::from_u128(w, hi << 64 | lo)
    }
}

/// Runs `design` under both engines with identical stimulus and asserts
/// waveform equality on every signal at every step.
fn run_differential(g: &GenDesign, seed: u64, steps: usize, allow_x: bool) {
    let design = hdl::compile(&g.src, "dut")
        .unwrap_or_else(|e| panic!("seed {seed}: generated design failed to compile: {e}\n{}", g.src));
    let mut reference = hdl::Simulator::new(&design);
    reference.set_fast_path(false);
    let mut fast = hdl::Simulator::new(&design);
    fast.set_fast_path(true);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1ff_e4e2);
    let drive = |refr: &mut hdl::Simulator, fast: &mut hdl::Simulator, name: &str, v: hdl::Value| {
        refr.poke(name, v).unwrap();
        fast.poke(name, v).unwrap();
    };
    if g.clocked {
        drive(&mut reference, &mut fast, "rst", hdl::Value::bit(true));
        for _ in 0..2 {
            drive(&mut reference, &mut fast, "clk", hdl::Value::bit(false));
            reference.settle().unwrap();
            fast.settle().unwrap();
            drive(&mut reference, &mut fast, "clk", hdl::Value::bit(true));
            reference.settle().unwrap();
            fast.settle().unwrap();
        }
        drive(&mut reference, &mut fast, "rst", hdl::Value::bit(false));
    }
    for step in 0..steps {
        let stim: Vec<(String, hdl::Value)> = g
            .inputs
            .iter()
            .map(|(n, w)| (n.clone(), random_value(&mut rng, *w, allow_x)))
            .collect();
        for (n, v) in &stim {
            drive(&mut reference, &mut fast, n, *v);
        }
        if g.clocked {
            drive(&mut reference, &mut fast, "clk", hdl::Value::bit(false));
            reference.settle().unwrap();
            fast.settle().unwrap();
            drive(&mut reference, &mut fast, "clk", hdl::Value::bit(true));
        }
        reference.settle().unwrap();
        fast.settle().unwrap();
        for (n, _) in &g.signals {
            let a = reference.peek(n).unwrap();
            let b = fast.peek(n).unwrap();
            assert_eq!(
                a, b,
                "seed {seed} step {step}: signal `{n}` diverged (reference {a:?} vs fast {b:?})\n{}",
                g.src
            );
        }
    }
    // Final state, statistics, and process output must also agree.
    assert_eq!(
        format!("{:?}", reference.stats()),
        format!("{:?}", fast.stats()),
        "seed {seed}: stats diverged\n{}",
        g.src
    );
    assert_eq!(reference.output(), fast.output(), "seed {seed}: $display output diverged");
    assert_eq!(reference.time(), fast.time(), "seed {seed}: sim time diverged");
}

#[test]
fn combinational_designs_match_across_engines() {
    for seed in 0..112u64 {
        let mut rng = StdRng::seed_from_u64(seed * 7919 + 13);
        let g = gen_comb(&mut rng, false);
        run_differential(&g, seed, 24, false);
    }
}

#[test]
fn clocked_designs_match_across_engines() {
    for seed in 0..96u64 {
        let mut rng = StdRng::seed_from_u64(seed * 104_729 + 7);
        let g = gen_clocked(&mut rng, false);
        run_differential(&g, seed, 16, false);
    }
}

#[test]
fn x_injection_designs_match_across_engines() {
    // The deliberate X/Z arm: X literals inside expressions and X-laced
    // stimulus exercise the fall-back boundary between engines.
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed * 6151 + 3);
        let g = gen_comb(&mut rng, true);
        run_differential(&g, seed, 16, true);
    }
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed * 9973 + 1);
        let g = gen_clocked(&mut rng, true);
        run_differential(&g, seed, 12, true);
    }
}

#[test]
fn fast_path_actually_engages_on_pure_designs() {
    // Guard against the fast path silently never engaging (which would
    // make the differential suite vacuous).
    let mut engaged = 0usize;
    for seed in 200..216u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = gen_comb(&mut rng, false);
        let design = hdl::compile(&g.src, "dut").unwrap();
        let mut sim = hdl::Simulator::new(&design);
        sim.set_fast_path(true);
        let mut srng = StdRng::seed_from_u64(seed ^ 0xfeed);
        for _ in 0..8 {
            for (n, w) in &g.inputs {
                sim.poke(n, random_value(&mut srng, *w, false)).unwrap();
            }
            sim.settle().unwrap();
        }
        if sim.fast_evals() > 0 {
            engaged += 1;
        }
    }
    assert!(engaged >= 12, "fast path engaged on only {engaged}/16 pure designs");
}

// ---------------------------------------------------------------------------
// Out-of-order model arm.
// ---------------------------------------------------------------------------

fn random_program(rng: &mut StdRng) -> Vec<riscv::Instr> {
    use riscv::{AluOp, BranchOp, Instr, MulOp};
    const ALU: &[AluOp] = &[
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
    ];
    const MUL: &[MulOp] = &[
        MulOp::Mul,
        MulOp::Mulh,
        MulOp::Div,
        MulOp::Divu,
        MulOp::Rem,
        MulOp::Remu,
    ];
    const BR: &[BranchOp] = &[
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blt,
        BranchOp::Bge,
        BranchOp::Bltu,
        BranchOp::Bgeu,
    ];
    let iters = rng.gen_range(3..=12u32);
    // prog[0]: loop counter in t6 (x31).
    let mut prog = vec![Instr::AluImm { op: AluOp::Add, rd: 31, rs1: 0, imm: iters as i32 }];
    let body = rng.gen_range(12..=40usize);
    let body_start = prog.len() as u32;
    let mut k = 0usize;
    while k < body {
        let rd = rng.gen_range(1..31u8); // keep x31 as the loop counter
        let rs1 = rng.gen_range(0..31u8);
        let rs2 = rng.gen_range(0..31u8);
        let instr = match rng.gen_range(0..10u32) {
            0..=3 => Instr::Alu { op: ALU[rng.gen_range(0..ALU.len())], rd, rs1, rs2 },
            4..=5 => Instr::AluImm {
                op: ALU[rng.gen_range(0..ALU.len())],
                rd,
                rs1,
                imm: rng.gen_range(-64..64i32),
            },
            6 => Instr::Mul { op: MUL[rng.gen_range(0..MUL.len())], rd, rs1, rs2 },
            7 => Instr::Lw { rd, rs1: 0, off: rng.gen_range(0..64i32) * 4 },
            8 => Instr::Sw { rs1: 0, rs2, off: rng.gen_range(0..64i32) * 4 },
            _ => {
                // Forward conditional branch skipping 1-3 instructions but
                // never past the end of the body (the loop-counter
                // decrement in the tail must always execute).
                let room = (body - k - 1) as u32;
                if room == 0 {
                    Instr::Alu { op: ALU[rng.gen_range(0..ALU.len())], rd, rs1, rs2 }
                } else {
                    let skip = rng.gen_range(1..=3u32).min(room);
                    Instr::Branch {
                        op: BR[rng.gen_range(0..BR.len())],
                        rs1,
                        rs2,
                        target: prog.len() as u32 + 1 + skip,
                    }
                }
            }
        };
        prog.push(instr);
        k += 1;
    }
    prog.push(Instr::AluImm { op: riscv::AluOp::Add, rd: 31, rs1: 31, imm: -1 });
    prog.push(Instr::Branch { op: BranchOp::Bne, rs1: 31, rs2: 0, target: body_start });
    prog.push(Instr::Ecall);
    prog
}

fn random_uarch(rng: &mut StdRng) -> riscv::UarchConfig {
    riscv::UarchConfig {
        fetch_width: rng.gen_range(1..=8u32),
        alu_ports: rng.gen_range(1..=4u32),
        muldiv_ports: rng.gen_range(1..=2u32),
        lsu_ports: rng.gen_range(1..=2u32),
        branch_ports: rng.gen_range(1..=2u32),
        rob_size: [4usize, 8, 32, 64, 128][rng.gen_range(0..5)],
        alu_latency: 1,
        mul_latency: rng.gen_range(2..=4u64),
        div_latency: rng.gen_range(8..=20u64),
        load_latency: rng.gen_range(2..=4u64),
        mispredict_penalty: rng.gen_range(4..=12u64),
        bpred_entries: [4usize, 16, 256, 1024][rng.gen_range(0..4)],
    }
}

#[test]
fn ooo_optimized_matches_reference_on_random_programs() {
    let mut checked = 0usize;
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(seed * 31 + 5);
        let prog = random_program(&mut rng);
        let result = riscv::Cpu::new(riscv::CpuConfig::default())
            .run(&prog)
            .unwrap_or_else(|e| panic!("seed {seed}: program faulted: {e}"));
        let cfg = random_uarch(&mut rng);
        let power = riscv::PowerParams::default();
        let (fast, fast_retire) = riscv::analyze_with_retire(&result.trace, cfg, power);
        let (refr, ref_retire) = riscv::analyze_reference_with_retire(&result.trace, cfg, power);
        assert_eq!(fast, refr, "seed {seed}: report diverged under {cfg:?}");
        assert_eq!(fast_retire, ref_retire, "seed {seed}: retirement order diverged");
        assert_eq!(fast_retire.len(), result.trace.len());
        checked += 1;
    }
    assert_eq!(checked, 64);
}
