//! Chaos suite: every flow must survive an unreliable LLM transport.
//!
//! The resilience layer (`eda_llm::transport` + `eda_llm::resilient`)
//! injects timeouts, rate limits, 5xx errors, truncated/garbled
//! completions, and latency spikes at configurable probabilities. These
//! properties pin the contract:
//!
//! * for arbitrary fault probabilities up to 0.5 and arbitrary seeds,
//!   every flow returns `Ok` — it never panics and never runs past its
//!   per-request virtual-clock deadline;
//! * fault injection is bit-reproducible given `(seed, config)`: the
//!   same run serializes byte-identically every time.
//!
//! CI runs this file with `EDA_LLM_FAULT_RATE=0.3` exported so the
//! env-driven default path is exercised end to end as well (the
//! `configured_fault_rate` test below reads the variable; it never sets
//! it, so local `cargo test` runs the same test fault-free).

use llm4eda::{autochip, exec, hlstester, llm, repair, serve, sltgen, suite};
use proptest::prelude::*;

fn ultra() -> llm::SimulatedLlm {
    llm::SimulatedLlm::new(llm::ModelSpec::ultra())
}

fn resilience(rate: f64, seed: u64) -> llm::ResilienceConfig {
    llm::ResilienceConfig::with_fault_rate(rate, seed)
}

/// Worst admissible virtual cost per request: the retry policy's
/// 120-second deadline plus one full attempt (timeout 10 s, spiked
/// latency < 7 s) that may start just under it.
const WORST_REQUEST_US: u64 = 140 * 1_000_000;

fn assert_bounded_virtual_time(report: &llm::LlmReport, flow: &str) {
    assert!(
        report.virtual_time_us <= report.requests * WORST_REQUEST_US,
        "{flow}: virtual time ran past the per-request deadline: {report:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// AutoChip completes under any fault mix up to 0.5.
    #[test]
    fn autochip_survives_arbitrary_fault_rates(rate_pct in 0u32..=50, seed in 0u64..10_000) {
        let problem = suite::problem("mux2").unwrap();
        let cfg = autochip::AutoChipConfig {
            k_candidates: 2,
            max_depth: 2,
            tb_vectors: 8,
            resilience: resilience(rate_pct as f64 / 100.0, seed),
            ..Default::default()
        };
        let r = autochip::run_autochip(&ultra(), &problem, &cfg).unwrap();
        prop_assert!(r.llm.requests > 0);
        assert_bounded_virtual_time(&r.llm, "autochip");
    }

    /// The SLT loop stays inside its virtual budget under faults.
    #[test]
    fn slt_survives_arbitrary_fault_rates(rate_pct in 0u32..=50, seed in 0u64..10_000) {
        let cfg = sltgen::SltConfig {
            virtual_hours: 0.15,
            resilience: resilience(rate_pct as f64 / 100.0, seed),
            ..Default::default()
        };
        let run = sltgen::run_slt_llm(&ultra(), &cfg);
        // The snippet budget is time-driven and unaffected by transport
        // faults (a failed completion still costs one snippet slot).
        let budget = (0.15 * 3600.0 / cfg.seconds_per_snippet).ceil() as usize;
        prop_assert!(run.run.evaluations <= budget + 1, "{}", run.run.evaluations);
        assert_bounded_virtual_time(&run.llm, "slt");
    }

    /// The repair pipeline completes under any fault mix up to 0.5.
    #[test]
    fn repair_survives_arbitrary_fault_rates(rate_pct in 0u32..=50, seed in 0u64..10_000) {
        let p = repair::corpus().into_iter().find(|p| p.id == "vecsum-malloc").unwrap();
        let cfg = repair::RepairConfig {
            max_rounds: 4,
            cosim_inputs: 4,
            resilience: resilience(rate_pct as f64 / 100.0, seed),
            ..Default::default()
        };
        let r = repair::run_repair(&ultra(), p.source, p.func, &cfg);
        prop_assert!(r.llm.requests > 0);
        assert_bounded_virtual_time(&r.llm, "repair");
    }

    /// HLSTester completes under any fault mix up to 0.5 (the adaptation
    /// stage is its LLM traffic; a printf source forces it to run).
    #[test]
    fn hlstester_survives_arbitrary_fault_rates(rate_pct in 0u32..=50, seed in 0u64..10_000) {
        let src = r#"
int noisy(int a) {
  #pragma HLS bitwidth var=x width=8
  int x = a * 3;
  printf("%d", x);
  return x;
}"#;
        let cfg = hlstester::HlsTesterConfig {
            rounds: 2,
            batch: 4,
            hw_sim_budget: 6,
            resilience: resilience(rate_pct as f64 / 100.0, seed),
            ..Default::default()
        };
        let r = hlstester::run_hlstester(&ultra(), src, "noisy", &cfg).unwrap();
        prop_assert!(r.llm.requests > 0);
        assert_bounded_virtual_time(&r.llm, "hlstester");
    }

    /// The serving layer survives a faulty shared transport: for
    /// arbitrary fault rates up to 0.5 the trace completes without
    /// panicking, every job's virtual cost stays inside the transport's
    /// per-request bound, and deadline overruns stay within one
    /// worst-case request of the budget (cancellation is cooperative —
    /// it fires at the first request after the budget is exhausted).
    #[test]
    fn serve_survives_arbitrary_fault_rates(rate_pct in 0u32..=50, seed in 0u64..10_000) {
        let deadline_us = 600 * 1_000_000;
        let trace = serve::generate_trace(&serve::TrafficConfig {
            jobs: 8,
            duplicate_rate: 0.4,
            deadline_us: (deadline_us, deadline_us),
            seed,
            ..Default::default()
        });
        let cfg = serve::ServeConfig {
            resilience: resilience(rate_pct as f64 / 100.0, seed ^ 0x5e),
            ..Default::default()
        };
        let r = serve::serve_trace(&ultra(), &trace, &cfg);
        prop_assert_eq!(r.stats.completed + r.stats.expired, r.stats.admitted);
        assert_bounded_virtual_time(&r.llm, "serve");
        for rec in &r.jobs {
            if let serve::JobOutcome::Completed { service_us, .. } = rec.outcome {
                prop_assert!(
                    service_us <= deadline_us + WORST_REQUEST_US + cfg.service_overhead_us,
                    "job {} overran its deadline by more than one request: {service_us}",
                    rec.id
                );
            }
        }
    }

    /// Fault injection is bit-reproducible: the same (seed, config) run
    /// serializes byte-identically, including every fault counter.
    #[test]
    fn fault_injection_is_bit_reproducible(rate_pct in 0u32..=50, seed in 0u64..10_000) {
        let problem = suite::problem("counter4").unwrap();
        let cfg = autochip::AutoChipConfig {
            k_candidates: 3,
            max_depth: 2,
            tb_vectors: 8,
            resilience: resilience(rate_pct as f64 / 100.0, seed),
            ..Default::default()
        };
        let a = autochip::run_autochip(&ultra(), &problem, &cfg).unwrap();
        let b = autochip::run_autochip(&ultra(), &problem, &cfg).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}

/// End-to-end sweep at the fault rate CI exports via
/// `EDA_LLM_FAULT_RATE` (defaults to 0 locally, where the counters are
/// legitimately zero): all four flows finish, and at substantial rates
/// they do so while actually absorbing faults.
#[test]
fn all_flows_survive_the_configured_fault_rate() {
    let rate: f64 = exec::parse_knob_in(llm::FAULT_RATE_ENV, 0.0, 1.0)
        .expect("EDA_LLM_FAULT_RATE must parse")
        .unwrap_or(0.0);
    let res = resilience(rate, 0xc4a05);
    let model = ultra();

    let problem = suite::problem("alu8").unwrap();
    let a = autochip::run_autochip(
        &model,
        &problem,
        &autochip::AutoChipConfig {
            k_candidates: 3,
            max_depth: 3,
            resilience: res.clone(),
            ..Default::default()
        },
    )
    .unwrap();

    let s = sltgen::run_slt_llm(
        &llm::SimulatedLlm::new(llm::ModelSpec::code_llama_ft()),
        &sltgen::SltConfig { virtual_hours: 0.3, resilience: res.clone(), ..Default::default() },
    );

    let p = repair::corpus().into_iter().find(|p| p.id == "vecsum-malloc").unwrap();
    let rp = repair::run_repair(
        &model,
        p.source,
        p.func,
        &repair::RepairConfig { resilience: res.clone(), ..Default::default() },
    );

    let noisy = r#"
int noisy(int a) {
  #pragma HLS bitwidth var=x width=8
  int x = a * 3;
  printf("%d", x);
  return x;
}"#;
    let h = hlstester::run_hlstester(
        &model,
        noisy,
        "noisy",
        &hlstester::HlsTesterConfig { resilience: res.clone(), ..Default::default() },
    )
    .unwrap();

    // A short serve trace rides the same configured fault rate through
    // the shared coalescing stack: no panics, and the whole trace stays
    // inside the transport's per-request virtual bound.
    let sv = serve::serve_trace(
        &model,
        &serve::generate_trace(&serve::TrafficConfig {
            jobs: 6,
            duplicate_rate: 0.5,
            seed: 0xc4a05,
            ..Default::default()
        }),
        &serve::ServeConfig { resilience: res, ..Default::default() },
    );
    assert_eq!(sv.stats.completed, sv.stats.admitted, "{:?}", sv.stats);

    for (flow, rep) in [
        ("autochip", &a.llm),
        ("slt", &s.llm),
        ("repair", &rp.llm),
        ("hlstester", &h.llm),
        ("serve", &sv.llm),
    ] {
        assert!(rep.requests > 0, "{flow} issued no LLM requests");
        assert_bounded_virtual_time(rep, flow);
        if rate == 0.0 {
            assert_eq!(rep.faults.total(), 0, "{flow} injected faults at rate 0");
            assert_eq!(rep.retries, 0, "{flow} retried at rate 0");
        }
    }
    if rate >= 0.2 {
        let faults: u64 =
            [&a.llm, &s.llm, &rp.llm, &h.llm].iter().map(|r| r.faults.total()).sum();
        let retries: u64 = [&a.llm, &s.llm, &rp.llm, &h.llm].iter().map(|r| r.retries).sum();
        assert!(faults > 0, "rate {rate} injected no faults across four flows");
        assert!(retries > 0, "rate {rate} triggered no retries across four flows");
    }
}
