//! Cross-crate integration tests: each test exercises a complete paper
//! flow through the public facade, spanning several workspace crates.

use llm4eda::{agent, autochip, cmini, hdl, hls, hlstester, llm, rank, repair, riscv, sltgen,
              suite, synth};

fn ultra() -> llm::SimulatedLlm {
    llm::SimulatedLlm::new(llm::ModelSpec::ultra())
}

#[test]
fn spec_to_gates_through_the_agent() {
    // Fig. 1 end to end: NL spec -> RTL -> lint -> verify -> gates -> PPA.
    let a = agent::Agent::new(ultra(), agent::AgentConfig::default());
    let report = a.run_flow("adder8").unwrap();
    assert!(report.success, "{}", report.summary());
    assert!(report.cells.unwrap() > 8, "an 8-bit adder needs real gates");
    assert!(report.area.unwrap() > 0.0);
}

#[test]
fn llm_rtl_simulates_in_the_hdl_simulator() {
    // eda-llm -> eda-hdl: a generated candidate is real Verilog that
    // elaborates and simulates.
    let p = suite::problem("mux4").unwrap();
    let r = autochip::run_autochip(&ultra(), &p, &autochip::AutoChipConfig::default()).unwrap();
    let design = hdl::compile(&r.best_source, p.module_name).unwrap();
    let mut sim = hdl::Simulator::new(&design);
    sim.poke("s", hdl::Value::from_u64(2, 1)).unwrap();
    sim.poke("d0", hdl::Value::bit(false)).unwrap();
    sim.poke("d1", hdl::Value::bit(true)).unwrap();
    sim.poke("d2", hdl::Value::bit(false)).unwrap();
    sim.poke("d3", hdl::Value::bit(false)).unwrap();
    sim.settle().unwrap();
    assert_eq!(sim.peek("y").unwrap().to_u64(), Some(1));
}

#[test]
fn repaired_c_flows_into_hls_and_riscv() {
    // eda-repair -> eda-hls + eda-riscv: the repaired program is accepted
    // by both back ends and behaves identically.
    let broken = repair::corpus()
        .into_iter()
        .find(|p| p.id == "vecsum-malloc")
        .unwrap();
    let rep = repair::run_repair(&ultra(), broken.source, broken.func,
                                 &repair::RepairConfig::default());
    assert!(rep.final_compiles);
    let prog = cmini::parse(&rep.final_source).unwrap();
    // HLS side.
    let proj = hls::HlsProject::compile(&prog, broken.func, hls::HlsOptions::default()).unwrap();
    let hw = proj.run(&[10], &mut []).unwrap();
    // CPU side.
    let expect = cmini::Interp::new(&prog).call_ints(broken.func, &[10]).unwrap();
    assert_eq!(hw.ret, Some(expect));
    // RISC-V side.
    let compiled = riscv::compile_c(&prog, broken.func).unwrap();
    let mut cpu = riscv::Cpu::new(riscv::CpuConfig::default());
    for (loc, v) in compiled.params.iter().zip(&[10i64]) {
        match loc {
            riscv::ParamLoc::Reg(r) => cpu.regs[*r as usize] = *v as u32,
            riscv::ParamLoc::Mem(a) => cpu.store_word(*a, *v as u32).unwrap(),
        }
    }
    assert_eq!(cpu.run(&compiled.instrs).unwrap().a0 as i64, expect);
}

#[test]
fn generated_verilog_synthesizes_to_gates() {
    // eda-llm -> eda-synth: a correct generated design maps to cells and
    // the AIG is behaviourally faithful on sampled patterns.
    let p = suite::problem("parity8").unwrap();
    let r = autochip::run_autochip(&ultra(), &p, &autochip::AutoChipConfig::default()).unwrap();
    assert!(r.solved);
    let file = hdl::parse(&r.best_source).unwrap();
    let sm = synth::synthesize(file.module(p.module_name).unwrap()).unwrap();
    let map = synth::map(&sm.aig);
    assert!(map.total_cells >= 7, "8-input parity needs a xor tree");
    // Parity of 0b1011_0001 is 0 (even number of ones).
    let inputs: Vec<bool> = (0..8).map(|i| [1u8, 0, 0, 0, 1, 1, 0, 1][i] == 1).collect();
    let named: Vec<bool> = sm
        .aig
        .input_names()
        .iter()
        .map(|n| {
            let bit: usize = n.trim_start_matches("d[").trim_end_matches(']').parse().unwrap();
            inputs[bit]
        })
        .collect();
    let out = sm.aig.simulate(&named);
    assert!(!out[0]);
}

#[test]
fn slt_snippets_flow_through_the_whole_riscv_stack() {
    // eda-llm C -> eda-hls lowering -> eda-riscv codegen -> OOO power.
    let model = llm::SimulatedLlm::new(llm::ModelSpec::code_llama_ft());
    let run = sltgen::run_slt_llm(
        &model,
        &sltgen::SltConfig { virtual_hours: 0.3, ..Default::default() },
    );
    assert!(run.run.best_power_w > 2.0);
    // The best artifact is real C our toolchain accepts.
    let prog = cmini::parse(&run.run.best_artifact).unwrap();
    assert!(prog.function("snippet").is_some());
}

#[test]
fn hlstester_finds_planted_discrepancy_end_to_end() {
    let case = hlstester::discrepancy_corpus()
        .into_iter()
        .find(|c| c.id == "mac-overflow-16bit")
        .unwrap();
    let r = hlstester::run_hlstester(
        &llm::SimulatedLlm::new(llm::ModelSpec::pro()),
        case.source,
        case.func,
        &hlstester::HlsTesterConfig::default(),
    )
    .unwrap();
    assert!(!r.discrepancies.is_empty());
    // Replay one discrepancy manually through both sides.
    let d = &r.discrepancies[0];
    let prog = cmini::parse(case.source).unwrap();
    let cpu = cmini::Interp::new(&prog).call_ints(case.func, &d.scalars);
    match cpu {
        Ok(v) => assert_eq!(v, d.cpu, "replay must match the recorded CPU value"),
        Err(_) => assert_eq!(d.cpu, i64::MIN, "trap discrepancies record MIN"),
    }
}

#[test]
fn rank_and_autochip_agree_on_ground_truth() {
    // Self-consistency selection must be at least as good as a random
    // pick in aggregate. Any single seed can go either way (consistency
    // is a heuristic), so judge across a batch of seeds.
    let p = suite::problem("comparator4").unwrap();
    let (mut any, mut cons, mut rand_pick) = (0u32, 0u32, 0u32);
    for seed in 0..8 {
        let out = rank::rank_candidates(
            &ultra(),
            &p,
            &rank::RankConfig { seed, ..Default::default() },
        )
        .unwrap();
        let q = rank::judge_selection(&out, &p, 48, 77).unwrap();
        any += q.any_correct as u32;
        cons += q.consistency_pick_correct as u32;
        rand_pick += q.random_pick_correct as u32;
    }
    assert!(any > 0, "a strong model must solve comparator4 at least once");
    assert!(
        cons >= rand_pick,
        "consistency picks ({cons}/8) must not trail random picks ({rand_pick}/8)"
    );
}

#[test]
fn whole_stack_is_deterministic() {
    // Same seeds, same outputs — across every major flow.
    let p = suite::problem("lfsr8").unwrap();
    let cfg = autochip::AutoChipConfig { seed: 5, ..Default::default() };
    let a = autochip::run_autochip(&ultra(), &p, &cfg).unwrap();
    let b = autochip::run_autochip(&ultra(), &p, &cfg).unwrap();
    assert_eq!(a.best_source, b.best_source);

    let broken = repair::corpus()[0].clone();
    let r1 = repair::run_repair(&ultra(), broken.source, broken.func,
                                &repair::RepairConfig::default());
    let r2 = repair::run_repair(&ultra(), broken.source, broken.func,
                                &repair::RepairConfig::default());
    assert_eq!(r1.final_source, r2.final_source);
}
