//! Observability determinism suite: the exported trace and the
//! `ObsReport` must be byte-identical at any `EDA_EXEC_THREADS` and
//! with request coalescing on or off; turning observability on must
//! not move a single byte of the rest of the `ServeReport` — including
//! under transport fault injection.

use llm4eda::{exec, llm, obs, serve};
use proptest::prelude::*;
use serve::{FlowJob, FlowSpec, Priority, ServeConfig};

fn ultra() -> llm::SimulatedLlm {
    llm::SimulatedLlm::new(llm::ModelSpec::ultra())
}

/// A small mixed-flow trace with deadlines, tuned so some jobs queue
/// behind others (waits > 0) and all priority classes appear.
fn mixed_jobs() -> Vec<FlowJob> {
    let mut jobs = Vec::new();
    for i in 0..8u64 {
        let (tenant, priority) = match i % 3 {
            0 => ("alpha", Priority::Interactive),
            1 => ("beta", Priority::Standard),
            _ => ("gamma", Priority::Batch),
        };
        let flow = match i % 4 {
            0 => FlowSpec::AutoChip {
                problem: "mux2".into(),
                k: 2,
                depth: 2,
                tb_vectors: 8,
                seed: i % 2, // duplicates make coalescing bite
            },
            1 => FlowSpec::Structured { problem: "mux2".into(), rounds: 2, seed: i % 2 },
            2 => FlowSpec::Repair { program: "vecsum-malloc".into(), rounds: 2, seed: i },
            _ => FlowSpec::Agent { problem: "mux2".into(), seed: i % 2 },
        };
        jobs.push(FlowJob {
            id: i,
            tenant: tenant.into(),
            priority,
            arrival_us: i * 400_000,
            deadline_us: 30_000_000,
            flow,
        });
    }
    jobs
}

fn obs_cfg(coalesce: bool) -> ServeConfig {
    ServeConfig {
        coalesce,
        workers: 2,
        obs: obs::ObsConfig::on(),
        ..ServeConfig::default()
    }
}

fn run(
    jobs: &[FlowJob],
    cfg: &ServeConfig,
    threads: usize,
) -> (serve::ServeReport, obs::TraceExport) {
    let engine = if threads <= 1 {
        exec::Engine::sequential()
    } else {
        exec::Engine::with_threads(threads)
    };
    let (report, export) = serve::serve_trace_traced(&ultra(), jobs, cfg, &engine);
    (report, export.expect("obs is on"))
}

/// The tentpole guarantee: same trace + config ⇒ byte-identical exports
/// and obs report at 1, 4, and 8 host threads, with coalescing on or
/// off — six runs, one set of bytes.
#[test]
fn exports_are_byte_identical_across_threads_and_coalescing() {
    let jobs = mixed_jobs();
    let mut exports: Vec<(String, obs::TraceExport, String)> = Vec::new();
    for coalesce in [true, false] {
        let cfg = obs_cfg(coalesce);
        for threads in [1usize, 4, 8] {
            let (report, export) = run(&jobs, &cfg, threads);
            let obs_json = serde_json::to_string(&report.obs).expect("obs serializes");
            exports.push((format!("coalesce={coalesce} threads={threads}"), export, obs_json));
        }
    }
    let (_, base_export, base_obs) = &exports[0];
    for (tag, export, obs_json) in &exports[1..] {
        assert_eq!(&base_export.chrome, &export.chrome, "chrome trace differs at {tag}");
        assert_eq!(&base_export.jsonl, &export.jsonl, "jsonl differs at {tag}");
        assert_eq!(base_obs, obs_json, "obs report differs at {tag}");
    }
    // And the invariant bytes are a *valid* trace with real content.
    let stats = obs::validate_chrome_trace(&base_export.chrome).expect("valid chrome trace");
    assert!(stats.spans > 0, "no spans recorded: {stats:?}");
    assert!(stats.complete_events > 0, "no transport attempts recorded: {stats:?}");
}

/// Observability is a pure observer: with obs on, every byte of the
/// serve report outside the `obs` section matches the obs-off run —
/// also under a 30% transport fault rate (retries, degradation).
#[test]
fn obs_on_does_not_move_the_serve_report() {
    let jobs = mixed_jobs();
    for fault_rate in [0.0, 0.3] {
        let mut cfg_off = obs_cfg(true);
        cfg_off.obs = obs::ObsConfig::off();
        let mut cfg_on = obs_cfg(true);
        if fault_rate > 0.0 {
            cfg_off.resilience = llm::ResilienceConfig::with_fault_rate(fault_rate, 7);
            cfg_on.resilience = llm::ResilienceConfig::with_fault_rate(fault_rate, 7);
        }
        let engine = exec::Engine::with_threads(4);
        let (report_off, export_off) = serve::serve_trace_traced(&ultra(), &jobs, &cfg_off, &engine);
        let (mut report_on, export_on) = serve::serve_trace_traced(&ultra(), &jobs, &cfg_on, &engine);
        assert!(export_off.is_none());
        assert!(export_on.is_some());
        assert!(report_off.obs.is_none());
        assert!(report_on.obs.is_some());
        report_on.obs = None;
        assert_eq!(
            serde_json::to_string(&report_off).unwrap(),
            serde_json::to_string(&report_on).unwrap(),
            "obs recording changed the serve report at fault rate {fault_rate}"
        );
    }
}

/// Under fault injection the deduped transport groups surface the
/// retries: some group must hold more than one attempt, and the dump
/// still validates.
#[test]
fn faulty_transport_attempts_appear_in_the_trace() {
    let jobs = mixed_jobs();
    let mut cfg = obs_cfg(true);
    cfg.resilience = llm::ResilienceConfig::with_fault_rate(0.3, 7);
    let (report, export) = run(&jobs, &cfg, 4);
    let obs_report = report.obs.expect("obs on");
    assert!(obs_report.transport_groups > 0);
    let stats = obs::validate_chrome_trace(&export.chrome).expect("valid chrome trace");
    assert!(
        stats.complete_events as u64 > obs_report.transport_groups,
        "expected retries beyond one attempt per group: {} attempts over {} groups",
        stats.complete_events,
        obs_report.transport_groups
    );
}

/// `EDA_OBS_SAMPLE=0` keeps metrics and the SLO table (they cover every
/// job) but records no per-job span traces.
#[test]
fn sampling_zero_keeps_metrics_but_drops_job_traces() {
    let jobs = mixed_jobs();
    let mut cfg = obs_cfg(true);
    cfg.obs.sample = 0.0;
    let (report, export) = run(&jobs, &cfg, 4);
    let obs_report = report.obs.expect("obs on");
    assert_eq!(obs_report.sampled_jobs, 0);
    assert_eq!(obs_report.classes.len(), 3);
    assert!(obs_report.classes.iter().any(|c| c.completed > 0));
    assert!(!obs_report.metrics.is_empty());
    // Scheduler lane still present, so the trace stays valid/non-empty.
    obs::validate_chrome_trace(&export.chrome).expect("valid chrome trace");
}

/// A tiny event buffer drops events — and the drops are counted in the
/// report, never silent.
#[test]
fn buffer_cap_drops_are_surfaced() {
    let jobs = mixed_jobs();
    let mut cfg = obs_cfg(true);
    cfg.obs.buf_events = 16;
    let (report, export) = run(&jobs, &cfg, 4);
    let obs_report = report.obs.expect("obs on");
    assert!(obs_report.dropped_events > 0, "16-event buffers must overflow: {obs_report:?}");
    obs::validate_chrome_trace(&export.chrome).expect("drops must not unbalance the trace");
}

/// SLO accounting: every deadline-carrying admitted job is an SLO job,
/// and attainment is the met fraction.
#[test]
fn slo_attainment_matches_outcomes() {
    let jobs = mixed_jobs();
    let (report, _) = run(&jobs, &obs_cfg(true), 4);
    let obs_report = report.obs.expect("obs on");
    let slo_jobs: u64 = obs_report.classes.iter().map(|c| c.slo_jobs).sum();
    let completed_or_expired = report
        .jobs
        .iter()
        .filter(|j| {
            matches!(
                j.outcome,
                serve::JobOutcome::Completed { .. } | serve::JobOutcome::Expired { .. }
            )
        })
        .count() as u64;
    assert_eq!(slo_jobs, completed_or_expired, "all jobs carry deadlines here");
    for c in &obs_report.classes {
        assert!(c.slo_met <= c.slo_jobs);
        let expect = if c.slo_jobs == 0 { 1.0 } else { c.slo_met as f64 / c.slo_jobs as f64 };
        assert!((c.slo_attainment - expect).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized mini-traces replay byte-identically: sequential vs
    /// 8-thread engines, coalescing from the seed, valid dump each time.
    #[test]
    fn random_traces_export_identically(seed in 0u64..1000, n in 1usize..5, coalesce in any::<bool>()) {
        let trace = serve::generate_trace(&serve::TrafficConfig {
            jobs: n,
            seed,
            mean_interarrival_us: 500_000,
            ..Default::default()
        });
        let cfg = obs_cfg(coalesce);
        let (ra, ea) = run(&trace, &cfg, 1);
        let (rb, eb) = run(&trace, &cfg, 8);
        prop_assert_eq!(&ea.chrome, &eb.chrome);
        prop_assert_eq!(&ea.jsonl, &eb.jsonl);
        prop_assert_eq!(
            serde_json::to_string(&ra.obs).unwrap(),
            serde_json::to_string(&rb.obs).unwrap()
        );
        prop_assert!(obs::validate_chrome_trace(&ea.chrome).is_ok());
    }
}
