//! Scheduler property suite for the serving layer: no admitted job
//! starves, FIFO holds within a (tenant, priority) queue, weighted
//! fair-share tracks the configured weights under saturation, and
//! admission control sheds exactly the overload.

use llm4eda::{exec, llm, serve};
use serve::{FlowJob, FlowSpec, JobOutcome, Priority, ServeConfig, TenantConfig};

fn ultra() -> llm::SimulatedLlm {
    llm::SimulatedLlm::new(llm::ModelSpec::ultra())
}

fn job(id: u64, tenant: &str, priority: Priority, arrival_us: u64, seed: u64) -> FlowJob {
    FlowJob {
        id,
        tenant: tenant.into(),
        priority,
        arrival_us,
        deadline_us: 0,
        flow: FlowSpec::AutoChip {
            problem: "mux2".into(),
            k: 1,
            depth: 1,
            tb_vectors: 8,
            seed,
        },
    }
}

/// Every admitted job eventually completes — nothing starves, even for
/// the lowest-weight tenant at the lowest priority under a saturated
/// single worker.
#[test]
fn no_admitted_job_starves() {
    let cfg = ServeConfig {
        tenants: vec![
            TenantConfig::new("alpha", 8, 64),
            TenantConfig::new("omega", 1, 64),
        ],
        workers: 1,
        max_backlog: 128,
        ..Default::default()
    };
    let mut jobs: Vec<FlowJob> = Vec::new();
    for i in 0..10 {
        jobs.push(job(i, "alpha", Priority::Interactive, 0, i));
    }
    jobs.push(job(99, "omega", Priority::Batch, 0, 99));
    let r = serve::serve_trace_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.stats.completed, 11, "{:?}", r.stats);
    assert!(
        r.completion_order.contains(&99),
        "batch job of the weight-1 tenant starved: {:?}",
        r.completion_order
    );
}

/// Within one (tenant, priority) queue, dispatch — and with a single
/// worker, completion — is FIFO in arrival order.
#[test]
fn fifo_within_tenant_and_priority() {
    let cfg = ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 1, 64)],
        workers: 1,
        max_backlog: 128,
        ..Default::default()
    };
    // Distinct seeds give distinct (unpredictable) service times; all
    // queued at t=0 so the scheduler alone decides the order.
    let jobs: Vec<FlowJob> =
        (0..8).map(|i| job(i, "alpha", Priority::Standard, 0, 1000 + i * 7)).collect();
    let r = serve::serve_trace_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.completion_order, (0..8).collect::<Vec<u64>>(), "FIFO violated");
}

/// Under saturation, billed service tracks the configured weights: a
/// weight-3 tenant gets about 3x the service of a weight-1 tenant.
#[test]
fn fair_share_tracks_weights() {
    let cfg = ServeConfig {
        tenants: vec![
            TenantConfig::new("alpha", 3, 64),
            TenantConfig::new("beta", 1, 64),
        ],
        workers: 1,
        max_backlog: 256,
        ..Default::default()
    };
    // Both tenants keep a deep backlog of identical work from t=0; use
    // a few distinct seeds so service times vary a little.
    let mut jobs: Vec<FlowJob> = Vec::new();
    let mut id = 0;
    for i in 0..20 {
        for t in ["alpha", "beta"] {
            jobs.push(job(id, t, Priority::Standard, 0, i % 5));
            id += 1;
        }
    }
    let r = serve::serve_trace_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    // Measure shares over a saturated prefix: take completions while
    // both tenants still have queued work (the first 30 completions).
    let mut alpha_us = 0u64;
    let mut beta_us = 0u64;
    let by_id: std::collections::HashMap<u64, &serve::JobRecord> =
        r.jobs.iter().map(|j| (j.id, j)).collect();
    for cid in r.completion_order.iter().take(30) {
        let rec = by_id[cid];
        if let JobOutcome::Completed { service_us, .. } = rec.outcome {
            match rec.tenant.as_str() {
                "alpha" => alpha_us += service_us,
                _ => beta_us += service_us,
            }
        }
    }
    assert!(beta_us > 0, "weight-1 tenant got no service at all");
    let ratio = alpha_us as f64 / beta_us as f64;
    assert!(
        (1.8..=4.5).contains(&ratio),
        "weighted share off: alpha/beta service ratio {ratio:.2}, expected ~3"
    );
}

/// Below the admission limits nothing is shed; far above them the shed
/// rate is bounded and typed.
#[test]
fn admission_control_sheds_only_overload() {
    let cfg = ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 1, 4)],
        workers: 2,
        max_backlog: 8,
        ..Default::default()
    };
    // Light load: fewer queued than any cap — zero shed.
    let light: Vec<FlowJob> =
        (0..3).map(|i| job(i, "alpha", Priority::Standard, 0, i)).collect();
    let r = serve::serve_trace_with(&ultra(), &light, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.stats.rejected_queue_full + r.stats.rejected_overloaded, 0, "{:?}", r.stats);
    assert_eq!(r.stats.completed, 3);

    // Heavy burst: 20 simultaneous arrivals against a cap-4 queue.
    let heavy: Vec<FlowJob> =
        (0..20).map(|i| job(i, "alpha", Priority::Standard, 0, i)).collect();
    let r = serve::serve_trace_with(&ultra(), &heavy, &cfg, &exec::Engine::with_threads(4));
    let shed = r.stats.rejected_queue_full + r.stats.rejected_overloaded;
    assert_eq!(shed, 16, "cap-4 queue admits 4 of a 20-burst: {:?}", r.stats);
    assert_eq!(r.stats.completed + shed, 20);
    for rec in &r.jobs {
        if let JobOutcome::Rejected { reason } = &rec.outcome {
            assert!(!reason.to_string().is_empty());
        }
    }
}

/// A job whose deadline elapses while queued expires unstarted; a
/// running job that overruns its deadline is cancelled cooperatively
/// but still completes with its partial result.
#[test]
fn deadlines_expire_queued_jobs_and_cancel_running_ones() {
    let cfg = ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 1, 64)],
        workers: 1,
        max_backlog: 128,
        ..Default::default()
    };
    let mut jobs = vec![
        job(0, "alpha", Priority::Standard, 0, 0), // occupies the worker for many seconds
        job(1, "alpha", Priority::Standard, 0, 1),
    ];
    jobs[1].deadline_us = 1; // expires long before the worker frees
    let r = serve::serve_trace_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.stats.expired, 1, "{:?}", r.stats);
    assert!(matches!(r.jobs[1].outcome, JobOutcome::Expired { .. }));

    // A tight running deadline: the job starts immediately, overruns its
    // budget mid-flow, and is cancelled rather than running to the end.
    let mut tight = vec![job(0, "alpha", Priority::Standard, 0, 0)];
    tight[0].deadline_us = 1_000_000; // 1 virtual second, far below a full flow
    tight[0].flow = FlowSpec::AutoChip {
        problem: "counter4".into(),
        k: 2,
        depth: 3,
        tb_vectors: 8,
        seed: 0,
    };
    let r = serve::serve_trace_with(&ultra(), &tight, &cfg, &exec::Engine::with_threads(4));
    match &r.jobs[0].outcome {
        JobOutcome::Completed { cancelled, .. } => {
            assert!(*cancelled, "1s budget must cancel a multi-round flow");
            assert_eq!(r.stats.cancelled, 1);
        }
        other => panic!("expected a cancelled completion, got {other:?}"),
    }
}

/// The EDA_SERVE_* knobs go through the hardened shared parser: a junk
/// value produces a typed error naming the variable.
#[test]
fn serve_env_knobs_report_typed_errors() {
    std::env::set_var("EDA_SERVE_MAX_BACKLOG", "many");
    let err = ServeConfig::try_from_env().unwrap_err();
    std::env::remove_var("EDA_SERVE_MAX_BACKLOG");
    assert_eq!(err.var, "EDA_SERVE_MAX_BACKLOG");
    let msg = err.to_string();
    assert!(msg.contains("EDA_SERVE_MAX_BACKLOG") && msg.contains("many"), "{msg}");
}
