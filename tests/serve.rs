//! Scheduler property suite for the serving layer: no admitted job
//! starves, FIFO holds within a (tenant, priority) queue, weighted
//! fair-share tracks the configured weights under saturation, and
//! admission control sheds exactly the overload.

use llm4eda::{exec, llm, serve};
use serve::{FlowJob, FlowSpec, JobOutcome, Priority, ServeConfig, TenantConfig};

fn ultra() -> llm::SimulatedLlm {
    llm::SimulatedLlm::new(llm::ModelSpec::ultra())
}

fn job(id: u64, tenant: &str, priority: Priority, arrival_us: u64, seed: u64) -> FlowJob {
    FlowJob {
        id,
        tenant: tenant.into(),
        priority,
        arrival_us,
        deadline_us: 0,
        flow: FlowSpec::AutoChip {
            problem: "mux2".into(),
            k: 1,
            depth: 1,
            tb_vectors: 8,
            seed,
        },
    }
}

/// Every admitted job eventually completes — nothing starves, even for
/// the lowest-weight tenant at the lowest priority under a saturated
/// single worker.
#[test]
fn no_admitted_job_starves() {
    let cfg = ServeConfig {
        tenants: vec![
            TenantConfig::new("alpha", 8, 64),
            TenantConfig::new("omega", 1, 64),
        ],
        workers: 1,
        max_backlog: 128,
        ..Default::default()
    };
    let mut jobs: Vec<FlowJob> = Vec::new();
    for i in 0..10 {
        jobs.push(job(i, "alpha", Priority::Interactive, 0, i));
    }
    jobs.push(job(99, "omega", Priority::Batch, 0, 99));
    let r = serve::serve_trace_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.stats.completed, 11, "{:?}", r.stats);
    assert!(
        r.completion_order.contains(&99),
        "batch job of the weight-1 tenant starved: {:?}",
        r.completion_order
    );
}

/// Within one (tenant, priority) queue, dispatch — and with a single
/// worker, completion — is FIFO in arrival order.
#[test]
fn fifo_within_tenant_and_priority() {
    let cfg = ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 1, 64)],
        workers: 1,
        max_backlog: 128,
        ..Default::default()
    };
    // Distinct seeds give distinct (unpredictable) service times; all
    // queued at t=0 so the scheduler alone decides the order.
    let jobs: Vec<FlowJob> =
        (0..8).map(|i| job(i, "alpha", Priority::Standard, 0, 1000 + i * 7)).collect();
    let r = serve::serve_trace_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.completion_order, (0..8).collect::<Vec<u64>>(), "FIFO violated");
}

/// Under saturation, billed service tracks the configured weights: a
/// weight-3 tenant gets about 3x the service of a weight-1 tenant.
#[test]
fn fair_share_tracks_weights() {
    let cfg = ServeConfig {
        tenants: vec![
            TenantConfig::new("alpha", 3, 64),
            TenantConfig::new("beta", 1, 64),
        ],
        workers: 1,
        max_backlog: 256,
        ..Default::default()
    };
    // Both tenants keep a deep backlog of identical work from t=0; use
    // a few distinct seeds so service times vary a little.
    let mut jobs: Vec<FlowJob> = Vec::new();
    let mut id = 0;
    for i in 0..20 {
        for t in ["alpha", "beta"] {
            jobs.push(job(id, t, Priority::Standard, 0, i % 5));
            id += 1;
        }
    }
    let r = serve::serve_trace_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    // Measure shares over a saturated prefix: take completions while
    // both tenants still have queued work (the first 30 completions).
    let mut alpha_us = 0u64;
    let mut beta_us = 0u64;
    let by_id: std::collections::HashMap<u64, &serve::JobRecord> =
        r.jobs.iter().map(|j| (j.id, j)).collect();
    for cid in r.completion_order.iter().take(30) {
        let rec = by_id[cid];
        if let JobOutcome::Completed { service_us, .. } = rec.outcome {
            match rec.tenant.as_str() {
                "alpha" => alpha_us += service_us,
                _ => beta_us += service_us,
            }
        }
    }
    assert!(beta_us > 0, "weight-1 tenant got no service at all");
    let ratio = alpha_us as f64 / beta_us as f64;
    assert!(
        (1.8..=4.5).contains(&ratio),
        "weighted share off: alpha/beta service ratio {ratio:.2}, expected ~3"
    );
}

/// Below the admission limits nothing is shed; far above them the shed
/// rate is bounded and typed.
#[test]
fn admission_control_sheds_only_overload() {
    let cfg = ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 1, 4)],
        workers: 2,
        max_backlog: 8,
        ..Default::default()
    };
    // Light load: fewer queued than any cap — zero shed.
    let light: Vec<FlowJob> =
        (0..3).map(|i| job(i, "alpha", Priority::Standard, 0, i)).collect();
    let r = serve::serve_trace_with(&ultra(), &light, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.stats.rejected_queue_full + r.stats.rejected_overloaded, 0, "{:?}", r.stats);
    assert_eq!(r.stats.completed, 3);

    // Heavy burst: 20 simultaneous arrivals against a cap-4 queue.
    let heavy: Vec<FlowJob> =
        (0..20).map(|i| job(i, "alpha", Priority::Standard, 0, i)).collect();
    let r = serve::serve_trace_with(&ultra(), &heavy, &cfg, &exec::Engine::with_threads(4));
    let shed = r.stats.rejected_queue_full + r.stats.rejected_overloaded;
    assert_eq!(shed, 16, "cap-4 queue admits 4 of a 20-burst: {:?}", r.stats);
    assert_eq!(r.stats.completed + shed, 20);
    for rec in &r.jobs {
        if let JobOutcome::Rejected { reason } = &rec.outcome {
            assert!(!reason.to_string().is_empty());
        }
    }
}

/// A job whose deadline elapses while queued expires unstarted; a
/// running job that overruns its deadline is cancelled cooperatively
/// but still completes with its partial result.
#[test]
fn deadlines_expire_queued_jobs_and_cancel_running_ones() {
    let cfg = ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 1, 64)],
        workers: 1,
        max_backlog: 128,
        ..Default::default()
    };
    let mut jobs = vec![
        job(0, "alpha", Priority::Standard, 0, 0), // occupies the worker for many seconds
        job(1, "alpha", Priority::Standard, 0, 1),
    ];
    jobs[1].deadline_us = 1; // expires long before the worker frees
    let r = serve::serve_trace_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.stats.expired, 1, "{:?}", r.stats);
    assert!(matches!(r.jobs[1].outcome, JobOutcome::Expired { .. }));

    // A tight running deadline: the job starts immediately, overruns its
    // budget mid-flow, and is cancelled rather than running to the end.
    let mut tight = vec![job(0, "alpha", Priority::Standard, 0, 0)];
    tight[0].deadline_us = 1_000_000; // 1 virtual second, far below a full flow
    tight[0].flow = FlowSpec::AutoChip {
        problem: "counter4".into(),
        k: 2,
        depth: 3,
        tb_vectors: 8,
        seed: 0,
    };
    let r = serve::serve_trace_with(&ultra(), &tight, &cfg, &exec::Engine::with_threads(4));
    match &r.jobs[0].outcome {
        JobOutcome::Completed { cancelled, .. } => {
            assert!(*cancelled, "1s budget must cancel a multi-round flow");
            assert_eq!(r.stats.cancelled, 1);
        }
        other => panic!("expected a cancelled completion, got {other:?}"),
    }
}

/// Path of the pinned virtual-mode `ServeReport` golden. Captured from
/// the pre-refactor (PR 3-6) discrete-event scheduler on the E11.1
/// trace; the clock-generic rewrite must reproduce it byte for byte.
/// Regenerate (only for an intentional schema change) with
/// `EDA_GOLDEN_REGEN=1`.
const SERVE_GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/serve_report.json");

/// The E11.1 trace: duplicate-heavy, all three default tenants, the
/// exact shape `exp_serve` benches.
fn e11_trace() -> Vec<FlowJob> {
    serve::generate_trace(&serve::TrafficConfig {
        jobs: 24,
        duplicate_rate: 0.6,
        seed: 17,
        ..Default::default()
    })
}

/// Virtual-mode determinism, pinned to bytes on disk: the serialized
/// `ServeReport` for the E11 trace is identical at 1/4/8 host threads
/// *and* identical to the golden captured before the clock-generic
/// scheduler refactor — proving the refactor moved zero bytes.
#[test]
fn virtual_serve_report_bytes_are_pinned() {
    let trace = e11_trace();
    let cfg = ServeConfig::default();
    let reports: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&t| {
            let r = serve::serve_trace_with(&ultra(), &trace, &cfg, &exec::Engine::with_threads(t));
            serde_json::to_string_pretty(&r).expect("report serializes")
        })
        .collect();
    assert_eq!(reports[0], reports[1], "1-thread vs 4-thread report bytes differ");
    assert_eq!(reports[0], reports[2], "1-thread vs 8-thread report bytes differ");

    let mut canonical = reports[0].clone();
    canonical.push('\n');
    if exec::parse_bool_knob("EDA_GOLDEN_REGEN").unwrap_or(None).unwrap_or(false) {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
        std::fs::write(SERVE_GOLDEN_PATH, &canonical).unwrap();
        return;
    }
    let on_disk = std::fs::read_to_string(SERVE_GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing serve golden {SERVE_GOLDEN_PATH} ({e}); regenerate with EDA_GOLDEN_REGEN=1")
    });
    assert_eq!(
        on_disk, canonical,
        "virtual-mode ServeReport bytes drifted from the pre-refactor golden; \
         if intentional, regenerate with EDA_GOLDEN_REGEN=1"
    );
}

/// The EDA_SERVE_* knobs go through the hardened shared parser: a junk
/// value produces a typed error naming the variable.
#[test]
fn serve_env_knobs_report_typed_errors() {
    std::env::set_var("EDA_SERVE_MAX_BACKLOG", "many");
    let err = ServeConfig::try_from_env().unwrap_err();
    std::env::remove_var("EDA_SERVE_MAX_BACKLOG");
    assert_eq!(err.var, "EDA_SERVE_MAX_BACKLOG");
    let msg = err.to_string();
    assert!(msg.contains("EDA_SERVE_MAX_BACKLOG") && msg.contains("many"), "{msg}");
}

/// The tenant-churn scenario rotates the active tenant pair: early
/// phases exclude tenants outside the window, later phases bring them
/// in, and the generator stays deterministic per seed.
#[test]
fn tenant_churn_scenario_rotates_active_tenants() {
    let cfg = serve::TrafficConfig { jobs: 48, seed: 23, ..Default::default() };
    let a = serve::generate_scenario(serve::Scenario::TenantChurn, &cfg);
    let b = serve::generate_scenario(serve::Scenario::TenantChurn, &cfg);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "tenant-churn generation must be deterministic per seed"
    );
    // Phase 0 draws only from the first pair (alpha, beta); gamma only
    // enters once the window rotates.
    let phase_len = cfg.jobs / 4;
    assert!(
        a[..phase_len].iter().all(|j| j.tenant != "gamma"),
        "gamma active before its churn phase"
    );
    assert!(
        a[phase_len..].iter().any(|j| j.tenant == "gamma"),
        "gamma never became active across later phases"
    );
    // Churn must still cover every configured tenant overall.
    for t in ["alpha", "beta", "gamma"] {
        assert!(a.iter().any(|j| j.tenant == t), "tenant {t} absent from churn trace");
    }
}

/// A tenant-churn trace served end to end accounts for every job:
/// admitted jobs complete or expire, and each tenant that submitted
/// work shows up in the per-tenant report.
#[test]
fn tenant_churn_trace_serves_cleanly() {
    let trace = serve::generate_scenario(
        serve::Scenario::TenantChurn,
        &serve::TrafficConfig { jobs: 16, duplicate_rate: 0.4, seed: 7, ..Default::default() },
    );
    let r = serve::serve_trace_with(
        &ultra(),
        &trace,
        &ServeConfig::default(),
        &exec::Engine::with_threads(4),
    );
    assert_eq!(
        r.stats.completed + r.stats.expired,
        r.stats.admitted,
        "{:?}",
        r.stats
    );
    for ts in &r.tenants {
        assert!(ts.submitted > 0, "tenant {} in report without traffic", ts.name);
    }
}

/// `EDA_SERVE_MODE` parses through the shared knob layer: both drivers
/// by name, real-time default when unset, typed error on junk.
#[test]
fn serve_mode_env_knob_parses_and_rejects_junk() {
    std::env::remove_var(serve::SERVE_MODE_ENV);
    assert_eq!(serve::mode_from_env().unwrap(), serve::ServeMode::RealTime);
    std::env::set_var(serve::SERVE_MODE_ENV, "virtual");
    assert_eq!(serve::mode_from_env().unwrap(), serve::ServeMode::Virtual);
    std::env::set_var(serve::SERVE_MODE_ENV, "realtime");
    assert_eq!(serve::mode_from_env().unwrap(), serve::ServeMode::RealTime);
    std::env::set_var(serve::SERVE_MODE_ENV, "hypertime");
    let err = serve::mode_from_env().unwrap_err();
    std::env::remove_var(serve::SERVE_MODE_ENV);
    assert_eq!(err.var, serve::SERVE_MODE_ENV);
    assert!(err.to_string().contains("hypertime"), "{err}");
}

/// Wall-clock smoke: the real-time driver runs the same trace at 1, 4,
/// and 8 workers without deadlock, accounts for every admitted job, and
/// reports sane wall-clock numbers. Deliberately timing-tolerant — only
/// structural invariants are asserted, never latencies.
#[test]
fn realtime_mode_smoke_at_1_4_8_workers() {
    let trace: Vec<FlowJob> = (0..10)
        .map(|i| {
            let mut j = job(i, ["alpha", "beta", "gamma"][i as usize % 3], Priority::Standard, 0, i);
            j.arrival_us = i * 1_000; // 1 ms apart in wall time
            j
        })
        .collect();
    let cfg = ServeConfig::default();
    for workers in [1usize, 4, 8] {
        let rt = serve::RealTimeConfig { workers, ..Default::default() };
        let r = serve::serve_realtime(&ultra(), &trace, &cfg, &rt);
        assert_eq!(r.workers, workers);
        assert_eq!(r.mode, "realtime");
        assert_eq!(
            r.stats.completed + r.stats.expired,
            r.stats.admitted,
            "workers={workers}: {:?}",
            r.stats
        );
        assert_eq!(r.stats.admitted, 10, "workers={workers}: nothing should shed");
        assert_eq!(r.completion_order.len() as u64, r.stats.completed);
        assert!(r.wall_elapsed_us > 0, "workers={workers}: zero wall time");
        assert!(r.throughput_per_s > 0.0, "workers={workers}");
        assert_eq!(r.classes.len(), 3, "one class report per priority");
        let class_total: u64 = r.classes.iter().map(|c| c.completed).sum();
        assert_eq!(class_total, r.stats.completed, "workers={workers}");
        for rec in &r.jobs {
            if let JobOutcome::Completed { service_us, .. } = rec.outcome {
                assert!(service_us > 0, "job {} billed zero wall service", rec.id);
            }
        }
    }
}

/// Adaptive admission smoke: with a deliberately unattainable
/// Interactive SLO and a saturating mix, the real-time driver sheds at
/// least one Batch arrival and tags it with the typed reason; with
/// adaptive admission off, the same trace sheds nothing adaptively.
#[test]
fn realtime_adaptive_admission_sheds_batch_under_pressure() {
    // Interactive floods at t=0 so its completions fill the p99 window
    // first; Batch arrives seconds later, far past any plausible wall
    // time for eight tiny mux2 jobs, so the controller has samples by
    // the time the shed decision is made.
    let mut trace: Vec<FlowJob> = Vec::new();
    for i in 0..8u64 {
        let mut j = job(i, "alpha", Priority::Interactive, 0, i);
        j.flow = FlowSpec::AutoChip {
            problem: "mux2".into(),
            k: 1,
            depth: 1,
            tb_vectors: 8,
            seed: 1000 + i,
        };
        trace.push(j);
    }
    for (n, i) in (8u64..11).enumerate() {
        let mut j = job(i, "alpha", Priority::Batch, 4_000_000 + n as u64 * 100_000, i);
        j.flow = FlowSpec::AutoChip {
            problem: "mux2".into(),
            k: 1,
            depth: 1,
            tb_vectors: 8,
            seed: 2000 + i,
        };
        trace.push(j);
    }
    let cfg = ServeConfig {
        tenants: vec![TenantConfig::new("alpha", 1, 256)],
        max_backlog: 256,
        coalesce: false,
        ..Default::default()
    };
    // 1 µs Interactive p99 SLO over a tiny window: unattainable, so the
    // controller must trip as soon as it has samples.
    let rt = serve::RealTimeConfig {
        workers: 1,
        adaptive: Some(serve::AdaptiveAdmission {
            interactive_p99_slo_us: 1,
            window: 8,
        }),
    };
    let r = serve::serve_realtime(&ultra(), &trace, &cfg, &rt);
    assert!(
        r.shed_adaptive > 0,
        "unattainable SLO never tripped adaptive shedding: {:?}",
        r.stats
    );
    let typed = r
        .jobs
        .iter()
        .filter(|j| {
            matches!(
                &j.outcome,
                JobOutcome::Rejected { reason: serve::RejectError::AdaptiveShed { .. } }
            )
        })
        .count() as u64;
    assert_eq!(typed, r.shed_adaptive, "every adaptive shed carries its typed reason");

    let off = serve::RealTimeConfig { workers: 1, adaptive: None };
    let r_off = serve::serve_realtime(&ultra(), &trace, &cfg, &off);
    assert_eq!(r_off.shed_adaptive, 0, "adaptive off must never adaptively shed");
    assert_eq!(
        r_off.stats.completed + r_off.stats.expired,
        r_off.stats.admitted,
        "{:?}",
        r_off.stats
    );
}
