//! Determinism regression layer: every flow that runs on the eval engine
//! must produce byte-identical serialized output regardless of thread
//! count and across repeated runs. Each test runs its flow twice on the
//! parallel engine and twice on the sequential engine and asserts all
//! four JSON serializations are equal (timing fields are excluded from
//! serialization by `ExecReport` itself, so this also pins the counter
//! accounting).

use llm4eda::{autochip, exec, llm, repair, serve, sltgen, suite};

fn ultra() -> llm::SimulatedLlm {
    llm::SimulatedLlm::new(llm::ModelSpec::ultra())
}

/// Two runs per engine; returns the four serializations in order
/// [par, par, seq, seq].
fn four_runs<F, T>(run: F) -> Vec<String>
where
    F: Fn(&exec::Engine) -> T,
    T: serde::Serialize,
{
    let parallel = exec::Engine::with_threads(4);
    let sequential = exec::Engine::sequential();
    [&parallel, &parallel, &sequential, &sequential]
        .iter()
        .map(|engine| serde_json::to_string(&run(engine)).expect("flow output serializes"))
        .collect()
}

fn assert_all_identical(runs: &[String], flow: &str) {
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            &runs[0], r,
            "{flow}: run {i} diverged from run 0 (parallel/sequential or rerun mismatch)"
        );
    }
}

#[test]
fn autochip_is_deterministic_across_engines() {
    let model = ultra();
    let problem = suite::problem("alu8").unwrap();
    let cfg = autochip::AutoChipConfig {
        k_candidates: 4,
        max_depth: 3,
        temperature: 1.0,
        seed: 11,
        ..Default::default()
    };
    let runs = four_runs(|engine| {
        autochip::run_autochip_with(&model, &problem, &cfg, engine).expect("suite testbench")
    });
    assert_all_identical(&runs, "autochip");
}

#[test]
fn slt_pool_loop_is_deterministic_across_engines() {
    let model = ultra();
    let cfg = sltgen::SltConfig {
        virtual_hours: 2.0,
        seed: 5,
        ..Default::default()
    };
    let runs = four_runs(|engine| sltgen::run_slt_llm_with(&model, &cfg, engine));
    assert_all_identical(&runs, "slt-llm");
}

#[test]
fn gp_baseline_is_deterministic_across_engines() {
    let cfg = sltgen::GpConfig {
        virtual_hours: 2.0,
        seed: 5,
        ..Default::default()
    };
    let runs = four_runs(|engine| sltgen::gp::run_gp_with(&cfg, engine));
    assert_all_identical(&runs, "gp");
}

#[test]
fn repair_batch_is_deterministic_across_engines() {
    let model = ultra();
    let corpus = repair::corpus();
    let cfg = repair::RepairConfig::default();
    let runs = four_runs(|engine| repair::run_repair_batch(&model, &corpus, &cfg, engine));
    assert_all_identical(&runs, "repair-batch");
}

#[test]
fn repair_batch_matches_sequential_single_runs() {
    // The batched API must be a pure parallelization of the one-at-a-time
    // loop: same reports, same order.
    let model = ultra();
    let corpus = repair::corpus();
    let cfg = repair::RepairConfig::default();
    let engine = exec::Engine::with_threads(4);
    let batched = repair::run_repair_batch(&model, &corpus, &cfg, &engine);
    let looped: Vec<_> = corpus
        .iter()
        .map(|p| repair::run_repair(&model, p.source, p.func, &cfg))
        .collect();
    assert_eq!(
        serde_json::to_string(&batched).unwrap(),
        serde_json::to_string(&looped).unwrap(),
        "batched repair diverged from the sequential loop"
    );
}

#[test]
fn autochip_with_faulty_transport_is_deterministic_across_engines() {
    // Fault injection is pure per (seed, request, attempt), so retries,
    // degradations, and corrupted completions land on the same
    // candidates whichever engine evaluates them: parallel and
    // sequential runs must still serialize byte-identically — including
    // the fault counters in the `llm` report.
    let model = ultra();
    let problem = suite::problem("alu8").unwrap();
    let cfg = autochip::AutoChipConfig {
        k_candidates: 4,
        max_depth: 3,
        seed: 11,
        resilience: llm::ResilienceConfig::with_fault_rate(0.35, 21),
        ..Default::default()
    };
    let runs = four_runs(|engine| {
        autochip::run_autochip_with(&model, &problem, &cfg, engine).expect("suite testbench")
    });
    assert_all_identical(&runs, "autochip-faulty");
    // The config must actually have exercised the fault path, or this
    // test silently degenerates into the fault-free variant above.
    let run = autochip::run_autochip(&model, &problem, &cfg).unwrap();
    assert!(run.llm.faults.total() > 0, "fault rate 0.35 injected nothing: {:?}", run.llm);
}

#[test]
fn slt_with_faulty_transport_is_deterministic_across_engines() {
    let model = ultra();
    let cfg = sltgen::SltConfig {
        virtual_hours: 1.0,
        seed: 5,
        resilience: llm::ResilienceConfig::with_fault_rate(0.35, 13),
        ..Default::default()
    };
    let runs = four_runs(|engine| sltgen::run_slt_llm_with(&model, &cfg, engine));
    assert_all_identical(&runs, "slt-llm-faulty");
    let run = sltgen::run_slt_llm(&model, &cfg);
    assert!(run.llm.faults.total() > 0, "fault rate 0.35 injected nothing: {:?}", run.llm);
}

#[test]
fn serve_trace_is_deterministic_across_thread_counts() {
    // The serving layer schedules in virtual time: job service times are
    // pure per job spec and coalescing is order-independent, so the full
    // ServeReport — completion order, per-job outcomes, fairness
    // accounting, coalescing counters — must serialize byte-identically
    // at 1, 4, and 8 host threads (and across reruns).
    let model = ultra();
    let trace = serve::generate_trace(&serve::TrafficConfig {
        jobs: 16,
        duplicate_rate: 0.4,
        seed: 13,
        ..Default::default()
    });
    let cfg = serve::ServeConfig::default();
    let runs: Vec<String> = [1usize, 4, 8, 4]
        .iter()
        .map(|&t| {
            let engine = exec::Engine::with_threads(t);
            let report = serve::serve_trace_with(&model, &trace, &cfg, &engine);
            serde_json::to_string(&report).expect("serve report serializes")
        })
        .collect();
    assert_all_identical(&runs, "serve-trace");
}

#[test]
fn serve_coalescing_changes_no_outcome() {
    // Coalescing must be a pure transport-call optimization: every job
    // outcome, wait time, and fairness number is identical with it on or
    // off — only the coalescing counters themselves (and the number of
    // unique transport calls) may differ.
    let model = ultra();
    let trace = serve::generate_trace(&serve::TrafficConfig {
        jobs: 14,
        duplicate_rate: 0.5,
        seed: 29,
        ..Default::default()
    });
    let on = serve::serve_trace_with(
        &model,
        &trace,
        &serve::ServeConfig { coalesce: true, ..Default::default() },
        &exec::Engine::with_threads(4),
    );
    let off = serve::serve_trace_with(
        &model,
        &trace,
        &serve::ServeConfig { coalesce: false, ..Default::default() },
        &exec::Engine::with_threads(4),
    );
    assert!(on.coalesce.hits > 0, "duplicate-heavy trace must coalesce: {:?}", on.coalesce);
    assert_eq!(off.coalesce.hits, 0);
    assert_eq!(
        serde_json::to_string(&on.jobs).unwrap(),
        serde_json::to_string(&off.jobs).unwrap(),
        "coalescing changed a job outcome"
    );
    assert_eq!(on.completion_order, off.completion_order);
    assert_eq!(on.stats, off.stats);
    assert!(
        on.llm.requests < off.llm.requests,
        "coalescing must reduce transport requests: {} vs {}",
        on.llm.requests,
        off.llm.requests
    );
}

#[test]
fn autochip_cache_hits_are_counted_and_stable() {
    // With a weak model and several rounds, duplicate candidates are
    // common: the per-run eval cache must report hits, and identically so
    // on both engines.
    let model = llm::SimulatedLlm::new(llm::ModelSpec::basic());
    let problem = suite::problem("mux4").unwrap();
    let cfg = autochip::AutoChipConfig {
        k_candidates: 6,
        max_depth: 4,
        temperature: 0.2,
        seed: 3,
        ..Default::default()
    };
    let par = autochip::run_autochip_with(&model, &problem, &cfg, &exec::Engine::with_threads(4))
        .unwrap();
    let seq =
        autochip::run_autochip_with(&model, &problem, &cfg, &exec::Engine::sequential()).unwrap();
    assert!(par.exec.cache_hits > 0, "low temperature must produce duplicate candidates");
    assert_eq!(par.exec.cache_hits, seq.exec.cache_hits);
    assert_eq!(par.exec.cache_misses, seq.exec.cache_misses);
    assert_eq!(par.exec.tasks_run, seq.exec.tasks_run);
}
