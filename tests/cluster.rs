//! Cluster-simulation suite: the `ClusterReport` is byte-identical at
//! any host thread count across shard counts and store topologies, a
//! 1-shard cluster degenerates to the single-node serve driver exactly,
//! scripted shard failures under transport faults never lose or hang a
//! job, and the tenant-churn scenario drives deterministic rebalances.

use llm4eda::{cluster, exec, llm, obs, serve};

use cluster::{
    serve_cluster_with, ClusterConfig, CoalesceScope, ShardEvent, ShardEventKind, StoreMode,
};
use serve::{
    generate_scenario, FlowJob, JobOutcome, Priority, Scenario, ServeConfig, ServeReport,
    TenantConfig, TrafficConfig,
};

fn ultra() -> llm::SimulatedLlm {
    llm::SimulatedLlm::new(llm::ModelSpec::ultra())
}

fn roster() -> Vec<TenantConfig> {
    vec![
        TenantConfig::new("alpha", 3, 64),
        TenantConfig::new("beta", 2, 64),
        TenantConfig::new("gamma", 1, 64),
    ]
}

fn traffic(jobs: usize, duplicate_rate: f64) -> TrafficConfig {
    TrafficConfig {
        jobs,
        duplicate_rate,
        mean_interarrival_us: 1_000_000,
        seed: 13,
        ..Default::default()
    }
}

fn base_cfg() -> ServeConfig {
    ServeConfig { tenants: roster(), workers: 2, max_backlog: 256, ..Default::default() }
}

fn cluster_cfg(shards: usize, store: StoreMode) -> ClusterConfig {
    ClusterConfig { shards, base: base_cfg(), store, ..Default::default() }
}

/// The tentpole determinism pin: for every (shards, store) cell, the
/// serialized `ClusterReport` is byte-identical at 1, 4, and 8 host
/// threads. The report embeds per-shard reports, the merged view,
/// placement, router counters, and coalescing/transport totals — so
/// this one comparison pins the whole surface.
#[test]
fn cluster_report_is_byte_identical_across_threads() {
    let jobs = generate_scenario(Scenario::Steady, &traffic(16, 0.5));
    for shards in [1usize, 2, 4] {
        for store in [StoreMode::Shared, StoreMode::Sharded] {
            let cfg = cluster_cfg(shards, store);
            let golden = serde_json::to_string(&serve_cluster_with(
                &ultra(),
                &jobs,
                &cfg,
                &exec::Engine::with_threads(1),
            ))
            .unwrap();
            for threads in [4usize, 8] {
                let got = serde_json::to_string(&serve_cluster_with(
                    &ultra(),
                    &jobs,
                    &cfg,
                    &exec::Engine::with_threads(threads),
                ))
                .unwrap();
                assert_eq!(
                    golden, got,
                    "ClusterReport diverged: shards={shards} store={} threads={threads}",
                    store.tag()
                );
            }
        }
    }
}

/// Observability on: the merged obs view must be deterministic too.
#[test]
fn cluster_obs_report_is_deterministic() {
    let jobs = generate_scenario(Scenario::Steady, &traffic(12, 0.4));
    let mut cfg = cluster_cfg(2, StoreMode::Shared);
    cfg.base.obs = obs::ObsConfig { enabled: true, ..Default::default() };
    let a = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(1));
    let b = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(8));
    assert!(a.obs.is_some(), "obs enabled must yield a cluster ObsReport");
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "obs-enabled ClusterReport diverged across thread counts"
    );
    // Per-shard obs stays None — the cluster owns the single session.
    assert!(a.shards.iter().all(|s| s.obs.is_none()));
}

/// A 1-shard cluster with per-shard coalescing and a sharded store is
/// the existing single-node driver, byte for byte: same per-shard
/// report as `serve_trace_with` on the same config.
#[test]
fn one_shard_cluster_degenerates_to_serve() {
    let jobs = generate_scenario(Scenario::Steady, &traffic(14, 0.5));
    let base = base_cfg();
    let engine = exec::Engine::with_threads(4);
    let solo = serve::serve_trace_with(&ultra(), &jobs, &base, &engine);
    let cfg = ClusterConfig {
        shards: 1,
        base,
        store: StoreMode::Sharded,
        coalesce_scope: CoalesceScope::Shard,
        ..Default::default()
    };
    let clustered = serve_cluster_with(&ultra(), &jobs, &cfg, &engine);
    assert_eq!(clustered.shard_count, 1);
    assert_eq!(
        serde_json::to_string(&solo).unwrap(),
        serde_json::to_string(&clustered.shards[0]).unwrap(),
        "1-shard cluster must replay the single-node serve report exactly"
    );
    // And the merged view of one shard is that shard.
    assert_eq!(
        serde_json::to_string(&clustered.merged.stats).unwrap(),
        serde_json::to_string(&solo.stats).unwrap()
    );
}

/// The embedded merged report is exactly `ServeReport::merge` over the
/// per-shard reports — no hidden cluster-side accounting.
#[test]
fn merged_view_is_the_plain_merge_of_shards() {
    let jobs = generate_scenario(Scenario::Steady, &traffic(16, 0.3));
    let r = serve_cluster_with(
        &ultra(),
        &jobs,
        &cluster_cfg(4, StoreMode::Sharded),
        &exec::Engine::with_threads(4),
    );
    let remerged = ServeReport::merge(&r.shards);
    assert_eq!(
        serde_json::to_string(&r.merged).unwrap(),
        serde_json::to_string(&remerged).unwrap()
    );
    // Conservation: every routed job's record lives on exactly one shard.
    let per_shard: usize = r.shards.iter().map(|s| s.jobs.len()).sum();
    assert_eq!(per_shard + r.unrouted.len(), jobs.len());
}

/// Chaos arm: transport faults at rate 0.3 plus a scripted mid-trace
/// shard failure and later rejoin. Nothing panics, nothing hangs, every
/// job reaches a terminal state, and no job is silently lost.
#[test]
fn chaos_shard_failure_under_transport_faults() {
    let mut tcfg = traffic(20, 0.4);
    tcfg.deadline_us = (30_000_000, 90_000_000);
    let jobs = generate_scenario(Scenario::Burst, &tcfg);
    let mut cfg = cluster_cfg(3, StoreMode::Shared);
    cfg.base.resilience = llm::ResilienceConfig::with_fault_rate(0.3, 11);
    // Learn the horizon fault-free first, then script the failure
    // inside it — deterministic without hard-coding virtual times.
    let dry = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    let makespan = dry.merged.stats.makespan_us.max(1);
    cfg.events = vec![
        ShardEvent { at_us: makespan / 3, shard: 0, kind: ShardEventKind::Fail },
        ShardEvent { at_us: 2 * makespan / 3, shard: 0, kind: ShardEventKind::Rejoin },
    ];
    let r = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    assert_eq!(r.router.lost_jobs, 0, "router={:?}", r.router);
    let s = &r.merged.stats;
    let terminal = s.completed
        + s.expired
        + s.rejected_queue_full
        + s.rejected_overloaded
        + s.rejected_unknown_tenant
        + r.router.rejected_no_shard;
    assert_eq!(terminal as usize, jobs.len(), "stats={s:?} router={:?}", r.router);
    assert_eq!(r.events.len(), 2);
    // Determinism holds under chaos too.
    let again = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(1));
    assert_eq!(
        serde_json::to_string(&r).unwrap(),
        serde_json::to_string(&again).unwrap(),
        "chaos run diverged across thread counts"
    );
}

/// Tenant churn + a mid-trace failover: the widened churn window keeps
/// several tenants active while a shard dies, so the rebalance actually
/// migrates load. The whole thing replays byte-identically.
#[test]
fn churn_trace_rebalance_is_deterministic() {
    let tcfg = TrafficConfig {
        jobs: 18,
        duplicate_rate: 0.3,
        mean_interarrival_us: 1_500_000,
        seed: 23,
        churn_window: 3,
        churn_phases: 3,
        ..Default::default()
    };
    let jobs = generate_scenario(Scenario::TenantChurn, &tcfg);
    let mut cfg = cluster_cfg(2, StoreMode::Sharded);
    let dry = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(4));
    let makespan = dry.merged.stats.makespan_us.max(1);
    cfg.events =
        vec![ShardEvent { at_us: makespan / 2, shard: 1, kind: ShardEventKind::Fail }];
    let r1 = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(1));
    let r2 = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(8));
    assert_eq!(
        serde_json::to_string(&r1).unwrap(),
        serde_json::to_string(&r2).unwrap()
    );
    assert_eq!(r1.router.lost_jobs, 0);
    assert_eq!(r1.router.rebalances, 1);
    // The failed shard holds no tenants afterwards.
    assert!(r1.placement.iter().all(|p| p.shard != 1), "{:?}", r1.placement);
}

/// The shared tier recovers cross-shard duplicate work that sharded
/// stores repeat: under a duplicate-heavy trace, shared-store transport
/// traffic is strictly below sharded-store traffic, and both topologies
/// produce identical virtual outcomes.
#[test]
fn shared_store_recovers_cross_shard_duplicates() {
    let jobs = generate_scenario(Scenario::Steady, &traffic(20, 0.6));
    let engine = exec::Engine::with_threads(4);
    let shared =
        serve_cluster_with(&ultra(), &jobs, &cluster_cfg(4, StoreMode::Shared), &engine);
    let sharded =
        serve_cluster_with(&ultra(), &jobs, &cluster_cfg(4, StoreMode::Sharded), &engine);
    assert!(
        shared.cluster_llm.requests <= sharded.cluster_llm.requests,
        "shared store must not add transport work: shared={} sharded={}",
        shared.cluster_llm.requests,
        sharded.cluster_llm.requests
    );
    assert_eq!(
        serde_json::to_string(&shared.merged.stats).unwrap(),
        serde_json::to_string(&sharded.merged.stats).unwrap(),
        "cache topology must not change virtual outcomes"
    );
}

/// `EDA_CLUSTER_*` knobs go through the hardened parser: valid values
/// apply, malformed ones fail with an error naming the variable.
#[test]
fn cluster_env_knobs_parse_and_reject() {
    // This test owns the EDA_CLUSTER_* namespace; no other test in this
    // binary touches it.
    std::env::set_var(cluster::CLUSTER_SHARDS_ENV, "5");
    std::env::set_var(cluster::CLUSTER_STORE_ENV, "shared");
    std::env::set_var(cluster::CLUSTER_COALESCE_ENV, "global");
    std::env::set_var(cluster::CLUSTER_VNODES_ENV, "32");
    std::env::set_var(cluster::CLUSTER_LOAD_FACTOR_ENV, "2.0");
    let cfg = ClusterConfig::try_from_env().expect("valid knobs");
    assert_eq!(cfg.shards, 5);
    assert_eq!(cfg.store, StoreMode::Shared);
    assert_eq!(cfg.coalesce_scope, CoalesceScope::Global);
    assert_eq!(cfg.vnodes, 32);
    assert!((cfg.load_factor - 2.0).abs() < 1e-9);

    std::env::set_var(cluster::CLUSTER_STORE_ENV, "replicated");
    let err = ClusterConfig::try_from_env().expect_err("bad store value");
    assert!(err.to_string().contains(cluster::CLUSTER_STORE_ENV), "{err}");
    std::env::set_var(cluster::CLUSTER_STORE_ENV, "shared");

    std::env::set_var(cluster::CLUSTER_SHARDS_ENV, "0");
    let err = ClusterConfig::try_from_env().expect_err("out-of-range shards");
    assert!(err.to_string().contains(cluster::CLUSTER_SHARDS_ENV), "{err}");

    for var in [
        cluster::CLUSTER_SHARDS_ENV,
        cluster::CLUSTER_STORE_ENV,
        cluster::CLUSTER_COALESCE_ENV,
        cluster::CLUSTER_VNODES_ENV,
        cluster::CLUSTER_LOAD_FACTOR_ENV,
    ] {
        std::env::remove_var(var);
    }
}

/// `ServeReport::merge` unit pins on real reports: stats sum, records
/// concatenate sorted by id, completion order re-sorts by finish time,
/// and merging a report with an empty one is the identity on stats.
#[test]
fn serve_report_merge_pins() {
    let jobs = generate_scenario(Scenario::Steady, &traffic(10, 0.3));
    let base = base_cfg();
    let engine = exec::Engine::with_threads(2);
    let (left, right): (Vec<FlowJob>, Vec<FlowJob>) =
        jobs.iter().cloned().partition(|j| j.id % 2 == 0);
    let a = serve::serve_trace_with(&ultra(), &left, &base, &engine);
    let b = serve::serve_trace_with(&ultra(), &right, &base, &engine);
    let m = ServeReport::merge(&[a.clone(), b.clone()]);
    assert_eq!(m.stats.submitted, a.stats.submitted + b.stats.submitted);
    assert_eq!(m.stats.completed, a.stats.completed + b.stats.completed);
    assert_eq!(m.jobs.len(), a.jobs.len() + b.jobs.len());
    let ids: Vec<u64> = m.jobs.iter().map(|j| j.id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "merged records must be id-sorted");
    assert_eq!(m.stats.makespan_us, a.stats.makespan_us.max(b.stats.makespan_us));
    // Completion order is consistent with per-record finish times.
    let finish_of = |id: u64| {
        m.jobs
            .iter()
            .find(|j| j.id == id)
            .and_then(|j| match &j.outcome {
                JobOutcome::Completed { finish_us, .. } => Some(*finish_us),
                _ => None,
            })
            .expect("completion order only lists completed jobs")
    };
    for w in m.completion_order.windows(2) {
        assert!(finish_of(w[0]) <= finish_of(w[1]), "completion order out of time order");
    }
    // Identity against an empty report.
    let id = ServeReport::merge(std::slice::from_ref(&a));
    assert_eq!(
        serde_json::to_string(&id.stats).unwrap(),
        serde_json::to_string(&a.stats).unwrap()
    );
}

/// Priorities still dominate within a shard: under a saturated cluster,
/// every Interactive job of a tenant completes before its last Batch
/// job on the same shard.
#[test]
fn priority_order_survives_sharding() {
    let mut jobs: Vec<FlowJob> = Vec::new();
    for i in 0..6u64 {
        jobs.push(FlowJob {
            id: i,
            tenant: "alpha".into(),
            priority: if i < 3 { Priority::Batch } else { Priority::Interactive },
            arrival_us: 0,
            deadline_us: 0,
            flow: serve::FlowSpec::Structured { problem: "mux2".into(), rounds: 1, seed: i },
        });
    }
    let mut cfg = cluster_cfg(2, StoreMode::Sharded);
    cfg.base.workers = 1;
    let r = serve_cluster_with(&ultra(), &jobs, &cfg, &exec::Engine::with_threads(2));
    assert_eq!(r.merged.stats.completed, 6);
    let shard = r.placement.iter().find(|p| p.tenant == "alpha").unwrap().shard;
    let order = &r.shards[shard].completion_order;
    let pos = |id: u64| order.iter().position(|&x| x == id).unwrap();
    for batch in 0..3 {
        for inter in 3..6 {
            assert!(
                pos(inter) < pos(batch),
                "Interactive {inter} must finish before Batch {batch}: {order:?}"
            );
        }
    }
}
