//! Golden-vector replay: reference simulator waveforms and out-of-order
//! cycle counts snapshotted into `tests/golden/golden.json`, replayed
//! bit-exactly by both the four-state reference engine and the two-state
//! fast path.
//!
//! The snapshot locks in *post-bugfix* behaviour (it was generated after
//! the `casez` label-width comparison fix in the simulator), so any
//! regression in either engine — or any silent semantic drift — shows up
//! as a byte-level diff against a human-readable JSON file.
//!
//! Regenerate with `EDA_GOLDEN_REGEN=1 cargo test --test golden_vectors`.

use llm4eda::{hdl, riscv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/golden.json");

#[derive(Serialize)]
struct Golden {
    hdl: Vec<HdlGolden>,
    ooo: Vec<OooGolden>,
}

#[derive(Serialize)]
struct HdlGolden {
    name: String,
    signals: Vec<String>,
    /// One row per step, values index-aligned with `signals`. Defined
    /// values render as hex (`0x..`); values with X bits render as a
    /// binary string (`b01xx..`) so X positions are locked exactly.
    steps: Vec<Vec<String>>,
}

#[derive(Serialize)]
struct OooGolden {
    name: String,
    instrs: u64,
    cycles: u64,
    mispredicts: u64,
    alu: u64,
    mul: u64,
    div: u64,
    mem: u64,
    branch: u64,
}

fn render(v: &hdl::Value) -> String {
    if let Some(x) = v.to_u128() {
        format!("0x{x:x}")
    } else {
        let mut s = String::from("b");
        for i in (0..v.width()).rev() {
            s.push(match v.get_bit(i) {
                None => 'x',
                Some(true) => '1',
                Some(false) => '0',
            });
        }
        s
    }
}

struct HdlCase {
    name: &'static str,
    src: &'static str,
    top: &'static str,
    /// Clock/reset names for sequential cases.
    clock: Option<&'static str>,
    reset: Option<&'static str>,
    /// Input ports to drive (name, width).
    inputs: &'static [(&'static str, u32)],
    /// Signals recorded per step.
    watch: &'static [&'static str],
    steps: usize,
    seed: u64,
}

/// Fixed designs (drawn from the `hdl_stress` suite) whose waveforms are
/// snapshotted.
fn hdl_cases() -> Vec<HdlCase> {
    vec![
        HdlCase {
            name: "rca4",
            src: "
              module fa(input a, b, cin, output s, cout);
                assign s = a ^ b ^ cin;
                assign cout = (a & b) | (cin & (a ^ b));
              endmodule
              module rca4(input [3:0] a, b, input cin, output [3:0] s, output cout);
                wire c0, c1, c2;
                fa f0(.a(a[0]), .b(b[0]), .cin(cin), .s(s[0]), .cout(c0));
                fa f1(.a(a[1]), .b(b[1]), .cin(c0),  .s(s[1]), .cout(c1));
                fa f2(.a(a[2]), .b(b[2]), .cin(c1),  .s(s[2]), .cout(c2));
                fa f3(.a(a[3]), .b(b[3]), .cin(c2),  .s(s[3]), .cout(cout));
              endmodule",
            top: "rca4",
            clock: None,
            reset: None,
            inputs: &[("a", 4), ("b", 4), ("cin", 1)],
            watch: &["s", "cout", "c0", "c1", "c2"],
            steps: 48,
            seed: 11,
        },
        HdlCase {
            name: "wide100",
            src: "
              module wide(input [99:0] a, b, output [100:0] s, output [99:0] x);
                assign s = a + b;
                assign x = a ^ b;
              endmodule",
            top: "wide",
            clock: None,
            reset: None,
            inputs: &[("a", 100), ("b", 100)],
            watch: &["s", "x"],
            steps: 16,
            seed: 23,
        },
        HdlCase {
            name: "pingpong",
            src: "
              module pp(input clk, rst, output [1:0] code);
                reg a, b;
                always @(posedge clk) begin
                  if (rst) a <= 1'b0; else a <= b;
                end
                always @(posedge clk) begin
                  if (rst) b <= 1'b1; else b <= a;
                end
                assign code = {a, b};
              endmodule",
            top: "pp",
            clock: Some("clk"),
            reset: Some("rst"),
            inputs: &[],
            watch: &["code", "a", "b"],
            steps: 8,
            seed: 0,
        },
        HdlCase {
            name: "casez_priority",
            src: "
              module pri(input [3:0] req, output reg [1:0] grant);
                always @(*) begin
                  casez (req)
                    4'bzzz1: grant = 2'd0;
                    4'bzz1z: grant = 2'd1;
                    4'bz1zz: grant = 2'd2;
                    4'b1zzz: grant = 2'd3;
                    default: grant = 2'd0;
                  endcase
                end
              endmodule",
            top: "pri",
            clock: None,
            reset: None,
            inputs: &[("req", 4)],
            watch: &["grant"],
            steps: 16,
            seed: 5,
        },
        HdlCase {
            name: "mini_alu",
            src: "
              module mini_alu(input [1:0] op, input [3:0] a, b, output reg [3:0] y);
                always @(*) begin
                  case (op)
                    2'd0: y = a + b;
                    2'd1: y = a - b;
                    2'd2: y = a * b;
                    default: y = (a < b) ? a : b;
                  endcase
                end
              endmodule",
            top: "mini_alu",
            clock: None,
            reset: None,
            inputs: &[("op", 2), ("a", 4), ("b", 4)],
            watch: &["y"],
            steps: 48,
            seed: 31,
        },
        HdlCase {
            name: "xz_shift_register",
            // Uninitialized registers hold X until the pipeline fills; the
            // snapshot locks the exact X-to-defined transition.
            src: "
              module sr(input clk, d, output reg q1, output reg q2);
                always @(posedge clk) begin
                  q1 <= d;
                  q2 <= q1;
                end
              endmodule",
            top: "sr",
            clock: Some("clk"),
            reset: None,
            inputs: &[("d", 1)],
            watch: &["q1", "q2"],
            steps: 6,
            seed: 2,
        },
    ]
}

fn mask_u128(w: u32) -> u128 {
    if w >= 128 {
        u128::MAX
    } else {
        (1 << w) - 1
    }
}

fn run_hdl_case(case: &HdlCase, fast_path: bool) -> HdlGolden {
    let design = hdl::compile(case.src, case.top).unwrap();
    let mut sim = hdl::Simulator::new(&design);
    sim.set_fast_path(fast_path);
    let mut rng = StdRng::seed_from_u64(case.seed ^ 0x601d_e4e2);
    // Exhaustive for the casez case (4-bit input); seeded random otherwise.
    if let Some(rst) = case.reset {
        sim.poke(rst, hdl::Value::bit(true)).unwrap();
        if let Some(clk) = case.clock {
            for _ in 0..2 {
                sim.poke(clk, hdl::Value::bit(false)).unwrap();
                sim.settle().unwrap();
                sim.poke(clk, hdl::Value::bit(true)).unwrap();
                sim.settle().unwrap();
            }
        }
        sim.poke(rst, hdl::Value::bit(false)).unwrap();
    }
    let mut steps = Vec::with_capacity(case.steps);
    for step in 0..case.steps {
        for (i, (n, w)) in case.inputs.iter().enumerate() {
            let v = if case.name == "casez_priority" {
                step as u128 // exhaustive 4-bit sweep
            } else {
                let hi = rng.gen::<u64>() as u128;
                let lo = rng.gen::<u64>() as u128;
                let _ = i;
                (hi << 64 | lo) & mask_u128(*w)
            };
            sim.poke(n, hdl::Value::from_u128(*w, v)).unwrap();
        }
        match case.clock {
            Some(clk) => {
                sim.poke(clk, hdl::Value::bit(false)).unwrap();
                sim.settle().unwrap();
                sim.poke(clk, hdl::Value::bit(true)).unwrap();
                sim.settle().unwrap();
            }
            None => sim.settle().unwrap(),
        }
        steps.push(case.watch.iter().map(|n| render(&sim.peek(n).unwrap())).collect());
    }
    HdlGolden {
        name: case.name.to_string(),
        signals: case.watch.iter().map(|s| s.to_string()).collect(),
        steps,
    }
}

/// Fixed assembly programs whose out-of-order cycle counts are snapshotted.
fn ooo_cases() -> Vec<(&'static str, String)> {
    let mut dependent = String::from("li t0, 1\n");
    for _ in 0..200 {
        dependent.push_str("add t0, t0, t0\n");
    }
    dependent.push_str("ecall\n");

    let mut independent = String::from("li t0, 1\nli t1, 2\nli t2, 3\nli t3, 4\n");
    for _ in 0..100 {
        independent
            .push_str("add t0, t0, zero\nadd t1, t1, zero\nadd t2, t2, zero\nadd t3, t3, zero\n");
    }
    independent.push_str("ecall\n");

    let loop_mix = String::from(
        "
        li t0, 500
        li t1, 7
        li t2, 13
    loop:
        mul t3, t1, t2
        add t4, t1, t2
        sw t3, 64(zero)
        addi t0, t0, -1
        bne t0, zero, loop
        ecall
    ",
    );

    let mut divides = String::from("li t0, 100\nli t1, 7\n");
    for _ in 0..50 {
        divides.push_str("div t2, t0, t1\ndiv t3, t0, t1\n");
    }
    divides.push_str("ecall\n");

    vec![
        ("dependent_chain", dependent),
        ("independent_adds", independent),
        ("loop_mix", loop_mix),
        ("divider_serialized", divides),
    ]
}

fn run_ooo_case(name: &str, src: &str, reference: bool) -> OooGolden {
    let prog = riscv::assemble(src).unwrap();
    let result = riscv::Cpu::new(riscv::CpuConfig::default()).run(&prog).unwrap();
    let cfg = riscv::UarchConfig::default();
    let power = riscv::PowerParams::default();
    let r = if reference {
        riscv::analyze_reference(&result.trace, cfg, power)
    } else {
        riscv::analyze(&result.trace, cfg, power)
    };
    OooGolden {
        name: name.to_string(),
        instrs: r.instrs,
        cycles: r.cycles,
        mispredicts: r.branch_mispredicts,
        alu: r.alu,
        mul: r.mul,
        div: r.div,
        mem: r.mem,
        branch: r.branch,
    }
}

fn build_golden(hdl_fast: bool, ooo_reference: bool) -> String {
    let golden = Golden {
        hdl: hdl_cases().iter().map(|c| run_hdl_case(c, hdl_fast)).collect(),
        ooo: ooo_cases()
            .iter()
            .map(|(n, s)| run_ooo_case(n, s, ooo_reference))
            .collect(),
    };
    let mut text = serde_json::to_string_pretty(&golden).unwrap();
    text.push('\n');
    text
}

#[test]
fn golden_vectors_replay_bit_exactly_on_both_engines() {
    // The snapshot is generated by the reference (four-state) engine; the
    // fast path and the optimized OoO engine must reproduce it exactly.
    let reference = build_golden(false, true);
    let fast = build_golden(true, false);
    assert_eq!(reference, fast, "engines disagree before touching the snapshot");

    if llm4eda::exec::parse_bool_knob("EDA_GOLDEN_REGEN").unwrap_or(None).unwrap_or(false) {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden")).unwrap();
        std::fs::write(GOLDEN_PATH, &reference).unwrap();
        return;
    }
    let on_disk = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden snapshot {GOLDEN_PATH} ({e}); regenerate with EDA_GOLDEN_REGEN=1")
    });
    assert_eq!(
        on_disk, reference,
        "golden snapshot drifted; if the change is intentional, regenerate with EDA_GOLDEN_REGEN=1"
    );
}

#[test]
fn golden_snapshot_is_parseable_and_has_expected_shape() {
    let text = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|e| {
        panic!("missing golden snapshot {GOLDEN_PATH} ({e}); regenerate with EDA_GOLDEN_REGEN=1")
    });
    let v = serde_json::from_str(&text).unwrap();
    let hdl_cases_json = v.get("hdl").unwrap().as_array().unwrap();
    assert_eq!(hdl_cases_json.len(), hdl_cases().len());
    for c in hdl_cases_json {
        let signals = c.get("signals").unwrap().as_array().unwrap();
        for row in c.get("steps").unwrap().as_array().unwrap() {
            assert_eq!(row.as_array().unwrap().len(), signals.len());
        }
    }
    // The X-transition case must actually snapshot X bits (binary form).
    let sr = hdl_cases_json
        .iter()
        .find(|c| c.get("name").unwrap().as_str() == Some("xz_shift_register"))
        .unwrap();
    let first_row = &sr.get("steps").unwrap().as_array().unwrap()[0];
    let q2 = first_row.as_array().unwrap()[1].as_str().unwrap();
    assert!(q2.starts_with('b') && q2.contains('x'), "expected X in first q2 sample, got {q2}");
    let ooo = v.get("ooo").unwrap().as_array().unwrap();
    assert_eq!(ooo.len(), 4);
    for c in ooo {
        assert!(c.get("cycles").unwrap().as_u64().unwrap() > 0);
        assert!(c.get("instrs").unwrap().as_u64().unwrap() > 0);
    }
}
