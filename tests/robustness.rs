//! Robustness: no front end may panic on malformed input — they are fed
//! LLM output all day. Mutated/truncated/garbage sources must produce
//! `Err`, never a crash.

use llm4eda::{cmini, hdl, riscv, suite};
use proptest::prelude::*;

/// Deterministic byte-level mutation of a source string.
fn mutate(src: &str, seed: u64) -> String {
    let mut bytes: Vec<u8> = src.bytes().collect();
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..1 + seed % 5 {
        // Re-check emptiness and recompute the position bound at the top
        // of EVERY iteration: delete and truncate shrink the buffer, so
        // any index derived from an earlier length may be past the end.
        if bytes.is_empty() {
            break;
        }
        let pos = (next() as usize) % bytes.len();
        match next() % 3 {
            0 => {
                // Delete a byte.
                bytes.remove(pos);
            }
            1 => bytes[pos] = b"(){};=<>+-*/&|^~!#@$"[(next() as usize) % 20],
            _ => {
                let end = (pos + 1 + (next() as usize) % 20).min(bytes.len());
                bytes.truncate(end);
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn mutate_survives_tiny_sources() {
    // Regression: repeated delete/truncate edits on short inputs must
    // never index past the shrunk buffer or panic on emptiness.
    for src in ["", "a", "ab", ";", "{}"] {
        for seed in 0..2000u64 {
            let out = mutate(src, seed);
            assert!(out.len() <= src.len(), "mutation never grows: {out:?}");
        }
    }
}

#[test]
fn hdl_parser_never_panics_on_mutated_references() {
    for p in suite::all_problems() {
        for seed in 0..50u64 {
            let src = mutate(p.reference, seed);
            // Err is fine; panic is not.
            let _ = hdl::parse(&src);
            let _ = hdl::compile(&src, p.module_name);
        }
    }
}

#[test]
fn cmini_parser_never_panics_on_mutated_programs() {
    let programs = [
        "int f(int a) { return a * 2; }",
        "int g(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }",
        "void h(int x[8]) { x[0] = 1; }",
    ];
    for src in programs {
        for seed in 0..80u64 {
            let _ = cmini::parse(&mutate(src, seed));
        }
    }
}

#[test]
fn assembler_never_panics_on_mutated_asm() {
    let src = "li t0, 10\nloop:\nadd a0, a0, t0\naddi t0, t0, -1\nbne t0, zero, loop\necall\n";
    for seed in 0..80u64 {
        let _ = riscv::assemble(&mutate(src, seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary ASCII never panics any front end.
    #[test]
    fn garbage_is_rejected_gracefully(src in "[ -~\\n]{0,200}") {
        let _ = hdl::parse(&src);
        let _ = cmini::parse(&src);
        let _ = riscv::assemble(&src);
    }

    /// A program that parses must also survive elaboration attempts
    /// without panicking (errors allowed).
    #[test]
    fn parsed_hdl_elaborates_or_errors(seed in 0u64..200) {
        let p = suite::problem("alu8").unwrap();
        let src = mutate(p.reference, seed);
        if let Ok(file) = hdl::parse(&src) {
            for m in &file.modules {
                let _ = hdl::elaborate(&file, &m.name);
                let _ = hdl::lint_module(m);
            }
        }
    }

    /// Mini-C that parses never panics the HLS lowering or the interpreter
    /// (runtime errors allowed).
    #[test]
    fn parsed_c_lowers_or_errors(seed in 0u64..200) {
        let base = "int f(int a, int b) { int s = 0; for (int i = 0; i < 8; i++) s += a * b + i; return s; }";
        let src = mutate(base, seed);
        if let Ok(prog) = cmini::parse(&src) {
            let _ = llm4eda::hls::lower(&prog, "f");
            let mut interp = cmini::Interp::new(&prog).with_limits(cmini::InterpLimits {
                max_steps: 10_000,
                max_call_depth: 8,
                max_heap_words: 1 << 12,
            });
            let _ = interp.call_ints("f", &[3, 4]);
        }
    }
}
