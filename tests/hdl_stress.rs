//! Stress tests for the HDL substrate: parameterized hierarchies, wide
//! arithmetic, FSMs, and cross-checks between the event-driven simulator
//! and the logic synthesizer.

use llm4eda::{hdl, synth};

#[test]
fn parameterized_ripple_adder_hierarchy() {
    // A generate-free parameterized ripple-carry adder built from
    // full-adder instances, checked exhaustively at 4 bits.
    let src = "
      module fa(input a, b, cin, output s, cout);
        assign s = a ^ b ^ cin;
        assign cout = (a & b) | (cin & (a ^ b));
      endmodule
      module rca4(input [3:0] a, b, input cin, output [3:0] s, output cout);
        wire c0, c1, c2;
        fa f0(.a(a[0]), .b(b[0]), .cin(cin), .s(s[0]), .cout(c0));
        fa f1(.a(a[1]), .b(b[1]), .cin(c0),  .s(s[1]), .cout(c1));
        fa f2(.a(a[2]), .b(b[2]), .cin(c1),  .s(s[2]), .cout(c2));
        fa f3(.a(a[3]), .b(b[3]), .cin(c2),  .s(s[3]), .cout(cout));
      endmodule";
    let design = hdl::compile(src, "rca4").unwrap();
    for a in 0..16u64 {
        for b in 0..16u64 {
            for cin in 0..2u64 {
                let mut sim = hdl::Simulator::new(&design);
                sim.poke("a", hdl::Value::from_u64(4, a)).unwrap();
                sim.poke("b", hdl::Value::from_u64(4, b)).unwrap();
                sim.poke("cin", hdl::Value::from_u64(1, cin)).unwrap();
                sim.settle().unwrap();
                let total = a + b + cin;
                assert_eq!(sim.peek("s").unwrap().to_u64(), Some(total & 0xf));
                assert_eq!(sim.peek("cout").unwrap().to_u64(), Some(total >> 4));
            }
        }
    }
}

#[test]
fn wide_arithmetic_to_128_bits() {
    let src = "
      module wide(input [99:0] a, b, output [100:0] s, output [99:0] x);
        assign s = a + b;
        assign x = a ^ b;
      endmodule";
    let design = hdl::compile(src, "wide").unwrap();
    let mut sim = hdl::Simulator::new(&design);
    let a = (1u128 << 99) | 0xdead_beef;
    let b = (1u128 << 99) | 0x1111;
    sim.poke("a", hdl::Value::from_u128(100, a)).unwrap();
    sim.poke("b", hdl::Value::from_u128(100, b)).unwrap();
    sim.settle().unwrap();
    assert_eq!(sim.peek("s").unwrap().to_u128(), Some(a + b));
    assert_eq!(sim.peek("x").unwrap().to_u128(), Some(a ^ b));
}

#[test]
fn two_always_blocks_with_cross_coupling() {
    // Ping-pong FSM: two registers exchanging values through nonblocking
    // semantics, plus a comb decoder.
    let src = "
      module pp(input clk, rst, output [1:0] code);
        reg a, b;
        always @(posedge clk) begin
          if (rst) a <= 1'b0; else a <= b;
        end
        always @(posedge clk) begin
          if (rst) b <= 1'b1; else b <= a;
        end
        assign code = {a, b};
      endmodule";
    let design = hdl::compile(src, "pp").unwrap();
    let mut sim = hdl::Simulator::new(&design);
    sim.poke("rst", hdl::Value::bit(true)).unwrap();
    hdl::clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
    sim.poke("rst", hdl::Value::bit(false)).unwrap();
    let mut seq = Vec::new();
    hdl::clock_cycles(&mut sim, "clk", 4, |_, s| {
        seq.push(s.peek("code").unwrap().to_u64().unwrap());
        Ok(())
    })
    .unwrap();
    // {a,b} starts 01 and swaps every cycle.
    assert_eq!(seq, vec![0b10, 0b01, 0b10, 0b01]);
}

#[test]
fn blocking_vs_nonblocking_divergence_detected() {
    // The classic shift-register bug: with blocking assigns, q2 copies the
    // *new* q1 and the two-stage delay collapses to one. Both behaviours
    // must be modelled faithfully.
    let good = "
      module sr(input clk, d, output reg q1, output reg q2);
        always @(posedge clk) begin
          q1 <= d;
          q2 <= q1;
        end
      endmodule";
    let bad = "
      module sr(input clk, d, output reg q1, output reg q2);
        always @(posedge clk) begin
          q1 = d;
          q2 = q1;
        end
      endmodule";
    let run = |src: &str| {
        let design = hdl::compile(src, "sr").unwrap();
        let mut sim = hdl::Simulator::new(&design);
        sim.poke("d", hdl::Value::bit(true)).unwrap();
        hdl::clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
        sim.peek("q2").unwrap()
    };
    assert!(run(good).has_x(), "nonblocking: q2 gets old (X) q1");
    assert_eq!(run(bad).to_u64(), Some(1), "blocking: q2 gets new q1");
}

#[test]
fn casez_priority_decoding() {
    let src = "
      module pri(input [3:0] req, output reg [1:0] grant);
        always @(*) begin
          casez (req)
            4'bzzz1: grant = 2'd0;
            4'bzz1z: grant = 2'd1;
            4'bz1zz: grant = 2'd2;
            4'b1zzz: grant = 2'd3;
            default: grant = 2'd0;
          endcase
        end
      endmodule";
    let design = hdl::compile(src, "pri").unwrap();
    let expect = |req: u64| -> u64 {
        if req & 1 != 0 { 0 } else if req & 2 != 0 { 1 } else if req & 4 != 0 { 2 }
        else if req & 8 != 0 { 3 } else { 0 }
    };
    for req in 0..16u64 {
        let mut sim = hdl::Simulator::new(&design);
        sim.poke("req", hdl::Value::from_u64(4, req)).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek("grant").unwrap().to_u64(), Some(expect(req)), "req={req:04b}");
    }
}

#[test]
fn simulator_and_synthesizer_agree_on_alu() {
    // Cross-validation: the event-driven simulator and the symbolic
    // synthesizer must implement the same semantics.
    let src = "
      module mini_alu(input [1:0] op, input [3:0] a, b, output reg [3:0] y);
        always @(*) begin
          case (op)
            2'd0: y = a + b;
            2'd1: y = a - b;
            2'd2: y = a * b;
            default: y = (a < b) ? a : b;
          endcase
        end
      endmodule";
    let file = hdl::parse(src).unwrap();
    let sm = synth::synthesize(file.module("mini_alu").unwrap()).unwrap();
    let design = hdl::elaborate(&file, "mini_alu").unwrap();
    for pattern in 0..1024u64 {
        let op = pattern & 3;
        let a = (pattern >> 2) & 0xf;
        let b = (pattern >> 6) & 0xf;
        let mut sim = hdl::Simulator::new(&design);
        sim.poke("op", hdl::Value::from_u64(2, op)).unwrap();
        sim.poke("a", hdl::Value::from_u64(4, a)).unwrap();
        sim.poke("b", hdl::Value::from_u64(4, b)).unwrap();
        sim.settle().unwrap();
        let golden = sim.peek("y").unwrap().to_u64().unwrap();
        let inputs: Vec<bool> = sm
            .aig
            .input_names()
            .iter()
            .map(|n| {
                let (sig, bit) = match n.find('[') {
                    Some(p) => (&n[..p], n[p + 1..n.len() - 1].parse::<u32>().unwrap()),
                    None => (&n[..], 0),
                };
                let v = match sig {
                    "op" => op,
                    "a" => a,
                    "b" => b,
                    _ => 0,
                };
                v >> bit & 1 == 1
            })
            .collect();
        let outs = sm.aig.simulate(&inputs);
        let mut got = 0u64;
        for ((name, _), v) in sm.aig.outputs().iter().zip(&outs) {
            if let Some(rest) = name.strip_prefix("y[") {
                let bit: u32 = rest.trim_end_matches(']').parse().unwrap();
                if *v {
                    got |= 1 << bit;
                }
            }
        }
        assert_eq!(got, golden, "pattern {pattern}: op={op} a={a} b={b}");
    }
}

#[test]
fn testbench_source_with_tasks_runs() {
    // A self-contained Verilog testbench with a clock generator, delays,
    // $display and $error — the path AutoChip-style flows use for
    // free-form testbenches.
    let run = hdl::run_testbench(
        r#"module tb;
             reg clk = 0;
             reg [7:0] count = 0;
             always #5 clk = ~clk;
             always @(posedge clk) count <= count + 8'd1;
             initial begin
               #103;
               if (count != 8'd10) $error("count=%d", count);
               $display("done count=%d", count);
               $finish;
             end
           endmodule"#,
        "tb",
        10_000,
    )
    .unwrap();
    assert!(run.finished);
    assert!(run.errors.is_empty(), "{:?}", run.errors);
    assert!(run.output.contains("done count=10"));
}

#[test]
fn x_propagates_through_arithmetic_and_fast_path_disengages() {
    // The two-state fast path must hand off to the four-state engine the
    // moment an X enters a signal, and re-engage once the X washes out.
    let src = "
      module xarith(input [7:0] a, b, output [8:0] s, output [7:0] p);
        assign s = a + b;
        assign p = a * b;
      endmodule";
    let design = hdl::compile(src, "xarith").unwrap();
    let mut sim = hdl::Simulator::new(&design);
    sim.set_fast_path(true);
    sim.poke("a", hdl::Value::from_u64(8, 3)).unwrap();
    sim.poke("b", hdl::Value::from_u64(8, 5)).unwrap();
    // First settle still computes under the four-state engine: the output
    // nets hold their initial X until this very evaluation defines them.
    sim.settle().unwrap();
    assert_eq!(sim.peek("s").unwrap().to_u64(), Some(8));
    assert_eq!(sim.x_signal_count(), 0);
    sim.poke("a", hdl::Value::from_u64(8, 4)).unwrap();
    sim.settle().unwrap();
    assert_eq!(sim.peek("s").unwrap().to_u64(), Some(9));
    let engaged = sim.fast_evals();
    assert!(engaged > 0, "fast path never engaged on a pure design");

    // Inject X: arithmetic poisons, the X census rises, and evaluation
    // falls back to the four-state engine.
    sim.poke("a", hdl::Value::all_x(8)).unwrap();
    sim.settle().unwrap();
    assert!(sim.peek("s").unwrap().has_x(), "X must poison addition");
    assert!(sim.peek("p").unwrap().has_x(), "X must poison multiplication");
    assert!(sim.x_signal_count() > 0);
    let during_x = sim.fast_evals();

    // Wash the X out: census returns to zero and the fast path resumes.
    sim.poke("a", hdl::Value::from_u64(8, 200)).unwrap();
    sim.poke("b", hdl::Value::from_u64(8, 100)).unwrap();
    sim.settle().unwrap();
    assert_eq!(sim.peek("s").unwrap().to_u64(), Some(300));
    assert_eq!(sim.x_signal_count(), 0, "X census must drop once X washes out");
    // The washing settle itself still saw X on the outputs; the round
    // after it runs two-state again.
    sim.poke("a", hdl::Value::from_u64(8, 201)).unwrap();
    sim.settle().unwrap();
    assert_eq!(sim.peek("s").unwrap().to_u64(), Some(301));
    assert!(sim.fast_evals() > during_x, "fast path must re-engage after X clears");
}

#[test]
fn z_literals_collapse_to_x_on_buses() {
    // This value model is four-state-lite: Z is not modelled separately
    // and a z literal lexes to X. A "tri-stated" driver therefore yields
    // X, and anything consuming it sees X — both engines must agree.
    let src = "
      module tri_bus(input sel, input [3:0] d, output [3:0] bus, output any);
        assign bus = sel ? d : 4'bzzzz;
        assign any = |bus;
      endmodule";
    let design = hdl::compile(src, "tri_bus").unwrap();
    for fast in [false, true] {
        let mut sim = hdl::Simulator::new(&design);
        sim.set_fast_path(fast);
        sim.poke("sel", hdl::Value::bit(false)).unwrap();
        sim.poke("d", hdl::Value::from_u64(4, 9)).unwrap();
        sim.settle().unwrap();
        assert!(sim.peek("bus").unwrap().has_x(), "undriven bus reads X (fast={fast})");
        assert!(sim.peek("any").unwrap().has_x());
        sim.poke("sel", hdl::Value::bit(true)).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek("bus").unwrap().to_u64(), Some(9), "driven bus (fast={fast})");
        assert_eq!(sim.peek("any").unwrap().to_u64(), Some(1));
    }
}

#[test]
fn x_in_clocked_fsm_state_resolves_after_reset() {
    // An FSM whose state register starts uninitialized (X): the comb
    // decode stays X, the fast path stays disengaged, and only a reset
    // pulse brings the design into two-state territory.
    let src = "
      module fsm(input clk, rst, go, output reg [1:0] state, output busy);
        always @(posedge clk) begin
          if (rst) state <= 2'd0;
          else if (go) state <= state + 2'd1;
        end
        assign busy = state != 2'd0;
      endmodule";
    let design = hdl::compile(src, "fsm").unwrap();
    let mut sim = hdl::Simulator::new(&design);
    sim.set_fast_path(true);
    assert!(sim.x_signal_count() > 0, "uninitialized state must register in the X census");
    sim.poke("rst", hdl::Value::bit(false)).unwrap();
    sim.poke("go", hdl::Value::bit(true)).unwrap();
    hdl::clock_cycles(&mut sim, "clk", 2, |_, _| Ok(())).unwrap();
    // X + 1 is still X: clocking without reset must not launder the state.
    assert!(sim.peek("state").unwrap().has_x(), "X state must persist without reset");
    assert!(sim.peek("busy").unwrap().has_x());
    sim.poke("rst", hdl::Value::bit(true)).unwrap();
    hdl::clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
    sim.poke("rst", hdl::Value::bit(false)).unwrap();
    let before = sim.fast_evals();
    hdl::clock_cycles(&mut sim, "clk", 3, |_, _| Ok(())).unwrap();
    assert_eq!(sim.peek("state").unwrap().to_u64(), Some(3));
    assert_eq!(sim.peek("busy").unwrap().to_u64(), Some(1));
    assert_eq!(sim.x_signal_count(), 0);
    assert!(sim.fast_evals() > before, "fast path must engage after reset clears X");
}

#[test]
fn case_labels_wider_than_subject_do_not_falsely_match() {
    // Regression pin for a latent four-state bug surfaced by this suite:
    // the case dispatcher used to resize labels down to the subject width
    // before comparing, so a wide label like 5'b10001 truncated to 1 and
    // falsely matched subject 1'b1. Verilog case equality compares at the
    // *maximum* of both widths (zero-extending the narrower side).
    let src = "
      module casew(input s, output reg [3:0] y);
        always @(*) begin
          case (s)
            5'b10001: y = 4'd9;
            1'b1:     y = 4'd5;
            default:  y = 4'd2;
          endcase
        end
      endmodule";
    let design = hdl::compile(src, "casew").unwrap();
    for fast in [false, true] {
        let mut sim = hdl::Simulator::new(&design);
        sim.set_fast_path(fast);
        sim.poke("s", hdl::Value::bit(true)).unwrap();
        sim.settle().unwrap();
        assert_eq!(
            sim.peek("y").unwrap().to_u64(),
            Some(5),
            "subject 1 must match label 1'b1, not truncated 5'b10001 (fast={fast})"
        );
        sim.poke("s", hdl::Value::bit(false)).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek("y").unwrap().to_u64(), Some(2), "default arm (fast={fast})");
    }
}

#[test]
fn lint_catches_generated_bug_classes() {
    // The lint checks must fire on the exact bug classes the simulated
    // LLM injects.
    let src = "
      module buggy(input clk, input [1:0] s, input d, output reg q, output reg y);
        always @(posedge clk) q = d;        // blocking in sequential
        always @(*) begin
          case (s)                           // no default
            2'd0: y = d;
            2'd1: y = ~d;
          endcase
        end
      endmodule";
    let file = hdl::parse(src).unwrap();
    let warnings = hdl::lint_module(file.module("buggy").unwrap());
    let kinds: Vec<hdl::LintKind> = warnings.iter().map(|w| w.kind).collect();
    assert!(kinds.contains(&hdl::LintKind::BlockingInSequential));
    assert!(kinds.contains(&hdl::LintKind::CaseWithoutDefault));
}
