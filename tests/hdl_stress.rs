//! Stress tests for the HDL substrate: parameterized hierarchies, wide
//! arithmetic, FSMs, and cross-checks between the event-driven simulator
//! and the logic synthesizer.

use llm4eda::{hdl, synth};

#[test]
fn parameterized_ripple_adder_hierarchy() {
    // A generate-free parameterized ripple-carry adder built from
    // full-adder instances, checked exhaustively at 4 bits.
    let src = "
      module fa(input a, b, cin, output s, cout);
        assign s = a ^ b ^ cin;
        assign cout = (a & b) | (cin & (a ^ b));
      endmodule
      module rca4(input [3:0] a, b, input cin, output [3:0] s, output cout);
        wire c0, c1, c2;
        fa f0(.a(a[0]), .b(b[0]), .cin(cin), .s(s[0]), .cout(c0));
        fa f1(.a(a[1]), .b(b[1]), .cin(c0),  .s(s[1]), .cout(c1));
        fa f2(.a(a[2]), .b(b[2]), .cin(c1),  .s(s[2]), .cout(c2));
        fa f3(.a(a[3]), .b(b[3]), .cin(c2),  .s(s[3]), .cout(cout));
      endmodule";
    let design = hdl::compile(src, "rca4").unwrap();
    for a in 0..16u64 {
        for b in 0..16u64 {
            for cin in 0..2u64 {
                let mut sim = hdl::Simulator::new(&design);
                sim.poke("a", hdl::Value::from_u64(4, a)).unwrap();
                sim.poke("b", hdl::Value::from_u64(4, b)).unwrap();
                sim.poke("cin", hdl::Value::from_u64(1, cin)).unwrap();
                sim.settle().unwrap();
                let total = a + b + cin;
                assert_eq!(sim.peek("s").unwrap().to_u64(), Some(total & 0xf));
                assert_eq!(sim.peek("cout").unwrap().to_u64(), Some(total >> 4));
            }
        }
    }
}

#[test]
fn wide_arithmetic_to_128_bits() {
    let src = "
      module wide(input [99:0] a, b, output [100:0] s, output [99:0] x);
        assign s = a + b;
        assign x = a ^ b;
      endmodule";
    let design = hdl::compile(src, "wide").unwrap();
    let mut sim = hdl::Simulator::new(&design);
    let a = (1u128 << 99) | 0xdead_beef;
    let b = (1u128 << 99) | 0x1111;
    sim.poke("a", hdl::Value::from_u128(100, a)).unwrap();
    sim.poke("b", hdl::Value::from_u128(100, b)).unwrap();
    sim.settle().unwrap();
    assert_eq!(sim.peek("s").unwrap().to_u128(), Some(a + b));
    assert_eq!(sim.peek("x").unwrap().to_u128(), Some(a ^ b));
}

#[test]
fn two_always_blocks_with_cross_coupling() {
    // Ping-pong FSM: two registers exchanging values through nonblocking
    // semantics, plus a comb decoder.
    let src = "
      module pp(input clk, rst, output [1:0] code);
        reg a, b;
        always @(posedge clk) begin
          if (rst) a <= 1'b0; else a <= b;
        end
        always @(posedge clk) begin
          if (rst) b <= 1'b1; else b <= a;
        end
        assign code = {a, b};
      endmodule";
    let design = hdl::compile(src, "pp").unwrap();
    let mut sim = hdl::Simulator::new(&design);
    sim.poke("rst", hdl::Value::bit(true)).unwrap();
    hdl::clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
    sim.poke("rst", hdl::Value::bit(false)).unwrap();
    let mut seq = Vec::new();
    hdl::clock_cycles(&mut sim, "clk", 4, |_, s| {
        seq.push(s.peek("code").unwrap().to_u64().unwrap());
        Ok(())
    })
    .unwrap();
    // {a,b} starts 01 and swaps every cycle.
    assert_eq!(seq, vec![0b10, 0b01, 0b10, 0b01]);
}

#[test]
fn blocking_vs_nonblocking_divergence_detected() {
    // The classic shift-register bug: with blocking assigns, q2 copies the
    // *new* q1 and the two-stage delay collapses to one. Both behaviours
    // must be modelled faithfully.
    let good = "
      module sr(input clk, d, output reg q1, output reg q2);
        always @(posedge clk) begin
          q1 <= d;
          q2 <= q1;
        end
      endmodule";
    let bad = "
      module sr(input clk, d, output reg q1, output reg q2);
        always @(posedge clk) begin
          q1 = d;
          q2 = q1;
        end
      endmodule";
    let run = |src: &str| {
        let design = hdl::compile(src, "sr").unwrap();
        let mut sim = hdl::Simulator::new(&design);
        sim.poke("d", hdl::Value::bit(true)).unwrap();
        hdl::clock_cycles(&mut sim, "clk", 1, |_, _| Ok(())).unwrap();
        sim.peek("q2").unwrap()
    };
    assert!(run(good).has_x(), "nonblocking: q2 gets old (X) q1");
    assert_eq!(run(bad).to_u64(), Some(1), "blocking: q2 gets new q1");
}

#[test]
fn casez_priority_decoding() {
    let src = "
      module pri(input [3:0] req, output reg [1:0] grant);
        always @(*) begin
          casez (req)
            4'bzzz1: grant = 2'd0;
            4'bzz1z: grant = 2'd1;
            4'bz1zz: grant = 2'd2;
            4'b1zzz: grant = 2'd3;
            default: grant = 2'd0;
          endcase
        end
      endmodule";
    let design = hdl::compile(src, "pri").unwrap();
    let expect = |req: u64| -> u64 {
        if req & 1 != 0 { 0 } else if req & 2 != 0 { 1 } else if req & 4 != 0 { 2 }
        else if req & 8 != 0 { 3 } else { 0 }
    };
    for req in 0..16u64 {
        let mut sim = hdl::Simulator::new(&design);
        sim.poke("req", hdl::Value::from_u64(4, req)).unwrap();
        sim.settle().unwrap();
        assert_eq!(sim.peek("grant").unwrap().to_u64(), Some(expect(req)), "req={req:04b}");
    }
}

#[test]
fn simulator_and_synthesizer_agree_on_alu() {
    // Cross-validation: the event-driven simulator and the symbolic
    // synthesizer must implement the same semantics.
    let src = "
      module mini_alu(input [1:0] op, input [3:0] a, b, output reg [3:0] y);
        always @(*) begin
          case (op)
            2'd0: y = a + b;
            2'd1: y = a - b;
            2'd2: y = a * b;
            default: y = (a < b) ? a : b;
          endcase
        end
      endmodule";
    let file = hdl::parse(src).unwrap();
    let sm = synth::synthesize(file.module("mini_alu").unwrap()).unwrap();
    let design = hdl::elaborate(&file, "mini_alu").unwrap();
    for pattern in 0..1024u64 {
        let op = pattern & 3;
        let a = (pattern >> 2) & 0xf;
        let b = (pattern >> 6) & 0xf;
        let mut sim = hdl::Simulator::new(&design);
        sim.poke("op", hdl::Value::from_u64(2, op)).unwrap();
        sim.poke("a", hdl::Value::from_u64(4, a)).unwrap();
        sim.poke("b", hdl::Value::from_u64(4, b)).unwrap();
        sim.settle().unwrap();
        let golden = sim.peek("y").unwrap().to_u64().unwrap();
        let inputs: Vec<bool> = sm
            .aig
            .input_names()
            .iter()
            .map(|n| {
                let (sig, bit) = match n.find('[') {
                    Some(p) => (&n[..p], n[p + 1..n.len() - 1].parse::<u32>().unwrap()),
                    None => (&n[..], 0),
                };
                let v = match sig {
                    "op" => op,
                    "a" => a,
                    "b" => b,
                    _ => 0,
                };
                v >> bit & 1 == 1
            })
            .collect();
        let outs = sm.aig.simulate(&inputs);
        let mut got = 0u64;
        for ((name, _), v) in sm.aig.outputs().iter().zip(&outs) {
            if let Some(rest) = name.strip_prefix("y[") {
                let bit: u32 = rest.trim_end_matches(']').parse().unwrap();
                if *v {
                    got |= 1 << bit;
                }
            }
        }
        assert_eq!(got, golden, "pattern {pattern}: op={op} a={a} b={b}");
    }
}

#[test]
fn testbench_source_with_tasks_runs() {
    // A self-contained Verilog testbench with a clock generator, delays,
    // $display and $error — the path AutoChip-style flows use for
    // free-form testbenches.
    let run = hdl::run_testbench(
        r#"module tb;
             reg clk = 0;
             reg [7:0] count = 0;
             always #5 clk = ~clk;
             always @(posedge clk) count <= count + 8'd1;
             initial begin
               #103;
               if (count != 8'd10) $error("count=%d", count);
               $display("done count=%d", count);
               $finish;
             end
           endmodule"#,
        "tb",
        10_000,
    )
    .unwrap();
    assert!(run.finished);
    assert!(run.errors.is_empty(), "{:?}", run.errors);
    assert!(run.output.contains("done count=10"));
}

#[test]
fn lint_catches_generated_bug_classes() {
    // The lint checks must fire on the exact bug classes the simulated
    // LLM injects.
    let src = "
      module buggy(input clk, input [1:0] s, input d, output reg q, output reg y);
        always @(posedge clk) q = d;        // blocking in sequential
        always @(*) begin
          case (s)                           // no default
            2'd0: y = d;
            2'd1: y = ~d;
          endcase
        end
      endmodule";
    let file = hdl::parse(src).unwrap();
    let warnings = hdl::lint_module(file.module("buggy").unwrap());
    let kinds: Vec<hdl::LintKind> = warnings.iter().map(|w| w.kind).collect();
    assert!(kinds.contains(&hdl::LintKind::BlockingInSequential));
    assert!(kinds.contains(&hdl::LintKind::CaseWithoutDefault));
}
